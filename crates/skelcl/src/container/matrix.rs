//! The [`Matrix`] container (paper §3.1): a two-dimensional, row-major
//! collection distributed across GPUs by rows (paper Fig. 2).

use std::sync::Arc;

use crate::container::data::{DeviceChunk, DistributedData};
use crate::container::InteropChunk;
use crate::context::Context;
use crate::distribution::Distribution;
use crate::error::Result;
use crate::types::KernelScalar;

/// A two-dimensional parallel container (row-major).
///
/// Distributions partition the matrix by rows: `block` gives each GPU a
/// band of consecutive rows, `overlap` additionally replicates `size`
/// border rows from the neighbouring bands (paper §3.2, Fig. 2d).
///
/// # Example
///
/// ```
/// use skelcl::{Context, Matrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ctx = Context::single_gpu();
/// let m = Matrix::from_fn(&ctx, 4, 3, |row, col| (row * 10 + col) as i32);
/// assert_eq!(m.rows(), 4);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m.get(2, 1)?, 21);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Matrix<T: KernelScalar> {
    pub(crate) data: Arc<DistributedData<T>>,
}

impl<T: KernelScalar> Matrix<T> {
    /// Creates a matrix from row-major host data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(ctx: &Context, rows: usize, cols: usize, data: Vec<T>) -> Self {
        Matrix {
            data: Arc::new(DistributedData::from_host(ctx.clone(), rows, cols, data)),
        }
    }

    /// Creates a zero-filled matrix.
    pub fn zeros(ctx: &Context, rows: usize, cols: usize) -> Self {
        Matrix::from_vec(ctx, rows, cols, vec![T::default(); rows * cols])
    }

    /// Creates a matrix by evaluating `f(row, col)` everywhere.
    pub fn from_fn(
        ctx: &Context,
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> T,
    ) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix::from_vec(ctx, rows, cols, data)
    }

    /// Creates a device-resident output matrix (used by skeletons).
    pub(crate) fn alloc_device(
        ctx: &Context,
        rows: usize,
        cols: usize,
        dist: Distribution,
    ) -> Result<(Self, Vec<DeviceChunk>)> {
        let (data, chunks) = DistributedData::alloc_device(ctx.clone(), rows, cols, dist)?;
        Ok((
            Matrix {
                data: Arc::new(data),
            },
            chunks,
        ))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.units()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.data.unit_elems()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The owning context.
    pub fn context(&self) -> &Context {
        self.data.ctx()
    }

    /// The distribution currently materialised on the devices, if any.
    pub fn distribution(&self) -> Option<Distribution> {
        self.data.current_distribution()
    }

    /// Requests a distribution (rows are the distribution unit).
    ///
    /// # Errors
    ///
    /// Propagates transfer failures.
    pub fn set_distribution(&self, dist: Distribution) -> Result<()> {
        self.data.set_distribution(dist)
    }

    /// Copies the contents to a row-major host `Vec`.
    ///
    /// # Errors
    ///
    /// Propagates transfer failures.
    pub fn to_vec(&self) -> Result<Vec<T>> {
        self.data.with_host(|h| h.to_vec())
    }

    /// Reads the element at (`row`, `col`).
    ///
    /// # Errors
    ///
    /// Propagates transfer failures.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Result<T> {
        assert!(
            row < self.rows() && col < self.cols(),
            "matrix index out of bounds"
        );
        let cols = self.cols();
        self.data.with_host(|h| h[row * cols + col])
    }

    /// Runs `f` over the up-to-date row-major host slice.
    ///
    /// # Errors
    ///
    /// Propagates transfer failures.
    pub fn with_slice<R>(&self, f: impl FnOnce(&[T]) -> R) -> Result<R> {
        self.data.with_host(f)
    }

    /// Runs `f` over the mutable host slice; device copies are
    /// invalidated.
    ///
    /// # Errors
    ///
    /// Propagates transfer failures.
    pub fn with_slice_mut<R>(&self, f: impl FnOnce(&mut [T]) -> R) -> Result<R> {
        self.data.with_host_mut(f)
    }

    /// Copies row range `rows` to the host, downloading only the device
    /// chunks that intersect it when the host copy is stale (the ranged
    /// sibling of [`Matrix::to_vec`]).
    ///
    /// # Errors
    ///
    /// Propagates transfer failures.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_rows(&self, rows: std::ops::Range<usize>) -> Result<Vec<T>> {
        self.data.read_host_range(rows)
    }

    /// Overwrites row range `rows` with row-major `data`, patching valid
    /// host and device copies in place with ranged transfers (device
    /// buffers stay valid, see [`crate::Vector::write_range`]).
    ///
    /// # Errors
    ///
    /// Propagates transfer failures.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `data` does not hold
    /// exactly the range's elements.
    pub fn write_rows(&self, rows: std::ops::Range<usize>, data: &[T]) -> Result<()> {
        self.data.write_host_range(rows, data)
    }

    /// Eagerly materialises the matrix on the devices under `dist`.
    ///
    /// # Errors
    ///
    /// Propagates transfer failures.
    pub fn prefetch(&self, dist: Distribution) -> Result<()> {
        self.data.ensure_device(dist).map(|_| ())
    }

    /// Exposes the matrix's device buffers for raw OpenCL-level interop
    /// (see [`crate::Vector::interop_chunks`]); ranges are in **rows**.
    ///
    /// # Errors
    ///
    /// Propagates transfer failures.
    pub fn interop_chunks(&self, dist: Distribution) -> Result<Vec<InteropChunk>> {
        Ok(self
            .data
            .ensure_device(dist)?
            .into_iter()
            .map(|c| InteropChunk {
                device: c.plan.device,
                buffer: c.buffer,
                stored: c.plan.stored,
                core: c.plan.core,
            })
            .collect())
    }

    /// Declares that raw kernels modified the device buffers returned by
    /// [`Matrix::interop_chunks`].
    pub fn mark_device_modified(&self) {
        self.data.mark_device_written();
    }

    /// Materialises on the devices under `dist` (crate-internal).
    pub(crate) fn ensure_device(&self, dist: Distribution) -> Result<Vec<DeviceChunk>> {
        self.data.ensure_device(dist)
    }

    /// The distribution a skeleton should use for this input.
    pub(crate) fn effective_distribution(&self, default: Distribution) -> Distribution {
        self.data.effective_distribution(default)
    }

    /// Marks device buffers as freshly written (crate-internal).
    pub(crate) fn mark_device_written(&self) {
        self.data.mark_device_written();
    }
}

impl<T: KernelScalar> crate::exec::ElementwiseInput for Matrix<T> {
    fn input_ctx(&self) -> &Context {
        self.context()
    }

    fn input_len(&self) -> usize {
        self.len()
    }

    fn input_scalar(&self) -> skelcl_kernel::types::ScalarType {
        T::SCALAR
    }

    fn input_distribution(&self, default: Distribution) -> Distribution {
        self.effective_distribution(default)
    }

    fn input_chunks(&self, dist: Distribution) -> Result<Vec<DeviceChunk>> {
        self.ensure_device(dist)
    }

    fn input_id(&self) -> usize {
        Arc::as_ptr(&self.data) as *const () as usize
    }

    fn input_mark_device_written(&self) {
        self.mark_device_written();
    }

    fn input_host_units(&self, units: std::ops::Range<usize>) -> Result<Vec<u8>> {
        Ok(crate::types::to_bytes(&self.data.read_host_range(units)?))
    }

    fn input_boxed(&self) -> Box<dyn crate::exec::ElementwiseInput> {
        Box::new(self.clone())
    }

    fn input_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu::{DeviceSpec, Platform};

    fn ctx(n: usize) -> Context {
        Context::init(
            Platform::new(n, DeviceSpec::tesla_t10()),
            crate::context::DeviceSelection::All,
        )
    }

    #[test]
    fn row_major_layout() {
        let ctx = ctx(1);
        let m = Matrix::from_fn(&ctx, 3, 4, |r, c| (r * 4 + c) as i32);
        assert_eq!(m.get(0, 0).unwrap(), 0);
        assert_eq!(m.get(1, 0).unwrap(), 4);
        assert_eq!(m.get(2, 3).unwrap(), 11);
        assert_eq!(m.to_vec().unwrap(), (0..12).collect::<Vec<i32>>());
    }

    #[test]
    fn row_distribution_across_two_gpus() {
        let ctx = ctx(2);
        let m = Matrix::from_fn(&ctx, 6, 5, |r, c| (r * 5 + c) as f32);
        let chunks = m.ensure_device(Distribution::Block).unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].plan.core, 0..3);
        assert_eq!(chunks[0].buffer.len(), 3 * 5 * 4);
        m.mark_device_written();
        assert_eq!(m.get(5, 4).unwrap(), 29.0);
    }

    #[test]
    fn overlap_distribution_stores_halo_rows() {
        let ctx = ctx(2);
        let m = Matrix::<u8>::zeros(&ctx, 8, 2);
        let chunks = m.ensure_device(Distribution::Overlap { size: 1 }).unwrap();
        // Fig. 2(d): top chunk rows 0..5 (4 core + 1 halo), bottom 3..8.
        assert_eq!(chunks[0].plan.stored, 0..5);
        assert_eq!(chunks[1].plan.stored, 3..8);
        assert_eq!(chunks[1].plan.core_offset(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_bounds_checked() {
        let ctx = ctx(1);
        let m = Matrix::<i32>::zeros(&ctx, 2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    #[should_panic(expected = "host data does not match shape")]
    fn from_vec_validates_shape() {
        let ctx = ctx(1);
        let _ = Matrix::from_vec(&ctx, 2, 3, vec![0i32; 5]);
    }
}
