//! The [`Vector`] container (paper §3.1): a one-dimensional collection
//! transparently accessible from host and devices.

use std::sync::Arc;

use crate::container::data::{DeviceChunk, DistributedData};
use crate::container::InteropChunk;
use crate::context::Context;
use crate::distribution::Distribution;
use crate::error::Result;
use crate::types::KernelScalar;

/// A one-dimensional parallel container.
///
/// Memory on the GPUs is allocated automatically when the vector is used by
/// a skeleton and freed when the vector is dropped; host↔device transfers
/// happen implicitly and lazily (paper §3.1). Cloning is cheap and shares
/// the underlying data.
///
/// # Example
///
/// ```
/// use skelcl::{Context, Vector};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ctx = Context::single_gpu();
/// let vec = Vector::from_vec(&ctx, (0..10).map(|i| i as f32).collect());
/// assert_eq!(vec.len(), 10);
/// assert_eq!(vec.to_vec()?[3], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Vector<T: KernelScalar> {
    pub(crate) data: Arc<DistributedData<T>>,
}

impl<T: KernelScalar> Vector<T> {
    /// Creates a vector from host data.
    pub fn from_vec(ctx: &Context, data: Vec<T>) -> Self {
        let len = data.len();
        Vector {
            data: Arc::new(DistributedData::from_host(ctx.clone(), len, 1, data)),
        }
    }

    /// Creates a zero-filled vector of `len` elements.
    pub fn zeros(ctx: &Context, len: usize) -> Self {
        Vector::from_vec(ctx, vec![T::default(); len])
    }

    /// Creates a vector by evaluating `f` at every index.
    pub fn from_fn(ctx: &Context, len: usize, f: impl FnMut(usize) -> T) -> Self {
        Vector::from_vec(ctx, (0..len).map(f).collect())
    }

    /// Creates a device-resident output vector (used by skeletons).
    pub(crate) fn alloc_device(
        ctx: &Context,
        len: usize,
        dist: Distribution,
    ) -> Result<(Self, Vec<DeviceChunk>)> {
        let (data, chunks) = DistributedData::alloc_device(ctx.clone(), len, 1, dist)?;
        Ok((
            Vector {
                data: Arc::new(data),
            },
            chunks,
        ))
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The owning context.
    pub fn context(&self) -> &Context {
        self.data.ctx()
    }

    /// The distribution currently materialised on the devices, if any.
    pub fn distribution(&self) -> Option<Distribution> {
        self.data.current_distribution()
    }

    /// Requests a distribution; any existing device data under a different
    /// distribution is gathered back through the CPU (paper §3.2).
    ///
    /// # Errors
    ///
    /// Propagates transfer failures from the platform.
    pub fn set_distribution(&self, dist: Distribution) -> Result<()> {
        self.data.set_distribution(dist)
    }

    /// Copies the (up-to-date) contents to a host `Vec`, downloading from
    /// the devices if needed.
    ///
    /// # Errors
    ///
    /// Propagates transfer failures.
    pub fn to_vec(&self) -> Result<Vec<T>> {
        self.data.with_host(|h| h.to_vec())
    }

    /// Reads element `i` (may trigger a download).
    ///
    /// # Errors
    ///
    /// Propagates transfer failures.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> Result<T> {
        self.data.with_host(|h| h[i])
    }

    /// Runs `f` over the up-to-date host slice without copying.
    ///
    /// # Errors
    ///
    /// Propagates transfer failures.
    pub fn with_slice<R>(&self, f: impl FnOnce(&[T]) -> R) -> Result<R> {
        self.data.with_host(f)
    }

    /// Runs `f` over the mutable host slice; device copies are invalidated
    /// and re-uploaded on next use.
    ///
    /// # Errors
    ///
    /// Propagates transfer failures.
    pub fn with_slice_mut<R>(&self, f: impl FnOnce(&mut [T]) -> R) -> Result<R> {
        self.data.with_host_mut(f)
    }

    /// Replaces the contents with `data` of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the length differs.
    pub fn assign(&self, data: Vec<T>) {
        self.data.replace_host(data);
    }

    /// Copies element range `range` to the host, downloading only the
    /// device chunks that intersect it when the host copy is stale —
    /// a ranged alternative to [`Vector::to_vec`] that never round-trips
    /// the whole buffer.
    ///
    /// # Errors
    ///
    /// Propagates transfer failures.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_range(&self, range: std::ops::Range<usize>) -> Result<Vec<T>> {
        self.data.read_host_range(range)
    }

    /// Overwrites element range `range` with `data`, patching valid host
    /// and device copies in place with ranged transfers. Unlike
    /// [`Vector::with_slice_mut`], device buffers stay valid — a
    /// boundary-sized change moves boundary-sized bytes instead of forcing
    /// a full re-upload at the next use.
    ///
    /// # Errors
    ///
    /// Propagates transfer failures.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `data` has a different
    /// length.
    pub fn write_range(&self, range: std::ops::Range<usize>, data: &[T]) -> Result<()> {
        self.data.write_host_range(range, data)
    }

    /// Eagerly materialises the vector on the devices under `dist`
    /// (transfers are otherwise lazy). Useful to move upload costs out of
    /// a measured region, or to force a redistribution now.
    ///
    /// # Errors
    ///
    /// Propagates transfer failures.
    pub fn prefetch(&self, dist: Distribution) -> Result<()> {
        self.data.ensure_device(dist).map(|_| ())
    }

    /// Exposes the vector's device buffers for raw OpenCL-level interop —
    /// the paper's compatibility promise: "arbitrary parts of a SkelCL
    /// code can be written or rewritten in OpenCL". The data is
    /// materialised under `dist` first. After writing through the buffers
    /// with raw kernels, call [`Vector::mark_device_modified`] so the
    /// container downloads the fresh data before the next host read.
    ///
    /// # Errors
    ///
    /// Propagates transfer failures.
    pub fn interop_chunks(&self, dist: Distribution) -> Result<Vec<InteropChunk>> {
        Ok(self
            .data
            .ensure_device(dist)?
            .into_iter()
            .map(|c| InteropChunk {
                device: c.plan.device,
                buffer: c.buffer,
                stored: c.plan.stored,
                core: c.plan.core,
            })
            .collect())
    }

    /// Declares that raw kernels modified the device buffers returned by
    /// [`Vector::interop_chunks`]; the host copy becomes stale and is
    /// re-downloaded on the next read.
    pub fn mark_device_modified(&self) {
        self.data.mark_device_written();
    }

    /// Materialises the vector on the devices under `dist` and returns the
    /// chunks (crate-internal, used by skeletons).
    pub(crate) fn ensure_device(&self, dist: Distribution) -> Result<Vec<DeviceChunk>> {
        self.data.ensure_device(dist)
    }

    /// The distribution a skeleton should use for this input.
    pub(crate) fn effective_distribution(&self, default: Distribution) -> Distribution {
        self.data.effective_distribution(default)
    }

    /// Marks device buffers as freshly written (crate-internal).
    pub(crate) fn mark_device_written(&self) {
        self.data.mark_device_written();
    }

    /// Wraps the vector as a lazy fusion source: the result composes with
    /// [`crate::Map::lazy`] / [`crate::Zip::lazy`] stages into a single
    /// fused kernel (see [`crate::Expr`]).
    pub fn expr(&self) -> crate::expr::Expr<T> {
        crate::expr::Expr::from(self)
    }
}

impl<T: KernelScalar> crate::exec::ElementwiseInput for Vector<T> {
    fn input_ctx(&self) -> &Context {
        self.context()
    }

    fn input_len(&self) -> usize {
        self.len()
    }

    fn input_scalar(&self) -> skelcl_kernel::types::ScalarType {
        T::SCALAR
    }

    fn input_distribution(&self, default: Distribution) -> Distribution {
        self.effective_distribution(default)
    }

    fn input_chunks(&self, dist: Distribution) -> Result<Vec<DeviceChunk>> {
        self.ensure_device(dist)
    }

    fn input_id(&self) -> usize {
        Arc::as_ptr(&self.data) as *const () as usize
    }

    fn input_mark_device_written(&self) {
        self.mark_device_written();
    }

    fn input_host_units(&self, units: std::ops::Range<usize>) -> Result<Vec<u8>> {
        Ok(crate::types::to_bytes(&self.data.read_host_range(units)?))
    }

    fn input_boxed(&self) -> Box<dyn crate::exec::ElementwiseInput> {
        Box::new(self.clone())
    }

    fn input_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl<T: KernelScalar> FromIterator<T> for Vector<T> {
    /// Collects into a vector on a **new single-GPU context**; prefer
    /// [`Vector::from_vec`] to control the context.
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let ctx = Context::single_gpu();
        Vector::from_vec(&ctx, iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu::{DeviceSpec, Platform};

    fn ctx(n: usize) -> Context {
        Context::init(
            Platform::new(n, DeviceSpec::tesla_t10()),
            crate::context::DeviceSelection::All,
        )
    }

    #[test]
    fn paper_style_construction() {
        // Paper: Vector<int> vec(size); for (...) vec[i] = i;
        let ctx = ctx(1);
        let vec = Vector::from_fn(&ctx, 16, |i| i as i32);
        assert_eq!(vec.get(7).unwrap(), 7);
        assert_eq!(vec.len(), 16);
        assert!(!vec.is_empty());
    }

    #[test]
    fn distribution_lifecycle() {
        let ctx = ctx(2);
        let vec = Vector::from_vec(&ctx, (0..10i32).collect());
        assert_eq!(vec.distribution(), None);
        vec.ensure_device(Distribution::Block).unwrap();
        assert_eq!(vec.distribution(), Some(Distribution::Block));
        vec.set_distribution(Distribution::Copy).unwrap();
        assert_eq!(vec.to_vec().unwrap(), (0..10i32).collect::<Vec<_>>());
    }

    #[test]
    fn host_writes_visible_after_device_round_trip() {
        let ctx = ctx(2);
        let vec = Vector::from_vec(&ctx, vec![1.0f32; 8]);
        vec.ensure_device(Distribution::Block).unwrap();
        vec.with_slice_mut(|s| s[4] = 9.0).unwrap();
        vec.ensure_device(Distribution::Block).unwrap();
        vec.mark_device_written();
        assert_eq!(vec.get(4).unwrap(), 9.0);
    }

    #[test]
    fn clones_share_data() {
        let ctx = ctx(1);
        let a = Vector::from_vec(&ctx, vec![0i32; 4]);
        let b = a.clone();
        a.with_slice_mut(|s| s[0] = 5).unwrap();
        assert_eq!(b.get(0).unwrap(), 5);
    }

    #[test]
    fn from_iterator_collects() {
        let v: Vector<i32> = (0..5).collect();
        assert_eq!(v.to_vec().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_vector() {
        let ctx = ctx(2);
        let v = Vector::<f32>::zeros(&ctx, 0);
        assert!(v.is_empty());
        assert_eq!(v.to_vec().unwrap(), Vec::<f32>::new());
        let chunks = v.ensure_device(Distribution::Block).unwrap();
        assert!(chunks.is_empty());
    }
}
