//! The [`Scalar`] result type of the `Reduce` skeleton (paper Listing 1.1:
//! `SkelCL::Scalar<float> C = sum(...); float c = C.getValue();`).

use std::time::Duration;

use crate::types::KernelScalar;

/// The scalar result of a reduction, together with the simulated kernel
/// time spent computing it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scalar<T: KernelScalar> {
    value: T,
    kernel_time: Duration,
}

impl<T: KernelScalar> Scalar<T> {
    pub(crate) fn new(value: T, kernel_time: Duration) -> Self {
        Scalar { value, kernel_time }
    }

    /// The computed value (the paper's `getValue()`).
    pub fn value(&self) -> T {
        self.value
    }

    /// Total simulated kernel time of the reduction passes.
    pub fn kernel_time(&self) -> Duration {
        self.kernel_time
    }
}

impl<T: KernelScalar + std::fmt::Display> std::fmt::Display for Scalar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Scalar::new(42i32, Duration::from_nanos(100));
        assert_eq!(s.value(), 42);
        assert_eq!(s.kernel_time(), Duration::from_nanos(100));
        assert_eq!(s.to_string(), "42");
    }
}
