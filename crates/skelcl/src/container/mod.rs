//! Parallel container data types (paper §3.1): [`Vector`], [`Matrix`] and
//! the [`Scalar`] reduction result.

pub(crate) mod data;
mod matrix;
mod scalar;
mod vector;

pub use matrix::Matrix;
pub use scalar::Scalar;
pub use vector::Vector;

/// One device's share of a container, exposed for raw OpenCL-level interop
/// (paper §3: SkelCL code can be freely mixed with plain OpenCL). Ranges
/// are elements for vectors and rows for matrices.
#[derive(Debug, Clone)]
pub struct InteropChunk {
    /// Device index within the context.
    pub device: usize,
    /// The chunk's backing buffer (covers `stored`).
    pub buffer: vgpu::DeviceBuffer,
    /// The range the device stores (core plus halo for overlap).
    pub stored: std::ops::Range<usize>,
    /// The range the device owns.
    pub core: std::ops::Range<usize>,
}
