//! Shared skeleton execution machinery: multi-device parallel launches and
//! per-skeleton event logs.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use vgpu::{CommandKind, Event, KernelArg, NdRange};

use crate::context::Context;
use crate::error::{Error, Result};

/// One device's share of a skeleton execution.
#[derive(Debug)]
pub(crate) struct DeviceLaunch {
    /// Device index within the context.
    pub device: usize,
    /// Kernel arguments.
    pub args: Vec<KernelArg>,
    /// Launch geometry.
    pub range: NdRange,
}

/// Launches `kernel` on every listed device in parallel (one host thread
/// per device, as SkelCL's implementation drives one queue per GPU),
/// returning the events in device order.
pub(crate) fn launch_parallel(
    ctx: &Context,
    program: &skelcl_kernel::Program,
    kernel: &str,
    launches: Vec<DeviceLaunch>,
) -> Result<Vec<Event>> {
    let events: Result<Vec<Event>> = if launches.len() <= 1 {
        // Single device: no thread overhead.
        launches
            .iter()
            .map(|l| {
                ctx.queue(l.device)
                    .launch_kernel(program, kernel, &l.args, l.range, ctx.launch_config())
                    .map_err(Error::from)
            })
            .collect()
    } else {
        let results: Vec<Result<Event>> = std::thread::scope(|scope| {
            let handles: Vec<_> = launches
                .iter()
                .map(|l| {
                    scope.spawn(move || {
                        ctx.queue(l.device)
                            .launch_kernel(program, kernel, &l.args, l.range, ctx.launch_config())
                            .map_err(Error::from)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("launch thread panicked"))
                .collect()
        });
        results.into_iter().collect()
    };
    let events = events?;
    let profiler = ctx.profiler();
    if profiler.is_enabled() {
        for (event, launch) in events.iter().zip(&launches) {
            profiler.record_event_with(event, Some(nd_range_label(&launch.range)));
        }
    }
    Ok(events)
}

/// Compact launch-geometry label for kernel spans, e.g. `1024/256` or
/// `4096x3072/16x16` (global/local per dimension).
pub(crate) fn nd_range_label(range: &NdRange) -> String {
    if range.dims <= 1 {
        format!("{}/{}", range.global[0], range.local[0])
    } else {
        format!(
            "{}x{}/{}x{}",
            range.global[0], range.global[1], range.local[0], range.local[1]
        )
    }
}

/// Opens the host-lane span for one skeleton invocation and bumps the
/// `skeleton.calls` counter. Inert when profiling is disabled.
pub(crate) fn skeleton_span(ctx: &Context, name: &'static str) -> skelcl_profile::SpanGuard {
    let profiler = ctx.profiler();
    profiler.add(skelcl_profile::metrics::SKELETON_CALLS, 1);
    profiler.host_span(skelcl_profile::SpanKind::Skeleton, name)
}

/// A log of the events produced by a skeleton's most recent call, exposing
/// the paper's profiling measurements (Fig. 5 reports kernel-only times via
/// the OpenCL profiling API).
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<Event>>,
}

impl EventLog {
    /// Replaces the log with the events of a new call.
    pub(crate) fn record(&self, events: Vec<Event>) {
        *self.events.lock().expect("event log lock") = events;
    }

    /// The events of the most recent call.
    pub fn last_events(&self) -> Vec<Event> {
        self.events.lock().expect("event log lock").clone()
    }

    /// Simulated kernel-only time of the most recent call: per device the
    /// kernel durations add up (in-order queue); across devices the
    /// execution overlaps, so the maximum is the makespan.
    pub fn last_kernel_time(&self) -> Duration {
        let events = self.events.lock().expect("event log lock");
        let mut per_device: HashMap<usize, Duration> = HashMap::new();
        for e in events.iter() {
            if matches!(e.kind(), CommandKind::Kernel { .. }) {
                *per_device.entry(e.device().0).or_default() += e.duration();
            }
        }
        per_device.into_values().max().unwrap_or_default()
    }

    /// Total simulated transfer time of the most recent call (max across
    /// devices).
    pub fn last_transfer_time(&self) -> Duration {
        let events = self.events.lock().expect("event log lock");
        let mut per_device: HashMap<usize, Duration> = HashMap::new();
        for e in events.iter() {
            if !matches!(e.kind(), CommandKind::Kernel { .. }) {
                *per_device.entry(e.device().0).or_default() += e.duration();
            }
        }
        per_device.into_values().max().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu::DeviceId;

    fn kernel_event(device: usize, start: u64, end: u64) -> Event {
        Event::new(
            DeviceId(device),
            CommandKind::Kernel { name: "k".into() },
            start,
            start,
            end,
            None,
        )
    }

    #[test]
    fn kernel_time_is_per_device_makespan() {
        let log = EventLog::default();
        log.record(vec![
            kernel_event(0, 0, 100),
            kernel_event(0, 100, 150), // device 0 total: 150
            kernel_event(1, 0, 120),   // device 1 total: 120
        ]);
        assert_eq!(log.last_kernel_time(), Duration::from_nanos(150));
    }

    #[test]
    fn transfer_time_excludes_kernels() {
        let log = EventLog::default();
        log.record(vec![
            Event::new(
                DeviceId(0),
                CommandKind::WriteBuffer { bytes: 10 },
                0,
                0,
                40,
                None,
            ),
            kernel_event(0, 40, 100),
        ]);
        assert_eq!(log.last_transfer_time(), Duration::from_nanos(40));
        assert_eq!(log.last_kernel_time(), Duration::from_nanos(60));
    }

    #[test]
    fn nd_range_labels() {
        assert_eq!(nd_range_label(&NdRange::linear(1000, 256)), "1024/256");
        assert_eq!(
            nd_range_label(&NdRange::grid([100, 60], [16, 16])),
            "112x64/16x16"
        );
    }

    #[test]
    fn empty_log() {
        let log = EventLog::default();
        assert_eq!(log.last_kernel_time(), Duration::ZERO);
        assert!(log.last_events().is_empty());
    }
}
