//! Per-skeleton event logs (launch machinery lives in [`crate::exec`]).

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use vgpu::{CommandKind, Event};

/// A log of the events produced by a skeleton's most recent call, exposing
/// the paper's profiling measurements (Fig. 5 reports kernel-only times via
/// the OpenCL profiling API).
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<Event>>,
}

impl EventLog {
    /// Replaces the log with the events of a new call.
    pub(crate) fn record(&self, events: Vec<Event>) {
        *self.events.lock().expect("event log lock") = events;
    }

    /// The events of the most recent call.
    pub fn last_events(&self) -> Vec<Event> {
        self.events.lock().expect("event log lock").clone()
    }

    /// Simulated kernel-only time of the most recent call: per device the
    /// kernel durations add up (in-order queue); across devices the
    /// execution overlaps, so the maximum is the makespan.
    pub fn last_kernel_time(&self) -> Duration {
        let events = self.events.lock().expect("event log lock");
        let mut per_device: HashMap<usize, Duration> = HashMap::new();
        for e in events.iter() {
            if matches!(e.kind(), CommandKind::Kernel { .. }) {
                *per_device.entry(e.device().0).or_default() += e.duration();
            }
        }
        per_device.into_values().max().unwrap_or_default()
    }

    /// Simulated kernel busy ns per device for the most recent call —
    /// the raw material of the paper-style load-imbalance analysis, scoped
    /// to one skeleton invocation (the profiler's per-device busy time
    /// accumulates across the whole session instead).
    pub fn kernel_busy_by_device(&self) -> HashMap<usize, u64> {
        let events = self.events.lock().expect("event log lock");
        let mut per_device: HashMap<usize, u64> = HashMap::new();
        for e in events.iter() {
            if matches!(e.kind(), CommandKind::Kernel { .. }) {
                *per_device.entry(e.device().0).or_default() += e.duration().as_nanos() as u64;
            }
        }
        per_device
    }

    /// Kernel launches per device in the most recent call — the fusion
    /// bench's evidence that a fused chain issues fewer launches.
    pub fn kernel_launches_by_device(&self) -> HashMap<usize, u64> {
        let events = self.events.lock().expect("event log lock");
        let mut per_device: HashMap<usize, u64> = HashMap::new();
        for e in events.iter() {
            if matches!(e.kind(), CommandKind::Kernel { .. }) {
                *per_device.entry(e.device().0).or_default() += 1;
            }
        }
        per_device
    }

    /// Kernel-time load imbalance of the most recent call: max/mean busy
    /// ns across the devices that ran kernels (1.0 is perfectly balanced;
    /// 0.0 when the log is empty).
    pub fn load_imbalance(&self) -> f64 {
        let per_device = self.kernel_busy_by_device();
        if per_device.is_empty() {
            return 0.0;
        }
        let max = *per_device.values().max().unwrap() as f64;
        let mean = per_device.values().sum::<u64>() as f64 / per_device.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }

    /// Total simulated transfer time of the most recent call (max across
    /// devices). Only actual data movement counts — kernels, markers and
    /// other zero-duration barrier-style commands are excluded, so the
    /// overlap report can't be skewed by synchronization events.
    pub fn last_transfer_time(&self) -> Duration {
        let events = self.events.lock().expect("event log lock");
        let mut per_device: HashMap<usize, Duration> = HashMap::new();
        for e in events.iter() {
            let is_transfer = matches!(
                e.kind(),
                CommandKind::WriteBuffer { .. }
                    | CommandKind::ReadBuffer { .. }
                    | CommandKind::CopyBuffer { .. }
            );
            if is_transfer && !e.duration().is_zero() {
                *per_device.entry(e.device().0).or_default() += e.duration();
            }
        }
        per_device.into_values().max().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu::DeviceId;

    fn kernel_event(device: usize, start: u64, end: u64) -> Event {
        Event::new(
            DeviceId(device),
            CommandKind::Kernel { name: "k".into() },
            start,
            start,
            end,
            None,
        )
    }

    #[test]
    fn kernel_time_is_per_device_makespan() {
        let log = EventLog::default();
        log.record(vec![
            kernel_event(0, 0, 100),
            kernel_event(0, 100, 150), // device 0 total: 150
            kernel_event(1, 0, 120),   // device 1 total: 120
        ]);
        assert_eq!(log.last_kernel_time(), Duration::from_nanos(150));
    }

    #[test]
    fn transfer_time_excludes_kernels() {
        let log = EventLog::default();
        log.record(vec![
            Event::new(
                DeviceId(0),
                CommandKind::WriteBuffer { bytes: 10 },
                0,
                0,
                40,
                None,
            ),
            kernel_event(0, 40, 100),
        ]);
        assert_eq!(log.last_transfer_time(), Duration::from_nanos(40));
        assert_eq!(log.last_kernel_time(), Duration::from_nanos(60));
    }

    #[test]
    fn transfer_time_excludes_markers_and_barriers() {
        let log = EventLog::default();
        log.record(vec![
            Event::new(
                DeviceId(0),
                CommandKind::ReadBuffer { bytes: 16 },
                0,
                0,
                25,
                None,
            ),
            // A marker with a nonzero span and a zero-duration write (a
            // barrier-style sync point) must both be ignored.
            Event::new(DeviceId(0), CommandKind::Marker, 25, 25, 90, None),
            Event::new(
                DeviceId(0),
                CommandKind::WriteBuffer { bytes: 0 },
                90,
                90,
                90,
                None,
            ),
        ]);
        assert_eq!(log.last_transfer_time(), Duration::from_nanos(25));
    }

    #[test]
    fn kernel_launch_counts() {
        let log = EventLog::default();
        log.record(vec![
            kernel_event(0, 0, 10),
            kernel_event(0, 10, 20),
            kernel_event(1, 0, 10),
            Event::new(
                DeviceId(1),
                CommandKind::WriteBuffer { bytes: 8 },
                0,
                0,
                5,
                None,
            ),
        ]);
        let launches = log.kernel_launches_by_device();
        assert_eq!(launches[&0], 2);
        assert_eq!(launches[&1], 1);
    }

    #[test]
    fn event_log_imbalance() {
        let log = EventLog::default();
        assert_eq!(log.load_imbalance(), 0.0);
        log.record(vec![
            kernel_event(0, 0, 300),
            kernel_event(1, 0, 100),
            Event::new(
                DeviceId(1),
                CommandKind::WriteBuffer { bytes: 8 },
                0,
                0,
                1_000,
                None,
            ),
        ]);
        let busy = log.kernel_busy_by_device();
        assert_eq!(busy[&0], 300);
        assert_eq!(busy[&1], 100);
        // max 300, mean 200 → 1.5; the transfer event is excluded.
        assert!((log.load_imbalance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_log() {
        let log = EventLog::default();
        assert_eq!(log.last_kernel_time(), Duration::ZERO);
        assert!(log.last_events().is_empty());
    }
}
