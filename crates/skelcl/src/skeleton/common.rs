//! Shared skeleton execution machinery: plan-based multi-device launches
//! and per-skeleton event logs.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use vgpu::{CommandKind, Event, KernelArg, NdRange};

use crate::context::Context;
use crate::engine::LaunchPlan;
use crate::error::Result;

/// One device's share of a skeleton execution.
#[derive(Debug)]
pub(crate) struct DeviceLaunch {
    /// Device index within the context.
    pub device: usize,
    /// Kernel arguments.
    pub args: Vec<KernelArg>,
    /// Launch geometry.
    pub range: NdRange,
    /// Distribution units (elements or rows) this launch owns — the
    /// scheduler's throughput model divides them by the measured kernel
    /// time.
    pub units: usize,
}

/// Runs `kernel` on every listed device concurrently through the plan
/// engine — one independent plan node per device, executed by the
/// devices' asynchronous queues — and waits for completion, returning the
/// events in device order. Profiler spans and scheduler measurements are
/// recorded by the engine's completion callbacks.
pub(crate) fn run_launches(
    ctx: &Context,
    program: &skelcl_kernel::Program,
    kernel: &str,
    launches: Vec<DeviceLaunch>,
) -> Result<Vec<Event>> {
    let mut plan = LaunchPlan::new();
    for l in launches {
        plan.kernel(l.device, program, kernel, l.args, l.range, l.units, &[]);
    }
    let run = plan.execute(ctx)?;
    run.wait()?;
    Ok(run.into_events())
}

/// Compact launch-geometry label for kernel spans, e.g. `1024/256`,
/// `4096x3072/16x16` or `64x64x64/8x8x4` (global/local per dimension).
pub(crate) fn nd_range_label(range: &NdRange) -> String {
    match range.dims {
        0 | 1 => format!("{}/{}", range.global[0], range.local[0]),
        2 => format!(
            "{}x{}/{}x{}",
            range.global[0], range.global[1], range.local[0], range.local[1]
        ),
        _ => format!(
            "{}x{}x{}/{}x{}x{}",
            range.global[0],
            range.global[1],
            range.global[2],
            range.local[0],
            range.local[1],
            range.local[2]
        ),
    }
}

/// Opens the host-lane span for one skeleton invocation and bumps the
/// `skeleton.calls` counter. Inert when profiling is disabled.
pub(crate) fn skeleton_span(ctx: &Context, name: &'static str) -> skelcl_profile::SpanGuard {
    let profiler = ctx.profiler();
    profiler.add(skelcl_profile::metrics::SKELETON_CALLS, 1);
    profiler.host_span(skelcl_profile::SpanKind::Skeleton, name)
}

/// A log of the events produced by a skeleton's most recent call, exposing
/// the paper's profiling measurements (Fig. 5 reports kernel-only times via
/// the OpenCL profiling API).
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<Event>>,
}

impl EventLog {
    /// Replaces the log with the events of a new call.
    pub(crate) fn record(&self, events: Vec<Event>) {
        *self.events.lock().expect("event log lock") = events;
    }

    /// The events of the most recent call.
    pub fn last_events(&self) -> Vec<Event> {
        self.events.lock().expect("event log lock").clone()
    }

    /// Simulated kernel-only time of the most recent call: per device the
    /// kernel durations add up (in-order queue); across devices the
    /// execution overlaps, so the maximum is the makespan.
    pub fn last_kernel_time(&self) -> Duration {
        let events = self.events.lock().expect("event log lock");
        let mut per_device: HashMap<usize, Duration> = HashMap::new();
        for e in events.iter() {
            if matches!(e.kind(), CommandKind::Kernel { .. }) {
                *per_device.entry(e.device().0).or_default() += e.duration();
            }
        }
        per_device.into_values().max().unwrap_or_default()
    }

    /// Simulated kernel busy ns per device for the most recent call —
    /// the raw material of the paper-style load-imbalance analysis, scoped
    /// to one skeleton invocation (the profiler's per-device busy time
    /// accumulates across the whole session instead).
    pub fn kernel_busy_by_device(&self) -> HashMap<usize, u64> {
        let events = self.events.lock().expect("event log lock");
        let mut per_device: HashMap<usize, u64> = HashMap::new();
        for e in events.iter() {
            if matches!(e.kind(), CommandKind::Kernel { .. }) {
                *per_device.entry(e.device().0).or_default() += e.duration().as_nanos() as u64;
            }
        }
        per_device
    }

    /// Kernel-time load imbalance of the most recent call: max/mean busy
    /// ns across the devices that ran kernels (1.0 is perfectly balanced;
    /// 0.0 when the log is empty).
    pub fn load_imbalance(&self) -> f64 {
        let per_device = self.kernel_busy_by_device();
        if per_device.is_empty() {
            return 0.0;
        }
        let max = *per_device.values().max().unwrap() as f64;
        let mean = per_device.values().sum::<u64>() as f64 / per_device.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }

    /// Total simulated transfer time of the most recent call (max across
    /// devices).
    pub fn last_transfer_time(&self) -> Duration {
        let events = self.events.lock().expect("event log lock");
        let mut per_device: HashMap<usize, Duration> = HashMap::new();
        for e in events.iter() {
            if !matches!(e.kind(), CommandKind::Kernel { .. }) {
                *per_device.entry(e.device().0).or_default() += e.duration();
            }
        }
        per_device.into_values().max().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu::DeviceId;

    fn kernel_event(device: usize, start: u64, end: u64) -> Event {
        Event::new(
            DeviceId(device),
            CommandKind::Kernel { name: "k".into() },
            start,
            start,
            end,
            None,
        )
    }

    #[test]
    fn kernel_time_is_per_device_makespan() {
        let log = EventLog::default();
        log.record(vec![
            kernel_event(0, 0, 100),
            kernel_event(0, 100, 150), // device 0 total: 150
            kernel_event(1, 0, 120),   // device 1 total: 120
        ]);
        assert_eq!(log.last_kernel_time(), Duration::from_nanos(150));
    }

    #[test]
    fn transfer_time_excludes_kernels() {
        let log = EventLog::default();
        log.record(vec![
            Event::new(
                DeviceId(0),
                CommandKind::WriteBuffer { bytes: 10 },
                0,
                0,
                40,
                None,
            ),
            kernel_event(0, 40, 100),
        ]);
        assert_eq!(log.last_transfer_time(), Duration::from_nanos(40));
        assert_eq!(log.last_kernel_time(), Duration::from_nanos(60));
    }

    #[test]
    fn nd_range_labels() {
        assert_eq!(nd_range_label(&NdRange::linear(1000, 256)), "1024/256");
        assert_eq!(
            nd_range_label(&NdRange::grid([100, 60], [16, 16])),
            "112x64/16x16"
        );
        // 3-D ranges must not silently drop the z dimension.
        let r3 = NdRange {
            dims: 3,
            global: [64, 64, 64],
            local: [8, 8, 4],
        };
        assert_eq!(nd_range_label(&r3), "64x64x64/8x8x4");
    }

    #[test]
    fn event_log_imbalance() {
        let log = EventLog::default();
        assert_eq!(log.load_imbalance(), 0.0);
        log.record(vec![
            kernel_event(0, 0, 300),
            kernel_event(1, 0, 100),
            Event::new(
                DeviceId(1),
                CommandKind::WriteBuffer { bytes: 8 },
                0,
                0,
                1_000,
                None,
            ),
        ]);
        let busy = log.kernel_busy_by_device();
        assert_eq!(busy[&0], 300);
        assert_eq!(busy[&1], 100);
        // max 300, mean 200 → 1.5; the transfer event is excluded.
        assert!((log.load_imbalance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_log() {
        let log = EventLog::default();
        assert_eq!(log.last_kernel_time(), Duration::ZERO);
        assert!(log.last_events().is_empty());
    }
}
