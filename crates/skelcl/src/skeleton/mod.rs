//! Algorithmic skeletons (paper §3.3–§3.5): pre-implemented parallel
//! patterns customized by user functions given as SkelCL C source strings.

mod allpairs;
pub(crate) mod common;
mod map;
mod map_overlap;
mod reduce;
mod scan;
mod zip;

pub use allpairs::{matrix_multiply, transpose, Allpairs};
pub use common::EventLog;
pub use map::Map;
pub use map_overlap::{BoundaryHandling, MapOverlap, MapOverlapVec};
pub use reduce::Reduce;
pub use scan::Scan;
pub use zip::Zip;
