//! The **Zip** skeleton (paper §3.3): combines two containers elementwise
//! with a binary customizing operator.

use std::marker::PhantomData;

use skelcl_kernel::value::Value;
use vgpu::{KernelArg, NdRange};

use crate::codegen::{
    check_extra_args, compile_cached, expect_return, expect_scalar_extras, expect_scalar_param,
    extra_param_decls, extra_param_uses, parse_user_function,
};
use crate::container::{Matrix, Vector};
use crate::context::Context;
use crate::distribution::Distribution;
use crate::error::{Error, Result};
use crate::skeleton::common::{run_launches, skeleton_span, DeviceLaunch, EventLog};
use crate::skeleton::map::normalize_elementwise;
use crate::types::KernelScalar;

/// The Zip skeleton: `zip (⊕) xs ys = [x1 ⊕ y1, …, xn ⊕ yn]`.
///
/// ```
/// use skelcl::{Context, Zip, Vector};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ctx = Context::single_gpu();
/// let add: Zip<f32, f32, f32> =
///     Zip::new(&ctx, "float func(float x, float y){ return x + y; }")?;
/// let a = Vector::from_vec(&ctx, vec![1.0, 2.0]);
/// let b = Vector::from_vec(&ctx, vec![10.0, 20.0]);
/// assert_eq!(add.call(&a, &b)?.to_vec()?, vec![11.0, 22.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Zip<L: KernelScalar, R: KernelScalar, O: KernelScalar> {
    ctx: Context,
    program: skelcl_kernel::Program,
    extras: Vec<skelcl_kernel::types::Type>,
    events: EventLog,
    _types: PhantomData<fn(L, R) -> O>,
}

impl<L: KernelScalar, R: KernelScalar, O: KernelScalar> Zip<L, R, O> {
    /// Creates a Zip skeleton from a binary customizing function
    /// `O f(L x, R y, …scalars)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCustomizingFunction`] on parse or signature
    /// problems.
    pub fn new(ctx: &Context, source: &str) -> Result<Self> {
        let f = parse_user_function("Zip", source)?;
        expect_scalar_param("Zip", &f, 0, L::SCALAR)?;
        expect_scalar_param("Zip", &f, 1, R::SCALAR)?;
        expect_return("Zip", &f, O::SCALAR)?;
        expect_scalar_extras("Zip", &f, 2)?;
        let extras = f.extra_params(2).to_vec();

        let kernel_source = format!(
            "{user}\n\
             __kernel void skelcl_zip(__global const {l}* skelcl_lhs, __global const {r}* skelcl_rhs,\n\
                                      __global {o}* skelcl_out, int skelcl_n{decls}) {{\n\
                 int skelcl_i = (int)get_global_id(0);\n\
                 if (skelcl_i < skelcl_n)\n\
                     skelcl_out[skelcl_i] = {f}(skelcl_lhs[skelcl_i], skelcl_rhs[skelcl_i]{uses});\n\
             }}\n",
            user = f.source(),
            l = L::SCALAR,
            r = R::SCALAR,
            o = O::SCALAR,
            f = f.name,
            decls = extra_param_decls(&extras, "skelcl_x"),
            uses = extra_param_uses(&extras, "skelcl_x"),
        );
        let program = compile_cached(ctx, "skelcl_zip.cl", &kernel_source)?;
        Ok(Zip {
            ctx: ctx.clone(),
            program,
            extras,
            events: EventLog::default(),
            _types: PhantomData,
        })
    }

    /// Applies the skeleton to two vectors of equal length.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::ShapeMismatch`] for unequal lengths, plus any
    /// platform failure.
    pub fn call(&self, lhs: &Vector<L>, rhs: &Vector<R>) -> Result<Vector<O>> {
        self.call_with(lhs, rhs, &[])
    }

    /// [`Zip::call`] with extra scalar arguments.
    ///
    /// # Errors
    ///
    /// As for [`Zip::call`], plus extra-argument arity mismatches.
    pub fn call_with(
        &self,
        lhs: &Vector<L>,
        rhs: &Vector<R>,
        extra: &[Value],
    ) -> Result<Vector<O>> {
        let _span = skeleton_span(&self.ctx, "Zip.call");
        check_extra_args("Zip", &self.extras, extra)?;
        if lhs.len() != rhs.len() {
            return Err(Error::ShapeMismatch {
                reason: format!(
                    "zip requires equal lengths, found {} and {}",
                    lhs.len(),
                    rhs.len()
                ),
            });
        }
        // Both operands follow the left operand's effective distribution so
        // their chunks align (the right one is redistributed implicitly).
        let dist = normalize_elementwise(lhs.effective_distribution(Distribution::Block));
        let l_chunks = lhs.ensure_device(dist)?;
        let r_chunks = rhs.ensure_device(dist)?;
        let (output, out_chunks) = Vector::alloc_device(&self.ctx, lhs.len(), dist)?;

        let launches = l_chunks
            .iter()
            .zip(&r_chunks)
            .zip(&out_chunks)
            .map(|((lc, rc), oc)| {
                let n = lc.plan.core_len();
                let mut args = vec![
                    KernelArg::Buffer(lc.buffer.clone()),
                    KernelArg::Buffer(rc.buffer.clone()),
                    KernelArg::Buffer(oc.buffer.clone()),
                    KernelArg::Scalar(Value::I32(n as i32)),
                ];
                args.extend(extra.iter().map(|v| KernelArg::Scalar(*v)));
                DeviceLaunch {
                    device: lc.plan.device,
                    args,
                    range: NdRange::linear_default(n),
                    units: lc.plan.core_len(),
                }
            })
            .collect();
        let events = run_launches(&self.ctx, &self.program, "skelcl_zip", launches)?;
        self.events.record(events);
        output.mark_device_written();
        Ok(output)
    }

    /// Applies the skeleton elementwise to two matrices of equal shape.
    ///
    /// # Errors
    ///
    /// As for [`Zip::call`].
    pub fn call_matrix(&self, lhs: &Matrix<L>, rhs: &Matrix<R>) -> Result<Matrix<O>> {
        let _span = skeleton_span(&self.ctx, "Zip.call_matrix");
        check_extra_args("Zip", &self.extras, &[])?;
        if lhs.rows() != rhs.rows() || lhs.cols() != rhs.cols() {
            return Err(Error::ShapeMismatch {
                reason: format!(
                    "zip requires equal shapes, found {}×{} and {}×{}",
                    lhs.rows(),
                    lhs.cols(),
                    rhs.rows(),
                    rhs.cols()
                ),
            });
        }
        let dist = normalize_elementwise(lhs.effective_distribution(Distribution::Block));
        let l_chunks = lhs.ensure_device(dist)?;
        let r_chunks = rhs.ensure_device(dist)?;
        let (output, out_chunks) = Matrix::alloc_device(&self.ctx, lhs.rows(), lhs.cols(), dist)?;
        let cols = lhs.cols();

        let launches = l_chunks
            .iter()
            .zip(&r_chunks)
            .zip(&out_chunks)
            .map(|((lc, rc), oc)| {
                let n = lc.plan.core_len() * cols;
                let args = vec![
                    KernelArg::Buffer(lc.buffer.clone()),
                    KernelArg::Buffer(rc.buffer.clone()),
                    KernelArg::Buffer(oc.buffer.clone()),
                    KernelArg::Scalar(Value::I32(n as i32)),
                ];
                DeviceLaunch {
                    device: lc.plan.device,
                    args,
                    range: NdRange::linear_default(n),
                    units: lc.plan.core_len(),
                }
            })
            .collect();
        let events = run_launches(&self.ctx, &self.program, "skelcl_zip", launches)?;
        self.events.record(events);
        output.mark_device_written();
        Ok(output)
    }

    /// Profiling of the most recent call.
    pub fn events(&self) -> &EventLog {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DeviceSelection;
    use vgpu::{DeviceSpec, Platform};

    fn ctx(n: usize) -> Context {
        Context::init(
            Platform::new(n, DeviceSpec::tesla_t10()),
            DeviceSelection::All,
        )
    }

    #[test]
    fn paper_vector_multiplication() {
        let ctx = ctx(2);
        let mult: Zip<f32, f32, f32> =
            Zip::new(&ctx, "float mult(float x, float y){ return x * y; }").unwrap();
        let a = Vector::from_fn(&ctx, 500, |i| i as f32);
        let b = Vector::from_fn(&ctx, 500, |i| 2.0 * i as f32);
        let c = mult.call(&a, &b).unwrap();
        let out = c.to_vec().unwrap();
        assert_eq!(out[10], 200.0);
        assert_eq!(out[499], 2.0 * 499.0 * 499.0);
    }

    #[test]
    fn length_mismatch_rejected() {
        let ctx = ctx(1);
        let add: Zip<i32, i32, i32> =
            Zip::new(&ctx, "int f(int a, int b){ return a + b; }").unwrap();
        let a = Vector::from_vec(&ctx, vec![1, 2, 3]);
        let b = Vector::from_vec(&ctx, vec![1, 2]);
        assert!(matches!(add.call(&a, &b), Err(Error::ShapeMismatch { .. })));
    }

    #[test]
    fn mixed_element_types() {
        let ctx = ctx(1);
        let select: Zip<f32, u8, f32> = Zip::new(
            &ctx,
            "float f(float x, uchar keep){ return keep != 0 ? x : 0.0f; }",
        )
        .unwrap();
        let a = Vector::from_vec(&ctx, vec![1.5f32, 2.5, 3.5]);
        let mask = Vector::from_vec(&ctx, vec![1u8, 0, 1]);
        assert_eq!(
            select.call(&a, &mask).unwrap().to_vec().unwrap(),
            vec![1.5, 0.0, 3.5]
        );
    }

    #[test]
    fn rhs_redistributed_to_match_lhs() {
        let ctx = ctx(2);
        let add: Zip<i32, i32, i32> =
            Zip::new(&ctx, "int f(int a, int b){ return a + b; }").unwrap();
        let a = Vector::from_fn(&ctx, 100, |i| i as i32);
        let b = Vector::from_fn(&ctx, 100, |i| (1000 - i) as i32);
        // Put b under copy first; zip must coerce it to a's block.
        b.set_distribution(Distribution::Copy).unwrap();
        b.ensure_device(Distribution::Copy).unwrap();
        a.set_distribution(Distribution::Block).unwrap();
        let c = add.call(&a, &b).unwrap();
        assert!(c.to_vec().unwrap().iter().all(|&v| v == 1000));
    }

    #[test]
    fn matrix_zip() {
        let ctx = ctx(2);
        let sub: Zip<i32, i32, i32> =
            Zip::new(&ctx, "int f(int a, int b){ return a - b; }").unwrap();
        let a = Matrix::from_fn(&ctx, 6, 4, |r, c| (r * 4 + c) as i32 * 3);
        let b = Matrix::from_fn(&ctx, 6, 4, |r, c| (r * 4 + c) as i32);
        let out = sub.call_matrix(&a, &b).unwrap();
        assert_eq!(out.get(5, 3).unwrap(), 46);
        let bad = Matrix::<i32>::zeros(&ctx, 4, 6);
        assert!(sub.call_matrix(&a, &bad).is_err());
    }

    #[test]
    fn binary_signature_checked() {
        let ctx = ctx(1);
        assert!(Zip::<f32, f32, f32>::new(&ctx, "float f(float x){ return x; }").is_err());
        assert!(Zip::<f32, i32, f32>::new(&ctx, "float f(float x, float y){ return x; }").is_err());
    }
}
