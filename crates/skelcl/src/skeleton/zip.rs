//! The **Zip** skeleton (paper §3.3): combines two containers elementwise
//! with a binary customizing operator.

use std::marker::PhantomData;

use skelcl_kernel::value::Value;

use crate::codegen::{
    compile_cached, expect_return, expect_scalar_extras, expect_scalar_param, parse_user_function,
    stage_spec, weld_elementwise, StageSpec,
};
use crate::container::{Matrix, Vector};
use crate::context::Context;
use crate::error::{Error, Result};
use crate::exec::{
    elementwise_matrix, elementwise_vector, ElementwiseInput, Skeleton, SkeletonCore,
};
use crate::expr::Expr;
use crate::skeleton::EventLog;
use crate::types::KernelScalar;

/// The Zip skeleton: `zip (⊕) xs ys = [x1 ⊕ y1, …, xn ⊕ yn]`.
///
/// ```
/// use skelcl::{Context, Zip, Vector};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ctx = Context::single_gpu();
/// let add: Zip<f32, f32, f32> =
///     Zip::new(&ctx, "float func(float x, float y){ return x + y; }")?;
/// let a = Vector::from_vec(&ctx, vec![1.0, 2.0]);
/// let b = Vector::from_vec(&ctx, vec![10.0, 20.0]);
/// assert_eq!(add.call(&a, &b)?.to_vec()?, vec![11.0, 22.0]);
/// # Ok(())
/// # }
/// ```
///
/// [`Zip::lazy`] defers the stage into a fusable [`Expr`] instead of
/// executing it — the paper's dot product becomes a single kernel when the
/// zip feeds [`crate::Reduce::call_fused`].
#[derive(Debug)]
pub struct Zip<L: KernelScalar, R: KernelScalar, O: KernelScalar> {
    core: SkeletonCore,
    /// The fusion stage of the customizing function ([`Zip::lazy`]).
    stage: StageSpec,
    _types: PhantomData<fn(L, R) -> O>,
}

impl<L: KernelScalar, R: KernelScalar, O: KernelScalar> Zip<L, R, O> {
    /// Creates a Zip skeleton from a binary customizing function
    /// `O f(L x, R y, …scalars)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCustomizingFunction`] on parse or signature
    /// problems.
    pub fn new(ctx: &Context, source: &str) -> Result<Self> {
        let f = parse_user_function("Zip", source)?;
        expect_scalar_param("Zip", &f, 0, L::SCALAR)?;
        expect_scalar_param("Zip", &f, 1, R::SCALAR)?;
        expect_return("Zip", &f, O::SCALAR)?;
        expect_scalar_extras("Zip", &f, 2)?;
        let extras = f.extra_params(2).to_vec();

        let kernel_source = weld_elementwise("skelcl_zip", &f, &[L::SCALAR, R::SCALAR], O::SCALAR);
        let program = compile_cached(ctx, "skelcl_zip.cl", &kernel_source)?;
        Ok(Zip {
            stage: stage_spec(&f, O::SCALAR),
            core: SkeletonCore::new(ctx, "Zip", program, extras),
            _types: PhantomData,
        })
    }

    /// Applies the skeleton to two vectors of equal length.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::ShapeMismatch`] for unequal lengths, plus any
    /// platform failure.
    pub fn call(&self, lhs: &Vector<L>, rhs: &Vector<R>) -> Result<Vector<O>> {
        self.call_with(lhs, rhs, &[])
    }

    /// [`Zip::call`] with extra scalar arguments.
    ///
    /// # Errors
    ///
    /// As for [`Zip::call`], plus extra-argument arity mismatches.
    pub fn call_with(
        &self,
        lhs: &Vector<L>,
        rhs: &Vector<R>,
        extra: &[Value],
    ) -> Result<Vector<O>> {
        let _span = self.core.begin("Zip.call");
        self.core.check_extras(extra)?;
        if lhs.len() != rhs.len() {
            return Err(Error::ShapeMismatch {
                reason: format!(
                    "zip requires equal lengths, found {} and {}",
                    lhs.len(),
                    rhs.len()
                ),
            });
        }
        // Both operands follow the left operand's effective distribution so
        // their chunks align (the right one is redistributed implicitly).
        elementwise_vector(
            &self.core,
            "skelcl_zip",
            &[lhs as &dyn ElementwiseInput, rhs as &dyn ElementwiseInput],
            extra,
        )
    }

    /// Applies the skeleton elementwise to two matrices of equal shape.
    ///
    /// # Errors
    ///
    /// As for [`Zip::call`].
    pub fn call_matrix(&self, lhs: &Matrix<L>, rhs: &Matrix<R>) -> Result<Matrix<O>> {
        self.call_matrix_with(lhs, rhs, &[])
    }

    /// Matrix variant of [`Zip::call_with`].
    ///
    /// # Errors
    ///
    /// As for [`Zip::call_with`].
    pub fn call_matrix_with(
        &self,
        lhs: &Matrix<L>,
        rhs: &Matrix<R>,
        extra: &[Value],
    ) -> Result<Matrix<O>> {
        let _span = self.core.begin("Zip.call_matrix");
        self.core.check_extras(extra)?;
        if lhs.rows() != rhs.rows() || lhs.cols() != rhs.cols() {
            return Err(Error::ShapeMismatch {
                reason: format!(
                    "zip requires equal shapes, found {}×{} and {}×{}",
                    lhs.rows(),
                    lhs.cols(),
                    rhs.rows(),
                    rhs.cols()
                ),
            });
        }
        elementwise_matrix(
            &self.core,
            "skelcl_zip",
            &[lhs as &dyn ElementwiseInput, rhs as &dyn ElementwiseInput],
            lhs.rows(),
            lhs.cols(),
            extra,
        )
    }

    /// Defers the stage onto two expressions instead of executing it: the
    /// result composes with further lazy stages and evaluates as **one**
    /// fused kernel ([`Expr::eval`]), or feeds a fused reduction
    /// ([`crate::Reduce::call_fused`]).
    ///
    /// # Errors
    ///
    /// Fails when the customizing function takes extra arguments (use
    /// [`Zip::lazy_with`]).
    pub fn lazy(&self, lhs: &Expr<L>, rhs: &Expr<R>) -> Result<Expr<O>> {
        self.lazy_with(lhs, rhs, &[])
    }

    /// [`Zip::lazy`] with extra scalar arguments, bound into the stage at
    /// composition time (they are inlined as literals in the fused
    /// kernel).
    ///
    /// # Errors
    ///
    /// Fails when the extra-argument count mismatches.
    pub fn lazy_with(&self, lhs: &Expr<L>, rhs: &Expr<R>, extra: &[Value]) -> Result<Expr<O>> {
        self.core.check_extras(extra)?;
        Ok(Expr::apply(
            &self.core.ctx,
            self.stage.clone(),
            extra.to_vec(),
            vec![lhs.node().clone(), rhs.node().clone()],
        ))
    }

    /// Profiling of the most recent call.
    pub fn events(&self) -> &EventLog {
        &self.core.events
    }
}

impl<L: KernelScalar, R: KernelScalar, O: KernelScalar> Skeleton for Zip<L, R, O> {
    fn name(&self) -> &'static str {
        self.core.name
    }

    fn context(&self) -> &Context {
        &self.core.ctx
    }

    fn events(&self) -> &EventLog {
        &self.core.events
    }

    fn kernel_disassembly(&self) -> String {
        self.core.program.disassemble()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DeviceSelection;
    use crate::distribution::Distribution;
    use vgpu::{DeviceSpec, Platform};

    fn ctx(n: usize) -> Context {
        Context::init(
            Platform::new(n, DeviceSpec::tesla_t10()),
            DeviceSelection::All,
        )
    }

    #[test]
    fn paper_vector_multiplication() {
        let ctx = ctx(2);
        let mult: Zip<f32, f32, f32> =
            Zip::new(&ctx, "float mult(float x, float y){ return x * y; }").unwrap();
        let a = Vector::from_fn(&ctx, 500, |i| i as f32);
        let b = Vector::from_fn(&ctx, 500, |i| 2.0 * i as f32);
        let c = mult.call(&a, &b).unwrap();
        let out = c.to_vec().unwrap();
        assert_eq!(out[10], 200.0);
        assert_eq!(out[499], 2.0 * 499.0 * 499.0);
    }

    #[test]
    fn length_mismatch_rejected() {
        let ctx = ctx(1);
        let add: Zip<i32, i32, i32> =
            Zip::new(&ctx, "int f(int a, int b){ return a + b; }").unwrap();
        let a = Vector::from_vec(&ctx, vec![1, 2, 3]);
        let b = Vector::from_vec(&ctx, vec![1, 2]);
        assert!(matches!(add.call(&a, &b), Err(Error::ShapeMismatch { .. })));
    }

    #[test]
    fn mixed_element_types() {
        let ctx = ctx(1);
        let select: Zip<f32, u8, f32> = Zip::new(
            &ctx,
            "float f(float x, uchar keep){ return keep != 0 ? x : 0.0f; }",
        )
        .unwrap();
        let a = Vector::from_vec(&ctx, vec![1.5f32, 2.5, 3.5]);
        let mask = Vector::from_vec(&ctx, vec![1u8, 0, 1]);
        assert_eq!(
            select.call(&a, &mask).unwrap().to_vec().unwrap(),
            vec![1.5, 0.0, 3.5]
        );
    }

    #[test]
    fn rhs_redistributed_to_match_lhs() {
        let ctx = ctx(2);
        let add: Zip<i32, i32, i32> =
            Zip::new(&ctx, "int f(int a, int b){ return a + b; }").unwrap();
        let a = Vector::from_fn(&ctx, 100, |i| i as i32);
        let b = Vector::from_fn(&ctx, 100, |i| (1000 - i) as i32);
        // Put b under copy first; zip must coerce it to a's block.
        b.set_distribution(Distribution::Copy).unwrap();
        b.ensure_device(Distribution::Copy).unwrap();
        a.set_distribution(Distribution::Block).unwrap();
        let c = add.call(&a, &b).unwrap();
        assert!(c.to_vec().unwrap().iter().all(|&v| v == 1000));
    }

    #[test]
    fn matrix_zip() {
        let ctx = ctx(2);
        let sub: Zip<i32, i32, i32> =
            Zip::new(&ctx, "int f(int a, int b){ return a - b; }").unwrap();
        let a = Matrix::from_fn(&ctx, 6, 4, |r, c| (r * 4 + c) as i32 * 3);
        let b = Matrix::from_fn(&ctx, 6, 4, |r, c| (r * 4 + c) as i32);
        let out = sub.call_matrix(&a, &b).unwrap();
        assert_eq!(out.get(5, 3).unwrap(), 46);
        let bad = Matrix::<i32>::zeros(&ctx, 4, 6);
        assert!(sub.call_matrix(&a, &bad).is_err());
    }

    #[test]
    fn matrix_zip_with_extra_arguments() {
        let ctx = ctx(2);
        let saxpy: Zip<f32, f32, f32> = Zip::new(
            &ctx,
            "float f(float x, float y, float a){ return a * x + y; }",
        )
        .unwrap();
        let x = Matrix::from_fn(&ctx, 4, 5, |r, c| (r * 5 + c) as f32);
        let y = Matrix::from_fn(&ctx, 4, 5, |_, _| 1.0f32);
        let out = saxpy.call_matrix_with(&x, &y, &[Value::F32(2.0)]).unwrap();
        assert_eq!(out.get(0, 0).unwrap(), 1.0);
        assert_eq!(out.get(3, 4).unwrap(), 2.0 * 19.0 + 1.0);
        // Before call_matrix_with existed, extras could never reach the
        // matrix path — both arities must now be enforced symmetrically.
        assert!(saxpy.call_matrix(&x, &y).is_err());
        assert!(saxpy
            .call_matrix_with(&x, &y, &[Value::F32(1.0), Value::F32(2.0)])
            .is_err());
    }

    #[test]
    fn binary_signature_checked() {
        let ctx = ctx(1);
        assert!(Zip::<f32, f32, f32>::new(&ctx, "float f(float x){ return x; }").is_err());
        assert!(Zip::<f32, i32, f32>::new(&ctx, "float f(float x, float y){ return x; }").is_err());
    }
}
