//! The **Reduce** skeleton (paper §3.3): combines all elements of a vector
//! with a binary associative customizing operator.
//!
//! Implementation: the classic two-level GPU reduction — each work-group
//! accumulates a grid-strided slice into local memory and tree-reduces it
//! behind barriers; partial results are reduced again until one value
//! remains. No identity element is required (the paper's `Reduce` takes
//! only the operator): the first loaded element seeds each accumulator.

use std::marker::PhantomData;

use skelcl_kernel::value::Value;
use vgpu::{DeviceBuffer, Event, KernelArg, NdRange};

use crate::codegen::{compile_cached, expect_return, expect_scalar_param, parse_user_function};
use crate::container::{Matrix, Scalar, Vector};
use crate::context::Context;
use crate::distribution::Distribution;
use crate::engine::{LaunchPlan, NodeId};
use crate::error::{Error, Result};
use crate::skeleton::common::{skeleton_span, EventLog};
use crate::types::KernelScalar;

/// Work-group size used by the reduction kernels.
const WG: usize = 256;
/// Maximum number of work-groups per pass (grid-stride covers the rest).
const MAX_GROUPS: usize = 64;

/// The Reduce skeleton: `red (⊕) [v1, …, vn] = v1 ⊕ v2 ⊕ … ⊕ vn`.
///
/// The customizing operator must be **associative** (the reduction order is
/// unspecified, as in the paper); commutativity is *also* required because
/// grid-striding interleaves lanes.
///
/// ```
/// use skelcl::{Context, Reduce, Vector};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ctx = Context::single_gpu();
/// let sum: Reduce<f32> = Reduce::new(&ctx, "float sum(float x, float y){ return x + y; }")?;
/// let v = Vector::from_vec(&ctx, vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(sum.call(&v)?.value(), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Reduce<T: KernelScalar> {
    ctx: Context,
    program: skelcl_kernel::Program,
    events: EventLog,
    _types: PhantomData<fn(T, T) -> T>,
}

impl<T: KernelScalar> Reduce<T> {
    /// Creates a Reduce skeleton from a binary operator `T f(T x, T y)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCustomizingFunction`] on parse or signature
    /// problems.
    pub fn new(ctx: &Context, source: &str) -> Result<Self> {
        let f = parse_user_function("Reduce", source)?;
        expect_scalar_param("Reduce", &f, 0, T::SCALAR)?;
        expect_scalar_param("Reduce", &f, 1, T::SCALAR)?;
        expect_return("Reduce", &f, T::SCALAR)?;
        if f.params.len() != 2 {
            return Err(Error::InvalidCustomizingFunction {
                skeleton: "Reduce",
                reason: format!("`{}` must take exactly two parameters", f.name),
            });
        }

        let kernel_source = format!(
            "{user}\n\
             __kernel void skelcl_reduce(__global const {t}* skelcl_in, __global {t}* skelcl_out, int skelcl_n) {{\n\
                 __local {t} skelcl_scratch[{wg}];\n\
                 int lid = (int)get_local_id(0);\n\
                 int gid = (int)get_global_id(0);\n\
                 int gsize = (int)get_global_size(0);\n\
                 int lsz = (int)get_local_size(0);\n\
                 int active = skelcl_n < gsize ? skelcl_n : gsize;\n\
                 if (gid < active) {{\n\
                     {t} acc = skelcl_in[gid];\n\
                     for (int i = gid + gsize; i < skelcl_n; i += gsize) acc = {f}(acc, skelcl_in[i]);\n\
                     skelcl_scratch[lid] = acc;\n\
                 }}\n\
                 barrier(CLK_LOCAL_MEM_FENCE);\n\
                 int group_base = (int)get_group_id(0) * lsz;\n\
                 int group_active = active - group_base;\n\
                 if (group_active > lsz) group_active = lsz;\n\
                 for (int stride = lsz / 2; stride > 0; stride >>= 1) {{\n\
                     if (lid < stride && lid + stride < group_active)\n\
                         skelcl_scratch[lid] = {f}(skelcl_scratch[lid], skelcl_scratch[lid + stride]);\n\
                     barrier(CLK_LOCAL_MEM_FENCE);\n\
                 }}\n\
                 if (lid == 0 && group_active > 0)\n\
                     skelcl_out[get_group_id(0)] = skelcl_scratch[0];\n\
             }}\n",
            user = f.source(),
            t = T::SCALAR,
            f = f.name,
            wg = WG,
        );
        let program = compile_cached(ctx, "skelcl_reduce.cl", &kernel_source)?;
        Ok(Reduce {
            ctx: ctx.clone(),
            program,
            events: EventLog::default(),
            _types: PhantomData,
        })
    }

    /// Reduces a vector to a scalar.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::EmptyContainer`] on empty input, plus any
    /// platform failure.
    pub fn call(&self, input: &Vector<T>) -> Result<Scalar<T>> {
        let _span = skeleton_span(&self.ctx, "Reduce.call");
        if input.is_empty() {
            return Err(Error::EmptyContainer {
                operation: "Reduce",
            });
        }
        let mut events: Vec<Event> = Vec::new();

        // Distribute (block by default; copy degrades to a single device —
        // reducing the same copy on every GPU would be redundant work).
        let dist = match input.effective_distribution(Distribution::Block) {
            Distribution::Copy => Distribution::Single(0),
            Distribution::Overlap { .. } => Distribution::Block,
            other => other,
        };
        let chunks = input.ensure_device(dist)?;

        // Phase 1: one plan — every device reduces its chunk down to a
        // single value on its own asynchronous queue, ending in a
        // one-element readback. The queues run concurrently; no host
        // threads are involved.
        let mut plan = LaunchPlan::new();
        let mut read_ids = Vec::with_capacity(chunks.len());
        for chunk in &chunks {
            read_ids.push(self.plan_chain(
                &mut plan,
                chunk.plan.device,
                chunk.buffer.clone(),
                chunk.plan.core_len(),
                chunk.plan.core_len(),
                Vec::new(),
            )?);
        }
        let mut run = plan.execute(&self.ctx)?;
        run.wait()?;
        let mut values = Vec::with_capacity(read_ids.len());
        for id in read_ids {
            values.push(T::from_le_bytes(&run.take_read(id)?));
        }
        events.extend(run.into_events());

        // Phase 2: combine the per-device partials (at most one per GPU) on
        // the first participating device.
        let result = if values.len() == 1 {
            values[0]
        } else {
            let device = chunks[0].plan.device;
            let bytes = crate::types::to_bytes(&values);
            let len = values.len();
            let buf = self.ctx.queue(device).create_buffer(bytes.len())?;
            let mut plan = LaunchPlan::new();
            let upload = plan.write(device, &buf, 0, bytes, &[]);
            let read = self.plan_chain(&mut plan, device, buf, len, 0, vec![upload])?;
            let mut run = plan.execute(&self.ctx)?;
            run.wait()?;
            let v = T::from_le_bytes(&run.take_read(read)?);
            events.extend(run.into_events());
            v
        };

        self.events.record(events);
        Ok(Scalar::new(result, self.events.last_kernel_time()))
    }

    /// Reduces a matrix (all elements, row-major order of combination per
    /// chunk) to a scalar.
    ///
    /// # Errors
    ///
    /// As for [`Reduce::call`].
    pub fn call_matrix(&self, input: &Matrix<T>) -> Result<Scalar<T>> {
        let _span = skeleton_span(&self.ctx, "Reduce.call_matrix");
        if input.is_empty() {
            return Err(Error::EmptyContainer {
                operation: "Reduce",
            });
        }
        let mut events: Vec<Event> = Vec::new();
        let dist = match input.effective_distribution(Distribution::Block) {
            Distribution::Copy => Distribution::Single(0),
            Distribution::Overlap { .. } => Distribution::Block,
            other => other,
        };
        let chunks = input.ensure_device(dist)?;
        let cols = input.cols();

        let mut plan = LaunchPlan::new();
        let mut read_ids = Vec::with_capacity(chunks.len());
        for chunk in &chunks {
            read_ids.push(self.plan_chain(
                &mut plan,
                chunk.plan.device,
                chunk.buffer.clone(),
                chunk.plan.core_len() * cols,
                chunk.plan.core_len(),
                Vec::new(),
            )?);
        }
        let mut run = plan.execute(&self.ctx)?;
        run.wait()?;
        let mut values = Vec::with_capacity(read_ids.len());
        for id in read_ids {
            values.push(T::from_le_bytes(&run.take_read(id)?));
        }
        events.extend(run.into_events());

        let result = if values.len() == 1 {
            values[0]
        } else {
            let device = chunks[0].plan.device;
            let bytes = crate::types::to_bytes(&values);
            let len = values.len();
            let buf = self.ctx.queue(device).create_buffer(bytes.len())?;
            let mut plan = LaunchPlan::new();
            let upload = plan.write(device, &buf, 0, bytes, &[]);
            let read = self.plan_chain(&mut plan, device, buf, len, 0, vec![upload])?;
            let mut run = plan.execute(&self.ctx)?;
            run.wait()?;
            let v = T::from_le_bytes(&run.take_read(read)?);
            events.extend(run.into_events());
            v
        };

        self.events.record(events);
        Ok(Scalar::new(result, self.events.last_kernel_time()))
    }

    /// Appends the multi-pass reduction of `n` leading elements of
    /// `buffer` on `device` to `plan`, ending in a one-element readback
    /// node whose id is returned. `units` is the scheduler measurement
    /// credited to the chain (0 for helper chains such as the partial
    /// combine); `deps` gates the first pass.
    fn plan_chain(
        &self,
        plan: &mut LaunchPlan,
        device: usize,
        mut buffer: DeviceBuffer,
        mut n: usize,
        units: usize,
        mut deps: Vec<NodeId>,
    ) -> Result<NodeId> {
        let queue = self.ctx.queue(device);
        let elem = std::mem::size_of::<T>();
        let mut first = true;
        while n > 1 {
            let groups = n.div_ceil(WG).min(MAX_GROUPS);
            let out = queue.create_buffer(groups * elem)?;
            let id = plan.kernel(
                device,
                &self.program,
                "skelcl_reduce",
                vec![
                    KernelArg::Buffer(buffer.clone()),
                    KernelArg::Buffer(out.clone()),
                    KernelArg::Scalar(Value::I32(n as i32)),
                ],
                NdRange::linear(groups * WG, WG),
                if first { units } else { 0 },
                &deps,
            );
            deps = vec![id];
            buffer = out;
            n = groups.min(n.div_ceil(WG));
            first = false;
        }
        Ok(plan.read(device, &buffer, 0, elem, &deps))
    }

    /// Profiling of the most recent call.
    pub fn events(&self) -> &EventLog {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DeviceSelection;
    use vgpu::{DeviceSpec, Platform};

    fn ctx(n: usize) -> Context {
        Context::init(
            Platform::new(n, DeviceSpec::tesla_t10()),
            DeviceSelection::All,
        )
    }

    fn sum_reduce(ctx: &Context) -> Reduce<i64> {
        Reduce::new(ctx, "long sum(long x, long y){ return x + y; }").unwrap()
    }

    #[test]
    fn sums_small_vector() {
        let ctx = ctx(1);
        let sum = sum_reduce(&ctx);
        let v = Vector::from_vec(&ctx, vec![1i64, 2, 3, 4, 5]);
        assert_eq!(sum.call(&v).unwrap().value(), 15);
    }

    #[test]
    fn sums_across_group_and_pass_boundaries() {
        let ctx = ctx(1);
        let sum = sum_reduce(&ctx);
        // Sizes straddling WG (256), MAX_GROUPS*WG (16384) and beyond.
        for n in [1usize, 2, 255, 256, 257, 1000, 16384, 16385, 100_000] {
            let v = Vector::from_fn(&ctx, n, |i| i as i64);
            let expected: i64 = (0..n as i64).sum();
            assert_eq!(sum.call(&v).unwrap().value(), expected, "n = {n}");
        }
    }

    #[test]
    fn multi_gpu_reduction() {
        let ctx = ctx(4);
        let sum = sum_reduce(&ctx);
        let n = 10_001usize;
        let v = Vector::from_fn(&ctx, n, |i| i as i64);
        let expected: i64 = (0..n as i64).sum();
        let s = sum.call(&v).unwrap();
        assert_eq!(s.value(), expected);
        assert!(s.kernel_time().as_nanos() > 0);
    }

    #[test]
    fn maximum_reduce() {
        let ctx = ctx(2);
        let maxr: Reduce<f32> =
            Reduce::new(&ctx, "float m(float x, float y){ return fmax(x, y); }").unwrap();
        let v = Vector::from_fn(&ctx, 5000, |i| ((i * 37) % 1999) as f32);
        let expected = v.to_vec().unwrap().iter().cloned().fold(f32::MIN, f32::max);
        assert_eq!(maxr.call(&v).unwrap().value(), expected);
    }

    #[test]
    fn empty_input_rejected() {
        let ctx = ctx(1);
        let sum = sum_reduce(&ctx);
        let v = Vector::<i64>::zeros(&ctx, 0);
        assert!(matches!(sum.call(&v), Err(Error::EmptyContainer { .. })));
    }

    #[test]
    fn signature_checked() {
        let ctx = ctx(1);
        assert!(Reduce::<f32>::new(&ctx, "float f(float x){ return x; }").is_err());
        assert!(Reduce::<f32>::new(&ctx, "int f(float x, float y){ return 1; }").is_err());
        assert!(
            Reduce::<f32>::new(&ctx, "float f(float x, float y, float z){ return x; }").is_err()
        );
    }

    #[test]
    fn matrix_reduction() {
        let ctx = ctx(3);
        let sum = sum_reduce(&ctx);
        let m = crate::Matrix::from_fn(&ctx, 37, 23, |r, c| (r * 23 + c) as i64);
        let expected: i64 = (0..(37 * 23) as i64).sum();
        assert_eq!(sum.call_matrix(&m).unwrap().value(), expected);
        // Empty matrix rejected.
        let empty = crate::Matrix::<i64>::zeros(&ctx, 0, 5);
        assert!(matches!(
            sum.call_matrix(&empty),
            Err(Error::EmptyContainer { .. })
        ));
    }

    #[test]
    fn copy_distribution_reduces_once() {
        let ctx = ctx(2);
        let sum = sum_reduce(&ctx);
        let v = Vector::from_fn(&ctx, 100, |i| i as i64);
        v.set_distribution(Distribution::Copy).unwrap();
        assert_eq!(sum.call(&v).unwrap().value(), (0..100).sum::<i64>());
    }
}
