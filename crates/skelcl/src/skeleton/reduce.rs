//! The **Reduce** skeleton (paper §3.3): combines all elements of a vector
//! with a binary associative customizing operator.
//!
//! Implementation: the classic two-level GPU reduction — each work-group
//! accumulates a grid-strided slice into local memory and tree-reduces it
//! behind barriers; partial results are reduced again until one value
//! remains. No identity element is required (the paper's `Reduce` takes
//! only the operator): the first loaded element seeds each accumulator.
//!
//! [`Reduce::call_fused`] accepts a lazy elementwise expression
//! ([`crate::Expr`]) instead of a materialised vector: the expression DAG
//! becomes the load prologue of the first reduction pass (a generated
//! `skelcl_fused_load` device function), so e.g. the paper's dot product
//! runs as a single zip-mul+tree-reduce pass with no intermediate buffer.

use std::marker::PhantomData;

use skelcl_kernel::value::Value;
use vgpu::{DeviceBuffer, Event, KernelArg, NdRange};

use crate::codegen::{compile_cached, expect_return, expect_scalar_param, parse_user_function};
use crate::container::data::DeviceChunk;
use crate::container::{Matrix, Scalar, Vector};
use crate::context::Context;
use crate::distribution::Distribution;
use crate::engine::{LaunchPlan, NodeId};
use crate::error::{Error, Result};
use crate::exec::{materialize, reduction_distribution, Skeleton, SkeletonCore};
use crate::expr::Expr;
use crate::plan::{prepare_reduce, FusedPlan, PlanNode, ReduceInput};
use crate::skeleton::EventLog;
use crate::types::KernelScalar;

/// Work-group size used by the reduction kernels.
const WG: usize = 256;
/// Maximum number of work-groups per pass (grid-stride covers the rest).
const MAX_GROUPS: usize = 64;

/// Generates a two-level tree-reduction kernel named `kernel`. The element
/// loads are abstracted (`load_first` for the seeding load at `gid`,
/// `load_loop` for the grid-stride load at `i`) so the same template welds
/// both the plain kernel (loads from `skelcl_in`) and the fused kernel
/// (loads through the generated `skelcl_fused_load` prologue) — both
/// perform exactly the same operator applications in the same order, which
/// is what makes fused and unfused results bit-identical.
fn tree_reduce_kernel(
    t: skelcl_kernel::types::ScalarType,
    f: &str,
    kernel: &str,
    in_params: &str,
    load_first: &str,
    load_loop: &str,
) -> String {
    format!(
        "__kernel void {kernel}({in_params}__global {t}* skelcl_out, int skelcl_n) {{\n\
             __local {t} skelcl_scratch[{wg}];\n\
             int lid = (int)get_local_id(0);\n\
             int gid = (int)get_global_id(0);\n\
             int gsize = (int)get_global_size(0);\n\
             int lsz = (int)get_local_size(0);\n\
             int active = skelcl_n < gsize ? skelcl_n : gsize;\n\
             if (gid < active) {{\n\
                 {t} acc = {load_first};\n\
                 for (int i = gid + gsize; i < skelcl_n; i += gsize) acc = {f}(acc, {load_loop});\n\
                 skelcl_scratch[lid] = acc;\n\
             }}\n\
             barrier(CLK_LOCAL_MEM_FENCE);\n\
             int group_base = (int)get_group_id(0) * lsz;\n\
             int group_active = active - group_base;\n\
             if (group_active > lsz) group_active = lsz;\n\
             for (int stride = lsz / 2; stride > 0; stride >>= 1) {{\n\
                 if (lid < stride && lid + stride < group_active)\n\
                     skelcl_scratch[lid] = {f}(skelcl_scratch[lid], skelcl_scratch[lid + stride]);\n\
                 barrier(CLK_LOCAL_MEM_FENCE);\n\
             }}\n\
             if (lid == 0 && group_active > 0)\n\
                 skelcl_out[get_group_id(0)] = skelcl_scratch[0];\n\
         }}\n",
        wg = WG,
    )
}

/// The Reduce skeleton: `red (⊕) [v1, …, vn] = v1 ⊕ v2 ⊕ … ⊕ vn`.
///
/// The customizing operator must be **associative** (the reduction order is
/// unspecified, as in the paper); commutativity is *also* required because
/// grid-striding interleaves lanes.
///
/// ```
/// use skelcl::{Context, Reduce, Vector};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ctx = Context::single_gpu();
/// let sum: Reduce<f32> = Reduce::new(&ctx, "float sum(float x, float y){ return x + y; }")?;
/// let v = Vector::from_vec(&ctx, vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(sum.call(&v)?.value(), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Reduce<T: KernelScalar> {
    core: SkeletonCore,
    /// Pretty-printed user operator unit, rewelded into fused programs.
    user_source: String,
    /// Name of the user operator.
    user_name: String,
    _types: PhantomData<fn(T, T) -> T>,
}

impl<T: KernelScalar> Reduce<T> {
    /// Creates a Reduce skeleton from a binary operator `T f(T x, T y)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCustomizingFunction`] on parse or signature
    /// problems.
    pub fn new(ctx: &Context, source: &str) -> Result<Self> {
        let f = parse_user_function("Reduce", source)?;
        expect_scalar_param("Reduce", &f, 0, T::SCALAR)?;
        expect_scalar_param("Reduce", &f, 1, T::SCALAR)?;
        expect_return("Reduce", &f, T::SCALAR)?;
        if f.params.len() != 2 {
            return Err(Error::InvalidCustomizingFunction {
                skeleton: "Reduce",
                reason: format!("`{}` must take exactly two parameters", f.name),
            });
        }

        let kernel_source = format!(
            "{user}\n{kernel}",
            user = f.source(),
            kernel = tree_reduce_kernel(
                T::SCALAR,
                &f.name,
                "skelcl_reduce",
                &format!("__global const {t}* skelcl_in, ", t = T::SCALAR),
                "skelcl_in[gid]",
                "skelcl_in[i]",
            ),
        );
        let program = compile_cached(ctx, "skelcl_reduce.cl", &kernel_source)?;
        Ok(Reduce {
            user_source: f.source(),
            user_name: f.name.clone(),
            core: SkeletonCore::new(ctx, "Reduce", program, Vec::new()),
            _types: PhantomData,
        })
    }

    /// Reduces a vector to a scalar.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::EmptyContainer`] on empty input, plus any
    /// platform failure.
    pub fn call(&self, input: &Vector<T>) -> Result<Scalar<T>> {
        let _span = self.core.begin("Reduce.call");
        if input.is_empty() {
            return Err(Error::EmptyContainer {
                operation: "Reduce",
            });
        }
        // Distribute (block by default; copy degrades to a single device —
        // reducing the same copy on every GPU would be redundant work).
        let dist = reduction_distribution(input.effective_distribution(Distribution::Block));
        let chunks = input.ensure_device(dist)?;

        let mut events: Vec<Event> = Vec::new();
        let values = self.reduce_chunks(&chunks, 1, &mut events)?;
        let result = self.combine_partials(&values, chunks[0].plan.device, &mut events)?;
        self.core.events.record(events);
        Ok(Scalar::new(result, self.core.events.last_kernel_time()))
    }

    /// Reduces a matrix (all elements, row-major order of combination per
    /// chunk) to a scalar.
    ///
    /// # Errors
    ///
    /// As for [`Reduce::call`].
    pub fn call_matrix(&self, input: &Matrix<T>) -> Result<Scalar<T>> {
        let _span = self.core.begin("Reduce.call_matrix");
        if input.is_empty() {
            return Err(Error::EmptyContainer {
                operation: "Reduce",
            });
        }
        let dist = reduction_distribution(input.effective_distribution(Distribution::Block));
        let chunks = input.ensure_device(dist)?;

        let mut events: Vec<Event> = Vec::new();
        let values = self.reduce_chunks(&chunks, input.cols(), &mut events)?;
        let result = self.combine_partials(&values, chunks[0].plan.device, &mut events)?;
        self.core.events.record(events);
        Ok(Scalar::new(result, self.core.events.last_kernel_time()))
    }

    /// Reduces a lazy elementwise expression without materialising it: the
    /// expression DAG is welded into the first reduction pass as a
    /// `skelcl_fused_load` device function, so each element is computed
    /// on the fly from the source containers (one kernel per device where
    /// the unfused path needs at least two, and zero intermediate-buffer
    /// traffic). Later passes reduce the per-group partials with the
    /// ordinary kernel, performing exactly the same operator applications
    /// in the same order as [`Reduce::call`] on the materialised
    /// expression — the results are bit-identical.
    ///
    /// ```
    /// use skelcl::{Context, Reduce, Vector, Zip};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let ctx = Context::tesla_s1070(); // 4 virtual GPUs
    /// let sum: Reduce<f32> = Reduce::new(&ctx, "float sum(float x, float y){ return x + y; }")?;
    /// let mult: Zip<f32, f32, f32> =
    ///     Zip::new(&ctx, "float mult(float x, float y){ return x * y; }")?;
    /// let a = Vector::from_fn(&ctx, 1024, |i| i as f32);
    /// let b = Vector::from_fn(&ctx, 1024, |_| 2.0);
    /// // The paper's dot product as ONE fused pass, no intermediate vector:
    /// let dot = sum.call_fused(&mult.lazy(&a.expr(), &b.expr())?)?;
    /// assert_eq!(dot.value(), sum.call(&mult.call(&a, &b)?)?.value());
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Fails with [`Error::EmptyContainer`] on an empty expression,
    /// [`Error::ShapeMismatch`] when the expression lives on a different
    /// context or is malformed, plus any platform failure.
    pub fn call_fused(&self, expr: &Expr<T>) -> Result<Scalar<T>> {
        let _span = self.core.begin("Reduce.call_fused");
        let node = expr.node().clone();
        // Validate the raw tree before lowering launches anything.
        {
            let p = FusedPlan::build(&node)?;
            if !p.ctx.same_as(&self.core.ctx) {
                return Err(Error::ShapeMismatch {
                    reason: "fused expression belongs to a different context than this Reduce"
                        .into(),
                });
            }
            if p.len == 0 {
                return Err(Error::EmptyContainer {
                    operation: "Reduce",
                });
            }
        }

        // Lower the input DAG (stencils always execute here; staging
        // depends on SKELCL_PLAN), then weld or plainly reduce the rest.
        let (input, pre_events) = prepare_reduce(&node)?;
        let mut events = pre_events;
        let result = match &input {
            ReduceInput::Staged(collapsed) => {
                let PlanNode::Source { input, .. } = collapsed.as_ref() else {
                    unreachable!("staged lowering returns a Source");
                };
                let dist = reduction_distribution(input.input_distribution(Distribution::Block));
                let chunks = input.input_chunks(dist)?;
                let values = self.reduce_chunks(&chunks, 1, &mut events)?;
                self.combine_partials(&values, chunks[0].plan.device, &mut events)?
            }
            ReduceInput::Welded(collapsed) => self.reduce_welded(collapsed, &mut events)?,
        };
        self.core.events.record(events);
        Ok(Scalar::new(result, self.core.events.last_kernel_time()))
    }

    /// Welds a collapsed elementwise/scan region into the reduction's
    /// first pass: stage units + reduce operator + fused-load prologue +
    /// a tree reduction that loads through the prologue.
    fn reduce_welded(&self, collapsed: &PlanNode, events: &mut Vec<Event>) -> Result<T> {
        let p = FusedPlan::build(collapsed)?;
        let in_params = p.input_params();
        let in_args = p.input_args();
        let source = format!(
            "{units}\n{user}\n\
             {t} skelcl_fused_load({in_params}int skelcl_i) {{\n\
             \x20   return {load};\n\
             }}\n{kernel}",
            units = p.units,
            user = self.user_source,
            t = T::SCALAR,
            load = p.load_expr,
            kernel = tree_reduce_kernel(
                T::SCALAR,
                &self.user_name,
                "skelcl_reduce_fused",
                &in_params,
                &format!("skelcl_fused_load({in_args}, gid)"),
                &format!("skelcl_fused_load({in_args}, i)"),
            ),
        );
        let fused_program = compile_cached(&self.core.ctx, "skelcl_reduce_fused.cl", &source)?;

        let dist = reduction_distribution(p.sources[0].input_distribution(Distribution::Block));
        let bytes_per_unit: usize = p.input_types.iter().map(|t| t.size_bytes()).sum();
        if let Some(sched) = crate::stream::plan_stream(
            &self.core.ctx,
            p.len,
            dist,
            bytes_per_unit,
            &|n| {
                // Resident outside the staging ring: the grid-sized lane
                // accumulator, the per-group partials buffer, and the
                // partial chain's intermediates (bounded by another
                // `groups` elements — pass outputs shrink geometrically).
                let groups = n.div_ceil(WG).min(MAX_GROUPS);
                (groups * WG + 2 * groups) * std::mem::size_of::<T>()
            },
            0,
        ) {
            return self.reduce_streamed(&p, &sched, events);
        }
        let chunk_sets = materialize(&p.sources, dist)?;
        if !p.scan_leaves.is_empty() {
            p.prepare_scan(&chunk_sets, events)?;
        }
        let elem = std::mem::size_of::<T>();

        // Phase 1: per device, one fused pass (sources → per-group
        // partials), then the ordinary multi-pass chain over the partials
        // — identical to what the plain path does after its first pass.
        let mut plan = LaunchPlan::new();
        let mut read_ids = Vec::new();
        let mut first_device = None;
        for j in 0..chunk_sets[0].len() {
            let device = chunk_sets[0][j].plan.device;
            first_device.get_or_insert(device);
            let n = chunk_sets[0][j].plan.core_len();
            let groups = n.div_ceil(WG).min(MAX_GROUPS);
            let partials = self.core.ctx.queue(device).create_buffer(groups * elem)?;
            let mut args: Vec<KernelArg> = chunk_sets
                .iter()
                .map(|chunks| {
                    debug_assert_eq!(chunks[j].plan.core, chunk_sets[0][j].plan.core);
                    KernelArg::Buffer(chunks[j].buffer.clone())
                })
                .collect();
            args.extend(p.scan_args(&chunk_sets, j));
            args.push(KernelArg::Buffer(partials.clone()));
            args.push(KernelArg::Scalar(Value::I32(n as i32)));
            let first = plan.kernel(
                device,
                &fused_program,
                "skelcl_reduce_fused",
                args,
                NdRange::linear(groups * WG, WG),
                n,
                &[],
            );
            read_ids.push(self.plan_chain(
                &mut plan,
                device,
                partials,
                groups.min(n.div_ceil(WG)),
                0,
                vec![first],
            )?);
        }
        let mut run = plan.execute(&self.core.ctx)?;
        run.wait()?;
        let mut values = Vec::with_capacity(read_ids.len());
        for id in read_ids {
            values.push(T::from_le_bytes(&run.take_read(id)?));
        }
        events.extend(run.into_events());

        // Phase 2: combine per-device partials, as in the plain path.
        let device = first_device.expect("non-empty expression has chunks");
        self.combine_partials(&values, device, events)
    }

    /// The out-of-core streamed reduction (`SKELCL_STREAM`): each device
    /// keeps a persistent grid-sized lane accumulator and folds its share
    /// chunk-by-chunk from a staging ring; a finish kernel then
    /// tree-combines the lanes into the same per-group partials the
    /// oracle's one-shot first pass produces. Every lane seeds with the
    /// same element and folds the same elements in the same order as the
    /// one-shot grid-stride kernel (a lane is live exactly when its index
    /// is below the elements consumed so far), so results stay
    /// bit-identical to the non-streamed path.
    fn reduce_streamed(
        &self,
        p: &FusedPlan,
        sched: &crate::stream::StreamSchedule,
        events: &mut Vec<Event>,
    ) -> Result<T> {
        use skelcl_profile::{metrics as m, FlightKind};

        let ctx = &self.core.ctx;
        let profiler = ctx.profiler().clone();
        profiler.add(m::STREAM_REGIONS, 1);
        // Streamed chunks never line up with the chunks a folded scan
        // recorded: land the offsets in the source first (the kernel's
        // `(has_offset, offset)` pairs degenerate to "no offset").
        p.apply_scan_offsets(events)?;
        let in_params = p.input_params();
        let in_args = p.input_args();
        let t = T::SCALAR;
        let f = &self.user_name;
        let source = format!(
            "{units}\n{user}\n\
             {t} skelcl_fused_load({in_params}int skelcl_i) {{\n\
             \x20   return {load};\n\
             }}\n\
             __kernel void skelcl_reduce_stream({in_params}__global {t}* skelcl_acc,\n\
             \x20       int skelcl_cs, int skelcl_ce) {{\n\
             \x20   int g = (int)get_global_id(0);\n\
             \x20   int gsize = (int)get_global_size(0);\n\
             \x20   int i0 = g;\n\
             \x20   if (i0 < skelcl_cs) i0 += ((skelcl_cs - g + gsize - 1) / gsize) * gsize;\n\
             \x20   int have = g < skelcl_cs;\n\
             \x20   {t} acc = ({t})0;\n\
             \x20   if (have) acc = skelcl_acc[g];\n\
             \x20   for (int i = i0; i < skelcl_ce; i += gsize) {{\n\
             \x20       {t} x = skelcl_fused_load({in_args}, i - skelcl_cs);\n\
             \x20       if (have) {{ acc = {f}(acc, x); }} else {{ acc = x; have = 1; }}\n\
             \x20   }}\n\
             \x20   if (have) skelcl_acc[g] = acc;\n\
             }}\n\
             __kernel void skelcl_reduce_stream_finish(__global const {t}* skelcl_acc,\n\
             \x20       __global {t}* skelcl_out, int skelcl_n) {{\n\
             \x20   __local {t} skelcl_scratch[{wg}];\n\
             \x20   int lid = (int)get_local_id(0);\n\
             \x20   int gid = (int)get_global_id(0);\n\
             \x20   int gsize = (int)get_global_size(0);\n\
             \x20   int lsz = (int)get_local_size(0);\n\
             \x20   int active = skelcl_n < gsize ? skelcl_n : gsize;\n\
             \x20   if (gid < active) skelcl_scratch[lid] = skelcl_acc[gid];\n\
             \x20   barrier(CLK_LOCAL_MEM_FENCE);\n\
             \x20   int group_base = (int)get_group_id(0) * lsz;\n\
             \x20   int group_active = active - group_base;\n\
             \x20   if (group_active > lsz) group_active = lsz;\n\
             \x20   for (int stride = lsz / 2; stride > 0; stride >>= 1) {{\n\
             \x20       if (lid < stride && lid + stride < group_active)\n\
             \x20           skelcl_scratch[lid] = {f}(skelcl_scratch[lid], skelcl_scratch[lid + stride]);\n\
             \x20       barrier(CLK_LOCAL_MEM_FENCE);\n\
             \x20   }}\n\
             \x20   if (lid == 0 && group_active > 0)\n\
             \x20       skelcl_out[get_group_id(0)] = skelcl_scratch[0];\n\
             }}\n",
            units = p.units,
            user = self.user_source,
            load = p.load_expr,
            wg = WG,
        );
        let program = compile_cached(ctx, "skelcl_reduce_stream.cl", &source)?;

        let elem = std::mem::size_of::<T>();
        let bytes_per_unit: usize = p.input_types.iter().map(|ty| ty.size_bytes()).sum();
        let mut plan = LaunchPlan::new();
        plan.observe_per_kernel();
        let mut rings = Vec::new();
        let mut lifecycles = Vec::new();
        let mut read_ids = Vec::new();
        let mut first_device = None;
        let mut staged_total = 0u64;
        let mut chunk_total = 0u64;
        for share in &sched.shares {
            let device = share.plan.device;
            first_device.get_or_insert(device);
            let core = share.plan.core.clone();
            let n = core.len();
            let groups = n.div_ceil(WG).min(MAX_GROUPS);
            let gsize = groups * WG;
            let acc = ctx.queue(device).create_buffer(gsize * elem)?;
            let partials = ctx.queue(device).create_buffer(groups * elem)?;
            let cu = share.chunk_units.clamp(1, n);
            let chunks = n.div_ceil(cu);
            let depth = sched.depth.min(chunks).max(1);
            let caps: Vec<usize> = p
                .input_types
                .iter()
                .map(|ty| cu * ty.size_bytes())
                .collect();
            let mut ring = crate::stream::StagingRing::new(ctx, device, depth, &caps)?;
            profiler.set_device_gauge(
                m::STREAM_RESIDENT_BYTES,
                device,
                (ring.bytes() + (gsize + groups) * elem) as f64,
            );
            let mut prev_kernel: Option<NodeId> = None;
            for seq in 0..chunks {
                let cs = seq * cu;
                let ce = (cs + cu).min(n);
                let (slot, recycle) = ring.lease(seq);
                let mut writes = Vec::with_capacity(p.sources.len());
                for (i, src) in p.sources.iter().enumerate() {
                    let bytes = src.input_host_units(core.start + cs..core.start + ce)?;
                    staged_total += bytes.len() as u64;
                    writes.push(plan.write(device, &ring.bufs(slot)[i], 0, bytes, &recycle));
                }
                let mut args: Vec<KernelArg> = ring
                    .bufs(slot)
                    .iter()
                    .map(|b| KernelArg::Buffer(b.clone()))
                    .collect();
                for leaf in &p.scan_leaves {
                    args.push(KernelArg::Scalar(Value::I32(0)));
                    args.push(KernelArg::Scalar(leaf.state.zero));
                }
                args.push(KernelArg::Buffer(acc.clone()));
                args.push(KernelArg::Scalar(Value::I32(cs as i32)));
                args.push(KernelArg::Scalar(Value::I32(ce as i32)));
                let mut deps = writes.clone();
                // The lane accumulator chains chunk to chunk (a RAW edge);
                // ring recycling already gates the uploads.
                deps.extend(prev_kernel);
                let kid = plan.kernel(
                    device,
                    &program,
                    "skelcl_reduce_stream",
                    args,
                    NdRange::linear(gsize, WG),
                    ce - cs,
                    &deps,
                );
                ring.set_consumer(slot, kid);
                prev_kernel = Some(kid);
                ctx.flight().record(
                    FlightKind::ChunkSubmit,
                    device,
                    "stream",
                    0,
                    seq as u64,
                    ((ce - cs) * bytes_per_unit) as u64,
                );
                lifecycles.push(crate::stream::ChunkLifecycle {
                    device,
                    seq,
                    acquire: writes[0],
                    retire: kid,
                });
                chunk_total += 1;
            }
            let last = prev_kernel.expect("non-empty share has chunks");
            let fid = plan.kernel(
                device,
                &program,
                "skelcl_reduce_stream_finish",
                vec![
                    KernelArg::Buffer(acc.clone()),
                    KernelArg::Buffer(partials.clone()),
                    KernelArg::Scalar(Value::I32(n as i32)),
                ],
                NdRange::linear(gsize, WG),
                0,
                &[last],
            );
            read_ids.push(self.plan_chain(
                &mut plan,
                device,
                partials,
                groups.min(n.div_ceil(WG)),
                0,
                vec![fid],
            )?);
            rings.push(ring);
        }
        profiler.add(m::STREAM_CHUNKS, chunk_total);
        profiler.add(m::STREAM_BYTES_STAGED, staged_total);
        let mut run = plan.execute(ctx)?;
        crate::stream::attach_chunk_lifecycle(ctx, run.events(), &lifecycles);
        run.wait()?;
        let mut values = Vec::with_capacity(read_ids.len());
        for id in read_ids {
            values.push(T::from_le_bytes(&run.take_read(id)?));
        }
        events.extend(run.into_events());
        drop(rings);
        let device = first_device.expect("engaged schedule has shares");
        self.combine_partials(&values, device, events)
    }

    /// Phase 1 of a reduction: one plan — every device reduces its chunk
    /// (of `core_len × unit_elems` elements) down to a single value on its
    /// own asynchronous queue, ending in a one-element readback. The
    /// queues run concurrently; no host threads are involved.
    fn reduce_chunks(
        &self,
        chunks: &[DeviceChunk],
        unit_elems: usize,
        events: &mut Vec<Event>,
    ) -> Result<Vec<T>> {
        let mut plan = LaunchPlan::new();
        let mut read_ids = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            read_ids.push(self.plan_chain(
                &mut plan,
                chunk.plan.device,
                chunk.buffer.clone(),
                chunk.plan.core_len() * unit_elems,
                chunk.plan.core_len(),
                Vec::new(),
            )?);
        }
        let mut run = plan.execute(&self.core.ctx)?;
        run.wait()?;
        let mut values = Vec::with_capacity(read_ids.len());
        for id in read_ids {
            values.push(T::from_le_bytes(&run.take_read(id)?));
        }
        events.extend(run.into_events());
        Ok(values)
    }

    /// Phase 2 of a reduction: combines the per-device partials (at most
    /// one per GPU) on `device`. A single partial needs no kernel at all.
    fn combine_partials(&self, values: &[T], device: usize, events: &mut Vec<Event>) -> Result<T> {
        if values.len() == 1 {
            return Ok(values[0]);
        }
        let bytes = crate::types::to_bytes(values);
        let len = values.len();
        let buf = self.core.ctx.queue(device).create_buffer(bytes.len())?;
        let mut plan = LaunchPlan::new();
        let upload = plan.write(device, &buf, 0, bytes, &[]);
        let read = self.plan_chain(&mut plan, device, buf, len, 0, vec![upload])?;
        let mut run = plan.execute(&self.core.ctx)?;
        run.wait()?;
        let v = T::from_le_bytes(&run.take_read(read)?);
        events.extend(run.into_events());
        Ok(v)
    }

    /// Appends the multi-pass reduction of `n` leading elements of
    /// `buffer` on `device` to `plan`, ending in a one-element readback
    /// node whose id is returned. `units` is the scheduler measurement
    /// credited to the chain (0 for helper chains such as the partial
    /// combine); `deps` gates the first pass.
    fn plan_chain(
        &self,
        plan: &mut LaunchPlan,
        device: usize,
        mut buffer: DeviceBuffer,
        mut n: usize,
        units: usize,
        mut deps: Vec<NodeId>,
    ) -> Result<NodeId> {
        let queue = self.core.ctx.queue(device);
        let elem = std::mem::size_of::<T>();
        let mut first = true;
        while n > 1 {
            let groups = n.div_ceil(WG).min(MAX_GROUPS);
            let out = queue.create_buffer(groups * elem)?;
            let id = plan.kernel(
                device,
                &self.core.program,
                "skelcl_reduce",
                vec![
                    KernelArg::Buffer(buffer.clone()),
                    KernelArg::Buffer(out.clone()),
                    KernelArg::Scalar(Value::I32(n as i32)),
                ],
                NdRange::linear(groups * WG, WG),
                if first { units } else { 0 },
                &deps,
            );
            deps = vec![id];
            buffer = out;
            n = groups.min(n.div_ceil(WG));
            first = false;
        }
        Ok(plan.read(device, &buffer, 0, elem, &deps))
    }

    /// Profiling of the most recent call.
    pub fn events(&self) -> &EventLog {
        &self.core.events
    }
}

impl<T: KernelScalar> Skeleton for Reduce<T> {
    fn name(&self) -> &'static str {
        self.core.name
    }

    fn context(&self) -> &Context {
        &self.core.ctx
    }

    fn events(&self) -> &EventLog {
        &self.core.events
    }

    fn kernel_disassembly(&self) -> String {
        self.core.program.disassemble()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DeviceSelection;
    use crate::Zip;
    use vgpu::{CommandKind, DeviceSpec, Platform};

    fn ctx(n: usize) -> Context {
        Context::init(
            Platform::new(n, DeviceSpec::tesla_t10()),
            DeviceSelection::All,
        )
    }

    fn sum_reduce(ctx: &Context) -> Reduce<i64> {
        Reduce::new(ctx, "long sum(long x, long y){ return x + y; }").unwrap()
    }

    #[test]
    fn sums_small_vector() {
        let ctx = ctx(1);
        let sum = sum_reduce(&ctx);
        let v = Vector::from_vec(&ctx, vec![1i64, 2, 3, 4, 5]);
        assert_eq!(sum.call(&v).unwrap().value(), 15);
    }

    #[test]
    fn sums_across_group_and_pass_boundaries() {
        let ctx = ctx(1);
        let sum = sum_reduce(&ctx);
        // Sizes straddling WG (256), MAX_GROUPS*WG (16384) and beyond.
        for n in [1usize, 2, 255, 256, 257, 1000, 16384, 16385, 100_000] {
            let v = Vector::from_fn(&ctx, n, |i| i as i64);
            let expected: i64 = (0..n as i64).sum();
            assert_eq!(sum.call(&v).unwrap().value(), expected, "n = {n}");
        }
    }

    #[test]
    fn multi_gpu_reduction() {
        let ctx = ctx(4);
        let sum = sum_reduce(&ctx);
        let n = 10_001usize;
        let v = Vector::from_fn(&ctx, n, |i| i as i64);
        let expected: i64 = (0..n as i64).sum();
        let s = sum.call(&v).unwrap();
        assert_eq!(s.value(), expected);
        assert!(s.kernel_time().as_nanos() > 0);
    }

    #[test]
    fn maximum_reduce() {
        let ctx = ctx(2);
        let maxr: Reduce<f32> =
            Reduce::new(&ctx, "float m(float x, float y){ return fmax(x, y); }").unwrap();
        let v = Vector::from_fn(&ctx, 5000, |i| ((i * 37) % 1999) as f32);
        let expected = v.to_vec().unwrap().iter().cloned().fold(f32::MIN, f32::max);
        assert_eq!(maxr.call(&v).unwrap().value(), expected);
    }

    #[test]
    fn empty_input_rejected() {
        let ctx = ctx(1);
        let sum = sum_reduce(&ctx);
        let v = Vector::<i64>::zeros(&ctx, 0);
        assert!(matches!(sum.call(&v), Err(Error::EmptyContainer { .. })));
    }

    #[test]
    fn signature_checked() {
        let ctx = ctx(1);
        assert!(Reduce::<f32>::new(&ctx, "float f(float x){ return x; }").is_err());
        assert!(Reduce::<f32>::new(&ctx, "int f(float x, float y){ return 1; }").is_err());
        assert!(
            Reduce::<f32>::new(&ctx, "float f(float x, float y, float z){ return x; }").is_err()
        );
    }

    #[test]
    fn matrix_reduction() {
        let ctx = ctx(3);
        let sum = sum_reduce(&ctx);
        let m = crate::Matrix::from_fn(&ctx, 37, 23, |r, c| (r * 23 + c) as i64);
        let expected: i64 = (0..(37 * 23) as i64).sum();
        assert_eq!(sum.call_matrix(&m).unwrap().value(), expected);
        // Empty matrix rejected.
        let empty = crate::Matrix::<i64>::zeros(&ctx, 0, 5);
        assert!(matches!(
            sum.call_matrix(&empty),
            Err(Error::EmptyContainer { .. })
        ));
    }

    #[test]
    fn copy_distribution_reduces_once() {
        let ctx = ctx(2);
        let sum = sum_reduce(&ctx);
        let v = Vector::from_fn(&ctx, 100, |i| i as i64);
        v.set_distribution(Distribution::Copy).unwrap();
        assert_eq!(sum.call(&v).unwrap().value(), (0..100).sum::<i64>());
    }

    #[test]
    fn fused_dot_product_single_kernel_per_device() {
        let ctx = ctx(2);
        let sum: Reduce<f32> =
            Reduce::new(&ctx, "float sum(float x, float y){ return x + y; }").unwrap();
        let mult: Zip<f32, f32, f32> =
            Zip::new(&ctx, "float mult(float x, float y){ return x * y; }").unwrap();
        let a = Vector::from_fn(&ctx, 1000, |i| (i % 97) as f32 * 0.5);
        let b = Vector::from_fn(&ctx, 1000, |i| (i % 89) as f32 * 0.25);

        let unfused = sum.call(&mult.call(&a, &b).unwrap()).unwrap().value();
        let fused = sum
            .call_fused(&mult.lazy(&a.expr(), &b.expr()).unwrap())
            .unwrap()
            .value();
        assert_eq!(fused.to_bits(), unfused.to_bits());

        // Launch-shape assertions only hold when the weld rule is on
        // (`SKELCL_PLAN=0` runs this test in staged mode).
        if crate::plan::PlanConfig::from_env().weld {
            // 1000 elements over 2 devices → 500 per chunk → 2 groups →
            // one fused pass + one partial pass per device.
            let launches = sum.events().kernel_launches_by_device();
            assert_eq!(launches.len(), 2);
            // The fused pass must actually be the fused kernel.
            assert!(sum.events().last_events().iter().any(|e| matches!(
                e.kind(),
                CommandKind::Kernel { name } if name == "skelcl_reduce_fused"
            )));
        }
    }

    #[test]
    fn fused_rejects_empty_and_foreign_context() {
        let ctx1 = ctx(1);
        let ctx2 = ctx(1);
        let sum: Reduce<f32> =
            Reduce::new(&ctx1, "float sum(float x, float y){ return x + y; }").unwrap();
        let neg: crate::Map<f32, f32> =
            crate::Map::new(&ctx1, "float neg(float x){ return -x; }").unwrap();

        let empty = Vector::<f32>::zeros(&ctx1, 0);
        let e = neg.lazy(&empty.expr()).unwrap();
        assert!(matches!(
            sum.call_fused(&e),
            Err(Error::EmptyContainer { .. })
        ));

        let foreign = Vector::from_vec(&ctx2, vec![1.0f32, 2.0]);
        let neg2: crate::Map<f32, f32> =
            crate::Map::new(&ctx2, "float neg(float x){ return -x; }").unwrap();
        let f = neg2.lazy(&foreign.expr()).unwrap();
        assert!(matches!(
            sum.call_fused(&f),
            Err(Error::ShapeMismatch { .. })
        ));
    }
}
