//! The **MapOverlap** skeleton (paper §3.4): applies a customizing function
//! to each element while giving it access to neighbouring elements within
//! `[-d, +d]` per dimension, via the checked `get()` accessor.
//!
//! The generated kernel stages each work-group's footprint (core plus halo)
//! in **local memory** behind a barrier — the optimisation that makes
//! SkelCL's Sobel kernel match NVIDIA's hand-tuned version and beat the
//! AMD SDK version in the paper's Fig. 5. Out-of-range accesses are handled
//! per the configured [`BoundaryHandling`]: a neutral value or the nearest
//! valid element (§3.4).

use std::marker::PhantomData;
use std::sync::Arc;

use skelcl_kernel::value::Value;
use vgpu::{KernelArg, NdRange};

use crate::codegen::{
    c_literal, compile_cached, expect_pointer_param, expect_return, expect_scalar_extras,
    extra_param_decls, extra_param_uses, parse_user_function, rewrite_get_calls, stencil_stage,
};
use crate::container::{Matrix, Vector};
use crate::context::Context;
use crate::distribution::Distribution;
use crate::error::{Error, Result};
use crate::exec::{stencil_distributions, DeviceLaunch, Skeleton, SkeletonCore};
use crate::expr::Expr;
use crate::plan::{PlanNode, StencilSpec};
use crate::skeleton::EventLog;
use crate::types::KernelScalar;

/// 2-D work-group edge for matrix stencils (16×16, as the paper's CUDA and
/// OpenCL implementations use).
const TILE: usize = 16;
/// 1-D work-group size for vector stencils.
const WG: usize = 256;

/// How out-of-bounds stencil accesses are handled (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundaryHandling<T> {
    /// A specified neutral value is returned (the paper's `SCL_NEUTRAL`).
    Neutral(T),
    /// The nearest valid element inside the container is returned.
    Nearest,
}

fn load_body<I: KernelScalar>(boundary: &BoundaryHandling<I>, matrix: bool) -> String {
    match (boundary, matrix) {
        // Single-return bodies so the compiler's inliner can eliminate the
        // per-access call (vendor OpenCL compilers inline everything).
        (BoundaryHandling::Neutral(v), true) => format!(
            "return (r < 0 || r >= rows || c < 0 || c >= cols) ? {} : skelcl_in[r * cols + c];",
            c_literal(v.to_value())
        ),
        (BoundaryHandling::Nearest, true) => {
            "int rr = clamp(r, 0, rows - 1);\n    int cc = clamp(c, 0, cols - 1);\n    \
             return skelcl_in[rr * cols + cc];"
                .to_string()
        }
        (BoundaryHandling::Neutral(v), false) => format!(
            "return (i < 0 || i >= n) ? {} : skelcl_in[i];",
            c_literal(v.to_value())
        ),
        (BoundaryHandling::Nearest, false) => "return skelcl_in[clamp(i, 0, n - 1)];".to_string(),
    }
}

/// MapOverlap on matrices (the paper's Sobel use case, Listing 1.5).
///
/// The customizing function receives a pointer to the centre element and
/// reads neighbours with `get(m, dx, dy)` (column offset first, matching
/// the paper's Sobel listing); both offsets must stay within `[-d, +d]` —
/// violations trap at runtime, as the paper's `get` promises.
///
/// ```
/// use skelcl::{BoundaryHandling, Context, MapOverlap, Matrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ctx = Context::single_gpu();
/// // Sum of the 3×3 neighbourhood (paper Listing 1.2).
/// let m: MapOverlap<f32, f32> = MapOverlap::new(
///     &ctx,
///     "float func(const float* m_in){
///          float sum = 0.0f;
///          for (int i = -1; i <= 1; ++i)
///              for (int j = -1; j <= 1; ++j)
///                  sum += get(m_in, i, j);
///          return sum;
///      }",
///     1,
///     BoundaryHandling::Neutral(0.0),
/// )?;
/// let input = Matrix::from_fn(&ctx, 4, 4, |_, _| 1.0f32);
/// let out = m.call(&input)?;
/// assert_eq!(out.get(1, 1)?, 9.0); // interior: all nine neighbours
/// assert_eq!(out.get(0, 0)?, 4.0); // corner: five neighbours are neutral
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MapOverlap<I: KernelScalar, O: KernelScalar> {
    core: SkeletonCore,
    d: usize,
    _types: PhantomData<fn(I) -> O>,
}

impl<I: KernelScalar, O: KernelScalar> MapOverlap<I, O> {
    /// Creates a matrix MapOverlap with overlap range `d` and the given
    /// boundary handling.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCustomizingFunction`] on parse/signature
    /// problems, or [`Error::InvalidDistribution`] when the tile for `d`
    /// exceeds the device's local memory.
    pub fn new(
        ctx: &Context,
        source: &str,
        d: usize,
        boundary: BoundaryHandling<I>,
    ) -> Result<Self> {
        if d == 0 {
            return Err(Error::InvalidCustomizingFunction {
                skeleton: "MapOverlap",
                reason: "overlap range d must be at least 1".into(),
            });
        }
        let mut f = parse_user_function("MapOverlap", source)?;
        expect_pointer_param("MapOverlap", &f, 0, I::SCALAR)?;
        expect_return("MapOverlap", &f, O::SCALAR)?;
        expect_scalar_extras("MapOverlap", &f, 1)?;
        rewrite_get_calls(&mut f, true)?;
        // After rewriting, parameter 1 is the injected tile width.
        let extras = f.extra_params(2).to_vec();

        let tw = TILE + 2 * d;
        let tile_bytes = tw * tw * std::mem::size_of::<I>();
        let limit = ctx.queue(0).device().spec().local_memory_bytes;
        if tile_bytes > limit {
            return Err(Error::InvalidDistribution {
                reason: format!(
                    "overlap {d} needs a {tile_bytes}-byte tile, exceeding {limit} bytes of local memory"
                ),
            });
        }

        let kernel_source = format!(
            "{user}\n\
             {i} __skelcl_get2(const {i}* skelcl_c, int skelcl_tw, int dx, int dy) {{\n\
                 return (dx >= -{d} && dx <= {d} && dy >= -{d} && dy <= {d})\n\
                     ? skelcl_c[dy * skelcl_tw + dx] : ({i})__skelcl_trap_int(100);\n\
             }}\n\
             {i} __skelcl_load(__global const {i}* skelcl_in, int r, int c, int rows, int cols) {{\n\
                 {load}\n\
             }}\n\
             __kernel void skelcl_mapoverlap(__global const {i}* skelcl_in, __global {o}* skelcl_out,\n\
                     int skelcl_in_rows, int skelcl_cols, int skelcl_out_rows, int skelcl_row_off{decls}) {{\n\
                 __local {i} skelcl_tile[{th} * {tw}];\n\
                 int lx = (int)get_local_id(0);\n\
                 int ly = (int)get_local_id(1);\n\
                 int gx = (int)get_global_id(0);\n\
                 int gy = (int)get_global_id(1);\n\
                 int lsx = (int)get_local_size(0);\n\
                 int lsy = (int)get_local_size(1);\n\
                 int base_r = (int)get_group_id(1) * lsy + skelcl_row_off - {d};\n\
                 int base_c = (int)get_group_id(0) * lsx - {d};\n\
                 for (int ty = ly; ty < {th}; ty += lsy)\n\
                     for (int tx = lx; tx < {tw}; tx += lsx) {{\n\
                         int skelcl_r = base_r + ty;\n\
                         int skelcl_cc = base_c + tx;\n\
                         skelcl_tile[ty * {tw} + tx] =\n\
                             __skelcl_load(skelcl_in, skelcl_r, skelcl_cc, skelcl_in_rows, skelcl_cols);\n\
                     }}\n\
                 barrier(CLK_LOCAL_MEM_FENCE);\n\
                 if (gx < skelcl_cols && gy < skelcl_out_rows)\n\
                     skelcl_out[gy * skelcl_cols + gx] =\n\
                         {f}(&skelcl_tile[(ly + {d}) * {tw} + (lx + {d})], {tw}{uses});\n\
             }}\n",
            user = f.source(),
            i = I::SCALAR,
            o = O::SCALAR,
            f = f.name,
            d = d,
            tw = tw,
            th = tw,
            load = load_body(&boundary, true),
            decls = extra_param_decls(&extras, "skelcl_x"),
            uses = extra_param_uses(&extras, "skelcl_x"),
        );
        let program = compile_cached(ctx, "skelcl_mapoverlap.cl", &kernel_source)?;
        Ok(MapOverlap {
            core: SkeletonCore::new(ctx, "MapOverlap", program, extras),
            d,
            _types: PhantomData,
        })
    }

    /// Applies the stencil to a matrix.
    ///
    /// # Errors
    ///
    /// Propagates platform failures; a `get` access beyond `±d` traps.
    pub fn call(&self, input: &Matrix<I>) -> Result<Matrix<O>> {
        self.call_with(input, &[])
    }

    /// [`MapOverlap::call`] with extra scalar arguments.
    ///
    /// # Errors
    ///
    /// As for [`MapOverlap::call`], plus extra-argument arity mismatches.
    pub fn call_with(&self, input: &Matrix<I>, extra: &[Value]) -> Result<Matrix<O>> {
        let _span = self.core.begin("MapOverlap.call");
        self.core.check_extras(extra)?;
        let (in_dist, out_dist) = stencil_distributions(
            input.effective_distribution(Distribution::Overlap { size: self.d }),
            self.d,
        );
        let in_chunks = input.ensure_device(in_dist)?;
        let (output, out_chunks) =
            Matrix::alloc_device(&self.core.ctx, input.rows(), input.cols(), out_dist)?;
        let cols = input.cols();

        let launches = in_chunks
            .iter()
            .zip(&out_chunks)
            .map(|(ic, oc)| {
                debug_assert_eq!(ic.plan.core, oc.plan.core);
                let out_rows = oc.plan.core_len();
                let mut args = vec![
                    KernelArg::Buffer(ic.buffer.clone()),
                    KernelArg::Buffer(oc.buffer.clone()),
                    KernelArg::Scalar(Value::I32(ic.plan.stored_len() as i32)),
                    KernelArg::Scalar(Value::I32(cols as i32)),
                    KernelArg::Scalar(Value::I32(out_rows as i32)),
                    KernelArg::Scalar(Value::I32(ic.plan.core_offset() as i32)),
                ];
                args.extend(extra.iter().map(|v| KernelArg::Scalar(*v)));
                DeviceLaunch {
                    device: ic.plan.device,
                    args,
                    range: NdRange::grid([cols, out_rows], [TILE, TILE]),
                    units: ic.plan.core_len(),
                }
            })
            .collect();
        self.core.run("skelcl_mapoverlap", launches)?;
        output.mark_device_written();
        Ok(output)
    }

    /// The overlap range `d`.
    pub fn overlap(&self) -> usize {
        self.d
    }

    /// Profiling of the most recent call.
    pub fn events(&self) -> &EventLog {
        &self.core.events
    }

    /// The generated kernel program (debugging/ablation aid).
    pub fn program(&self) -> &skelcl_kernel::Program {
        &self.core.program
    }
}

impl<I: KernelScalar, O: KernelScalar> Skeleton for MapOverlap<I, O> {
    fn name(&self) -> &'static str {
        self.core.name
    }

    fn context(&self) -> &Context {
        &self.core.ctx
    }

    fn events(&self) -> &EventLog {
        &self.core.events
    }

    fn kernel_disassembly(&self) -> String {
        self.core.program.disassemble()
    }
}

/// MapOverlap on vectors: the customizing function reads neighbours with
/// `get(v, di)`, `di ∈ [-d, +d]`.
///
/// ```
/// use skelcl::{BoundaryHandling, Context, MapOverlapVec, Vector};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ctx = Context::single_gpu();
/// let smooth: MapOverlapVec<f32, f32> = MapOverlapVec::new(
///     &ctx,
///     "float func(const float* v){ return (get(v,-1) + get(v,0) + get(v,1)) / 3.0f; }",
///     1,
///     BoundaryHandling::Nearest,
/// )?;
/// let v = Vector::from_vec(&ctx, vec![3.0f32, 3.0, 9.0, 9.0]);
/// assert_eq!(smooth.call(&v)?.to_vec()?, vec![3.0, 5.0, 7.0, 9.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MapOverlapVec<I: KernelScalar, O: KernelScalar> {
    core: SkeletonCore,
    d: usize,
    spec: StencilSpec,
    _types: PhantomData<fn(I) -> O>,
}

impl<I: KernelScalar, O: KernelScalar> MapOverlapVec<I, O> {
    /// Creates a vector MapOverlap with overlap range `d`.
    ///
    /// # Errors
    ///
    /// As for [`MapOverlap::new`].
    pub fn new(
        ctx: &Context,
        source: &str,
        d: usize,
        boundary: BoundaryHandling<I>,
    ) -> Result<Self> {
        if d == 0 {
            return Err(Error::InvalidCustomizingFunction {
                skeleton: "MapOverlap",
                reason: "overlap range d must be at least 1".into(),
            });
        }
        let mut f = parse_user_function("MapOverlap", source)?;
        expect_pointer_param("MapOverlap", &f, 0, I::SCALAR)?;
        expect_return("MapOverlap", &f, O::SCALAR)?;
        expect_scalar_extras("MapOverlap", &f, 1)?;
        rewrite_get_calls(&mut f, false)?;
        let extras = f.extra_params(1).to_vec();

        let tlen = WG + 2 * d;
        let kernel_source = format!(
            "{user}\n\
             {i} __skelcl_get1(const {i}* skelcl_c, int di) {{\n\
                 return (di >= -{d} && di <= {d}) ? skelcl_c[di] : ({i})__skelcl_trap_int(100);\n\
             }}\n\
             {i} __skelcl_load1(__global const {i}* skelcl_in, int i, int n) {{\n\
                 {load}\n\
             }}\n\
             __kernel void skelcl_mapoverlap_vec(__global const {i}* skelcl_in, __global {o}* skelcl_out,\n\
                     int skelcl_in_n, int skelcl_out_n, int skelcl_off{decls}) {{\n\
                 __local {i} skelcl_tile[{tlen}];\n\
                 int lid = (int)get_local_id(0);\n\
                 int gid = (int)get_global_id(0);\n\
                 int lsz = (int)get_local_size(0);\n\
                 int base = (int)get_group_id(0) * lsz + skelcl_off - {d};\n\
                 for (int t = lid; t < {tlen}; t += lsz) {{\n\
                     int skelcl_i = base + t;\n\
                     skelcl_tile[t] = __skelcl_load1(skelcl_in, skelcl_i, skelcl_in_n);\n\
                 }}\n\
                 barrier(CLK_LOCAL_MEM_FENCE);\n\
                 if (gid < skelcl_out_n)\n\
                     skelcl_out[gid] = {f}(&skelcl_tile[lid + {d}]{uses});\n\
             }}\n",
            user = f.source(),
            i = I::SCALAR,
            o = O::SCALAR,
            f = f.name,
            d = d,
            tlen = tlen,
            load = load_body(&boundary, false),
            decls = extra_param_decls(&extras, "skelcl_x"),
            uses = extra_param_uses(&extras, "skelcl_x"),
        );
        let program = compile_cached(ctx, "skelcl_mapoverlap_vec.cl", &kernel_source)?;
        let (unit, func) = stencil_stage(&f);
        let spec = StencilSpec {
            unit,
            func,
            d,
            neutral: match &boundary {
                BoundaryHandling::Neutral(v) => Some(v.to_value()),
                BoundaryHandling::Nearest => None,
            },
            in_scalar: I::SCALAR,
            out_scalar: O::SCALAR,
            extras: Vec::new(),
            standalone: program.clone(),
        };
        Ok(MapOverlapVec {
            core: SkeletonCore::new(ctx, "MapOverlapVec", program, extras),
            d,
            spec,
            _types: PhantomData,
        })
    }

    /// Applies the stencil to a vector.
    ///
    /// # Errors
    ///
    /// As for [`MapOverlap::call`].
    pub fn call(&self, input: &Vector<I>) -> Result<Vector<O>> {
        self.call_with(input, &[])
    }

    /// [`MapOverlapVec::call`] with extra scalar arguments.
    ///
    /// # Errors
    ///
    /// As for [`MapOverlap::call_with`].
    pub fn call_with(&self, input: &Vector<I>, extra: &[Value]) -> Result<Vector<O>> {
        let _span = self.core.begin("MapOverlapVec.call");
        self.core.check_extras(extra)?;
        let (in_dist, out_dist) = stencil_distributions(
            input.effective_distribution(Distribution::Overlap { size: self.d }),
            self.d,
        );
        let in_chunks = input.ensure_device(in_dist)?;
        let (output, out_chunks) = Vector::alloc_device(&self.core.ctx, input.len(), out_dist)?;

        let launches = in_chunks
            .iter()
            .zip(&out_chunks)
            .map(|(ic, oc)| {
                let out_n = oc.plan.core_len();
                let mut args = vec![
                    KernelArg::Buffer(ic.buffer.clone()),
                    KernelArg::Buffer(oc.buffer.clone()),
                    KernelArg::Scalar(Value::I32(ic.plan.stored_len() as i32)),
                    KernelArg::Scalar(Value::I32(out_n as i32)),
                    KernelArg::Scalar(Value::I32(ic.plan.core_offset() as i32)),
                ];
                args.extend(extra.iter().map(|v| KernelArg::Scalar(*v)));
                DeviceLaunch {
                    device: ic.plan.device,
                    args,
                    range: NdRange::linear(out_n, WG),
                    units: ic.plan.core_len(),
                }
            })
            .collect();
        self.core.run("skelcl_mapoverlap_vec", launches)?;
        output.mark_device_written();
        Ok(output)
    }

    /// Defers the stencil into an [`Expr`] node instead of executing it.
    ///
    /// Under the default plan configuration the stencil welds its
    /// elementwise producer chain into its own kernel, recomputing halo
    /// elements instead of materialising the producer's output (the
    /// `stencil` rewrite rule; `SKELCL_PLAN` controls this).
    ///
    /// # Errors
    ///
    /// Currently infallible; `Result` for uniformity with the eager call.
    pub fn lazy(&self, input: &Expr<I>) -> Result<Expr<O>> {
        self.lazy_with(input, &[])
    }

    /// [`MapOverlapVec::lazy`] with extra scalar arguments bound now.
    ///
    /// # Errors
    ///
    /// Fails on extra-argument arity or type mismatches.
    pub fn lazy_with(&self, input: &Expr<I>, extra: &[Value]) -> Result<Expr<O>> {
        self.core.check_extras(extra)?;
        let mut spec = self.spec.clone();
        spec.extras = extra.to_vec();
        Ok(Expr::from_node(Arc::new(PlanNode::Stencil {
            ctx: self.core.ctx.clone(),
            spec,
            arg: input.node().clone(),
        })))
    }

    /// The overlap range `d`.
    pub fn overlap(&self) -> usize {
        self.d
    }

    /// Profiling of the most recent call.
    pub fn events(&self) -> &EventLog {
        &self.core.events
    }
}

impl<I: KernelScalar, O: KernelScalar> Skeleton for MapOverlapVec<I, O> {
    fn name(&self) -> &'static str {
        self.core.name
    }

    fn context(&self) -> &Context {
        &self.core.ctx
    }

    fn events(&self) -> &EventLog {
        &self.core.events
    }

    fn kernel_disassembly(&self) -> String {
        self.core.program.disassemble()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DeviceSelection;
    use vgpu::{DeviceSpec, Platform};

    fn ctx(n: usize) -> Context {
        Context::init(
            Platform::new(n, DeviceSpec::tesla_t10()),
            DeviceSelection::All,
        )
    }

    const NEIGHBOUR_SUM: &str = "float func(const float* m_in){
        float sum = 0.0f;
        for (int i = -1; i <= 1; ++i)
            for (int j = -1; j <= 1; ++j)
                sum += get(m_in, i, j);
        return sum;
    }";

    /// Host reference for the 3×3 neighbour sum with neutral 0.
    fn host_neighbour_sum(input: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows as isize {
            for c in 0..cols as isize {
                let mut s = 0.0;
                for dr in -1..=1isize {
                    for dc in -1..=1isize {
                        let (rr, cc) = (r + dr, c + dc);
                        if rr >= 0 && rr < rows as isize && cc >= 0 && cc < cols as isize {
                            s += input[rr as usize * cols + cc as usize];
                        }
                    }
                }
                out[r as usize * cols + c as usize] = s;
            }
        }
        out
    }

    #[test]
    fn paper_listing_1_2_neighbour_sum() {
        let ctx = ctx(1);
        let m: MapOverlap<f32, f32> =
            MapOverlap::new(&ctx, NEIGHBOUR_SUM, 1, BoundaryHandling::Neutral(0.0)).unwrap();
        let rows = 20;
        let cols = 33;
        let input: Vec<f32> = (0..rows * cols).map(|i| (i % 7) as f32).collect();
        let matrix = Matrix::from_vec(&ctx, rows, cols, input.clone());
        let out = m.call(&matrix).unwrap().to_vec().unwrap();
        assert_eq!(out, host_neighbour_sum(&input, rows, cols));
    }

    #[test]
    fn multi_gpu_stencil_matches_single_gpu() {
        let input: Vec<f32> = (0..64 * 48).map(|i| ((i * 31) % 11) as f32).collect();
        let mut results = Vec::new();
        for devices in [1usize, 2, 3, 4] {
            let ctx = ctx(devices);
            let m: MapOverlap<f32, f32> =
                MapOverlap::new(&ctx, NEIGHBOUR_SUM, 1, BoundaryHandling::Neutral(0.0)).unwrap();
            let matrix = Matrix::from_vec(&ctx, 64, 48, input.clone());
            results.push(m.call(&matrix).unwrap().to_vec().unwrap());
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0], "devices must agree at chunk seams");
        }
        assert_eq!(results[0], host_neighbour_sum(&input, 64, 48));
    }

    #[test]
    fn nearest_boundary_clamps() {
        let ctx = ctx(1);
        let left: MapOverlap<i32, i32> = MapOverlap::new(
            &ctx,
            "int f(const int* m){ return get(m, -1, 0); }",
            1,
            BoundaryHandling::Nearest,
        )
        .unwrap();
        let m = Matrix::from_fn(&ctx, 2, 3, |r, c| (r * 3 + c) as i32);
        let out = left.call(&m).unwrap();
        // Column 0 clamps to itself; others take the left neighbour.
        assert_eq!(out.get(0, 0).unwrap(), 0);
        assert_eq!(out.get(0, 1).unwrap(), 0);
        assert_eq!(out.get(1, 2).unwrap(), 4);
    }

    #[test]
    fn out_of_range_get_traps() {
        let ctx = ctx(1);
        let bad: MapOverlap<f32, f32> = MapOverlap::new(
            &ctx,
            "float f(const float* m){ return get(m, 2, 0); }",
            1,
            BoundaryHandling::Neutral(0.0),
        )
        .unwrap();
        let m = Matrix::<f32>::zeros(&ctx, 8, 8);
        let err = bad.call(&m).unwrap_err();
        assert!(err.to_string().contains("trap"), "{err}");
    }

    #[test]
    fn larger_overlap_range() {
        let ctx = ctx(2);
        let wide: MapOverlap<f32, f32> = MapOverlap::new(
            &ctx,
            "float f(const float* m){ return get(m, -3, -3) + get(m, 3, 3); }",
            3,
            BoundaryHandling::Neutral(100.0),
        )
        .unwrap();
        let m = Matrix::from_fn(&ctx, 12, 12, |r, c| (r * 12 + c) as f32);
        let out = wide.call(&m).unwrap();
        // Interior element: both neighbours in range.
        let v = out.get(5, 5).unwrap();
        let expect = (2.0 * 12.0 + 2.0) + (8.0 * 12.0 + 8.0);
        assert_eq!(v, expect);
        // Corner: both out of range -> 200.
        assert_eq!(out.get(0, 0).unwrap(), 100.0 + (3 * 12 + 3) as f32);
    }

    #[test]
    fn stencil_with_extra_arguments() {
        let ctx = ctx(1);
        let thresh: MapOverlap<f32, u8> = MapOverlap::new(
            &ctx,
            "uchar f(const float* m, float limit){
                float center = get(m, 0, 0);
                return center > limit ? 255 : 0;
            }",
            1,
            BoundaryHandling::Neutral(0.0),
        )
        .unwrap();
        let m = Matrix::from_fn(&ctx, 4, 4, |r, c| (r * 4 + c) as f32);
        let out = thresh.call_with(&m, &[Value::F32(7.5)]).unwrap();
        assert_eq!(out.get(0, 0).unwrap(), 0);
        assert_eq!(out.get(3, 3).unwrap(), 255);
    }

    #[test]
    fn matrix_stencil_extra_arguments_multi_gpu() {
        // Extra scalar args must reach every device's launch identically.
        let input: Vec<f32> = (0..40 * 17).map(|i| ((i * 13) % 23) as f32).collect();
        let mut results = Vec::new();
        for devices in [1usize, 3] {
            let ctx = ctx(devices);
            let thresh: MapOverlap<f32, u8> = MapOverlap::new(
                &ctx,
                "uchar f(const float* m, float limit, int on){
                    return get(m, 0, 0) > limit ? on : 0;
                }",
                1,
                BoundaryHandling::Neutral(0.0),
            )
            .unwrap();
            let m = Matrix::from_vec(&ctx, 40, 17, input.clone());
            results.push(
                thresh
                    .call_with(&m, &[Value::F32(11.0), Value::I32(7)])
                    .unwrap()
                    .to_vec()
                    .unwrap(),
            );
            // Wrong arity / wrong type rejected.
            assert!(thresh.call_with(&m, &[Value::F32(11.0)]).is_err());
        }
        assert_eq!(results[0], results[1]);
        assert!(results[0].iter().all(|&v| v == 0 || v == 7));
    }

    #[test]
    fn vector_stencil_multi_gpu() {
        let data: Vec<f32> = (0..2000).map(|i| (i % 29) as f32).collect();
        let mut results = Vec::new();
        for devices in [1usize, 3] {
            let ctx = ctx(devices);
            let avg: MapOverlapVec<f32, f32> = MapOverlapVec::new(
                &ctx,
                "float f(const float* v){ return get(v,-2)+get(v,-1)+get(v,0)+get(v,1)+get(v,2); }",
                2,
                BoundaryHandling::Neutral(0.0),
            )
            .unwrap();
            let v = Vector::from_vec(&ctx, data.clone());
            results.push(avg.call(&v).unwrap().to_vec().unwrap());
        }
        assert_eq!(results[0], results[1]);
        // Host reference for a middle element.
        let i = 1000;
        let expect: f32 = (i - 2..=i + 2).map(|j| (j % 29) as f32).sum();
        assert!((results[0][i] - expect).abs() < 1e-5);
    }

    #[test]
    fn rejects_invalid_configurations() {
        let ctx = ctx(1);
        assert!(MapOverlap::<f32, f32>::new(
            &ctx,
            "float f(const float* m){ return get(m,0,0); }",
            0,
            BoundaryHandling::Neutral(0.0)
        )
        .is_err());
        assert!(MapOverlap::<f32, f32>::new(
            &ctx,
            "float f(float x){ return x; }",
            1,
            BoundaryHandling::Neutral(0.0)
        )
        .is_err());
        // Tile too large for 16 KiB local memory (d=40 with f64).
        assert!(MapOverlap::<f64, f64>::new(
            &ctx,
            "double f(const double* m){ return get(m,0,0); }",
            40,
            BoundaryHandling::Neutral(0.0)
        )
        .is_err());
    }

    #[test]
    fn uses_local_memory_counters() {
        let ctx = ctx(1);
        let m: MapOverlap<f32, f32> =
            MapOverlap::new(&ctx, NEIGHBOUR_SUM, 1, BoundaryHandling::Neutral(0.0)).unwrap();
        let matrix = Matrix::<f32>::zeros(&ctx, 32, 32);
        m.call(&matrix).unwrap();
        let events = m.events().last_events();
        let counters = events
            .iter()
            .find_map(|e| e.counters())
            .expect("kernel event has counters");
        assert!(
            counters.local_mem_ops() > counters.global_mem_ops(),
            "stencil reads should hit local memory: {counters:?}"
        );
    }
}
