//! The **Allpairs** skeleton (paper §3.5): for an `n×d` matrix `A` and an
//! `m×d` matrix `B`, computes the `n×m` matrix `C` with
//! `C[i][j] = A_i ⊕ B_j` where `⊕` combines two length-`d` rows.
//!
//! Two variants are provided:
//!
//! * [`Allpairs::new`] — the generic form: the customizing function receives
//!   both row pointers and the row length;
//! * [`Allpairs::zip_reduce`] — the specialised form for `⊕ = reduce ∘ zip`
//!   (e.g. matrix multiplication, Fig. 3 / Example 1): the generated kernel
//!   stages row/column tiles in local memory, the classic tiled matmul
//!   optimisation.

use std::marker::PhantomData;

use skelcl_kernel::value::Value;
use vgpu::{KernelArg, NdRange};

use crate::codegen::{
    compile_cached, expect_pointer_param, expect_return, expect_scalar_param, parse_user_function,
};
use crate::container::Matrix;
use crate::context::Context;
use crate::distribution::Distribution;
use crate::error::{Error, Result};
use crate::exec::{DeviceLaunch, Skeleton, SkeletonCore};
use crate::skeleton::EventLog;
use crate::types::KernelScalar;

/// Tile edge of the zip-reduce specialisation's work-groups.
const TILE: usize = 16;

/// The Allpairs skeleton.
///
/// # Example: pairwise Manhattan distance (the paper's motivating use)
///
/// ```
/// use skelcl::{Allpairs, Context, Matrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ctx = Context::single_gpu();
/// let manhattan: Allpairs<f32, f32> = Allpairs::new(
///     &ctx,
///     "float func(const float* a, const float* b, int d){
///          float sum = 0.0f;
///          for (int k = 0; k < d; ++k) sum += fabs(a[k] - b[k]);
///          return sum;
///      }",
/// )?;
/// let a = Matrix::from_vec(&ctx, 2, 3, vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
/// let b = Matrix::from_vec(&ctx, 2, 3, vec![1.0, 1.0, 1.0, 0.0, 2.0, 4.0]);
/// let c = manhattan.call(&a, &b)?;
/// assert_eq!(c.get(0, 0)?, 3.0);
/// assert_eq!(c.get(1, 1)?, 1.0 + 1.0 + 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Allpairs<I: KernelScalar, O: KernelScalar> {
    core: SkeletonCore,
    kernel: &'static str,
    _types: PhantomData<fn(I) -> O>,
}

impl<I: KernelScalar, O: KernelScalar> Allpairs<I, O> {
    /// Creates a generic Allpairs skeleton from a row-combining function
    /// `O func(const I* a_row, const I* b_row, int d)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCustomizingFunction`] on parse/signature
    /// problems.
    pub fn new(ctx: &Context, source: &str) -> Result<Self> {
        let f = parse_user_function("Allpairs", source)?;
        expect_pointer_param("Allpairs", &f, 0, I::SCALAR)?;
        expect_pointer_param("Allpairs", &f, 1, I::SCALAR)?;
        expect_scalar_param("Allpairs", &f, 2, skelcl_kernel::types::ScalarType::Int)?;
        expect_return("Allpairs", &f, O::SCALAR)?;
        if f.params.len() != 3 {
            return Err(Error::InvalidCustomizingFunction {
                skeleton: "Allpairs",
                reason: format!(
                    "`{}` must take exactly (const {}* a, const {}* b, int d)",
                    f.name,
                    I::SCALAR,
                    I::SCALAR
                ),
            });
        }

        let kernel_source = format!(
            "{user}\n\
             __kernel void skelcl_allpairs(__global const {i}* skelcl_a, __global const {i}* skelcl_b,\n\
                     __global {o}* skelcl_c, int skelcl_n, int skelcl_m, int skelcl_d) {{\n\
                 int col = (int)get_global_id(0);\n\
                 int row = (int)get_global_id(1);\n\
                 if (row < skelcl_n && col < skelcl_m)\n\
                     skelcl_c[row * skelcl_m + col] =\n\
                         {f}(&skelcl_a[row * skelcl_d], &skelcl_b[col * skelcl_d], skelcl_d);\n\
             }}\n",
            user = f.source(),
            i = I::SCALAR,
            o = O::SCALAR,
            f = f.name,
        );
        let program = compile_cached(ctx, "skelcl_allpairs.cl", &kernel_source)?;
        Ok(Allpairs {
            core: SkeletonCore::new(ctx, "Allpairs", program, Vec::new()),
            kernel: "skelcl_allpairs",
            _types: PhantomData,
        })
    }

    /// Creates the zip-reduce specialisation from a zip operator
    /// `O zip(I x, I y)` and a reduce operator `O red(O x, O y)` — e.g.
    /// multiplication and addition for matrix multiplication
    /// (`A × B = allpairs(dotProduct)(A, Bᵀ)`, paper Example 1). The
    /// generated kernel uses local-memory tiling.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCustomizingFunction`] on parse/signature
    /// problems of either operator.
    pub fn zip_reduce(ctx: &Context, zip_source: &str, reduce_source: &str) -> Result<Self> {
        let zf = parse_user_function("Allpairs(zip)", zip_source)?;
        expect_scalar_param("Allpairs(zip)", &zf, 0, I::SCALAR)?;
        expect_scalar_param("Allpairs(zip)", &zf, 1, I::SCALAR)?;
        expect_return("Allpairs(zip)", &zf, O::SCALAR)?;
        let rf = parse_user_function("Allpairs(reduce)", reduce_source)?;
        expect_scalar_param("Allpairs(reduce)", &rf, 0, O::SCALAR)?;
        expect_scalar_param("Allpairs(reduce)", &rf, 1, O::SCALAR)?;
        expect_return("Allpairs(reduce)", &rf, O::SCALAR)?;
        if zf.name == rf.name {
            return Err(Error::InvalidCustomizingFunction {
                skeleton: "Allpairs",
                reason: "zip and reduce customizing functions must have distinct names".into(),
            });
        }

        let kernel_source = format!(
            "{zip_user}\n{red_user}\n\
             __kernel void skelcl_allpairs_zr(__global const {i}* skelcl_a, __global const {i}* skelcl_b,\n\
                     __global {o}* skelcl_c, int skelcl_n, int skelcl_m, int skelcl_d) {{\n\
                 __local {i} skelcl_atile[{tile} * {tile}];\n\
                 __local {i} skelcl_btile[{tile} * {tile}];\n\
                 int col = (int)get_global_id(0);\n\
                 int row = (int)get_global_id(1);\n\
                 int lx = (int)get_local_id(0);\n\
                 int ly = (int)get_local_id(1);\n\
                 {o} acc = ({o})0;\n\
                 int first = 1;\n\
                 for (int t = 0; t < skelcl_d; t += {tile}) {{\n\
                     int ac = t + lx;\n\
                     int arow = (int)get_group_id(1) * {tile} + ly;\n\
                     skelcl_atile[ly * {tile} + lx] =\n\
                         (arow < skelcl_n && ac < skelcl_d) ? skelcl_a[arow * skelcl_d + ac] : ({i})0;\n\
                     int brow = (int)get_group_id(0) * {tile} + ly;\n\
                     skelcl_btile[ly * {tile} + lx] =\n\
                         (brow < skelcl_m && ac < skelcl_d) ? skelcl_b[brow * skelcl_d + ac] : ({i})0;\n\
                     barrier(CLK_LOCAL_MEM_FENCE);\n\
                     int kmax = skelcl_d - t < {tile} ? skelcl_d - t : {tile};\n\
                     for (int k = 0; k < kmax; ++k) {{\n\
                         {o} v = {zf}(skelcl_atile[ly * {tile} + k], skelcl_btile[lx * {tile} + k]);\n\
                         if (first) {{ acc = v; first = 0; }} else {{ acc = {rf}(acc, v); }}\n\
                     }}\n\
                     barrier(CLK_LOCAL_MEM_FENCE);\n\
                 }}\n\
                 if (row < skelcl_n && col < skelcl_m)\n\
                     skelcl_c[row * skelcl_m + col] = acc;\n\
             }}\n",
            zip_user = zf.source(),
            red_user = rf.source(),
            i = I::SCALAR,
            o = O::SCALAR,
            zf = zf.name,
            rf = rf.name,
            tile = TILE,
        );
        let program = compile_cached(ctx, "skelcl_allpairs_zr.cl", &kernel_source)?;
        Ok(Allpairs {
            core: SkeletonCore::new(ctx, "Allpairs", program, Vec::new()),
            kernel: "skelcl_allpairs_zr",
            _types: PhantomData,
        })
    }

    /// Computes the all-pairs combination of `a` (`n×d`) and `b` (`m×d`),
    /// producing `n×m`. On multiple GPUs, `a` and the result are
    /// block-distributed by rows while `b` uses the copy distribution —
    /// the distribution strategy the paper's skeleton selects by default.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::ShapeMismatch`] when the row widths differ, plus
    /// any platform failure.
    pub fn call(&self, a: &Matrix<I>, b: &Matrix<I>) -> Result<Matrix<O>> {
        let _span = self.core.begin("Allpairs.call");
        if a.cols() != b.cols() {
            return Err(Error::ShapeMismatch {
                reason: format!(
                    "allpairs requires equal row widths, found {} and {}",
                    a.cols(),
                    b.cols()
                ),
            });
        }
        let (n, m, d) = (a.rows(), b.rows(), a.cols());
        let a_chunks = a.ensure_device(Distribution::Block)?;
        let b_chunks = b.ensure_device(Distribution::Copy)?;
        let (output, out_chunks) = Matrix::alloc_device(&self.core.ctx, n, m, Distribution::Block)?;

        let launches = a_chunks
            .iter()
            .zip(&out_chunks)
            .map(|(ac, oc)| {
                let rows = ac.plan.core_len();
                let b_buffer = b_chunks
                    .iter()
                    .find(|bc| bc.plan.device == ac.plan.device)
                    .expect("copy distribution covers every device")
                    .buffer
                    .clone();
                let args = vec![
                    KernelArg::Buffer(ac.buffer.clone()),
                    KernelArg::Buffer(b_buffer),
                    KernelArg::Buffer(oc.buffer.clone()),
                    KernelArg::Scalar(Value::I32(rows as i32)),
                    KernelArg::Scalar(Value::I32(m as i32)),
                    KernelArg::Scalar(Value::I32(d as i32)),
                ];
                DeviceLaunch {
                    device: ac.plan.device,
                    args,
                    range: NdRange::grid([m, rows], [TILE, TILE]),
                    units: ac.plan.core_len(),
                }
            })
            .collect();
        self.core.run(self.kernel, launches)?;
        output.mark_device_written();
        Ok(output)
    }

    /// Profiling of the most recent call.
    pub fn events(&self) -> &EventLog {
        &self.core.events
    }
}

impl<I: KernelScalar, O: KernelScalar> Skeleton for Allpairs<I, O> {
    fn name(&self) -> &'static str {
        self.core.name
    }

    fn context(&self) -> &Context {
        &self.core.ctx
    }

    fn events(&self) -> &EventLog {
        &self.core.events
    }

    fn kernel_disassembly(&self) -> String {
        self.core.program.disassemble()
    }
}

/// Matrix multiplication via the allpairs skeleton (paper Example 1):
/// `A × B = allpairs(dotProduct)(A, Bᵀ)`.
///
/// # Errors
///
/// Fails with [`Error::ShapeMismatch`] when `A.cols() != B.rows()`, plus
/// any platform failure.
pub fn matrix_multiply<T: KernelScalar>(
    allpairs: &Allpairs<T, T>,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Result<Matrix<T>> {
    if a.cols() != b.rows() {
        return Err(Error::ShapeMismatch {
            reason: format!(
                "matrix multiplication requires {}×{} · {}×{} to agree",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            ),
        });
    }
    let bt = transpose(b)?;
    allpairs.call(a, &bt)
}

/// Host-side transpose helper (the paper's Example 1 applies allpairs to
/// `Bᵀ`).
///
/// # Errors
///
/// Propagates download failures.
pub fn transpose<T: KernelScalar>(m: &Matrix<T>) -> Result<Matrix<T>> {
    let (rows, cols) = (m.rows(), m.cols());
    let data = m.with_slice(|s| {
        let mut out = vec![T::default(); s.len()];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = s[r * cols + c];
            }
        }
        out
    })?;
    Ok(Matrix::from_vec(m.context(), cols, rows, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DeviceSelection;
    use vgpu::{DeviceSpec, Platform};

    fn ctx(n: usize) -> Context {
        Context::init(
            Platform::new(n, DeviceSpec::tesla_t10()),
            DeviceSelection::All,
        )
    }

    const DOT: &str = "float func(const float* a, const float* b, int d){
        float sum = 0.0f;
        for (int k = 0; k < d; ++k) sum += a[k] * b[k];
        return sum;
    }";

    fn host_matmul(a: &[f32], b: &[f32], n: usize, d: usize, m: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; n * m];
        for i in 0..n {
            for j in 0..m {
                let mut s = 0.0;
                for k in 0..d {
                    s += a[i * d + k] * b[k * m + j];
                }
                c[i * m + j] = s;
            }
        }
        c
    }

    #[test]
    fn matrix_multiplication_via_generic_allpairs() {
        let ctx = ctx(1);
        let ap: Allpairs<f32, f32> = Allpairs::new(&ctx, DOT).unwrap();
        let (n, d, m) = (7usize, 5usize, 9usize);
        let a_data: Vec<f32> = (0..n * d).map(|i| ((i * 13) % 7) as f32 - 3.0).collect();
        let b_data: Vec<f32> = (0..d * m).map(|i| ((i * 11) % 5) as f32 - 2.0).collect();
        let a = Matrix::from_vec(&ctx, n, d, a_data.clone());
        let b = Matrix::from_vec(&ctx, d, m, b_data.clone());
        let c = matrix_multiply(&ap, &a, &b).unwrap();
        assert_eq!(c.to_vec().unwrap(), host_matmul(&a_data, &b_data, n, d, m));
    }

    #[test]
    fn zip_reduce_matches_generic() {
        let (n, d, m) = (20usize, 33usize, 17usize);
        let a_data: Vec<f32> = (0..n * d).map(|i| ((i * 7) % 9) as f32).collect();
        let bt_data: Vec<f32> = (0..m * d).map(|i| ((i * 3) % 11) as f32).collect();

        let ctx1 = ctx(1);
        let generic: Allpairs<f32, f32> = Allpairs::new(&ctx1, DOT).unwrap();
        let a = Matrix::from_vec(&ctx1, n, d, a_data.clone());
        let bt = Matrix::from_vec(&ctx1, m, d, bt_data.clone());
        let c1 = generic.call(&a, &bt).unwrap().to_vec().unwrap();

        let ctx2 = ctx(1);
        let tiled: Allpairs<f32, f32> = Allpairs::zip_reduce(
            &ctx2,
            "float mul(float x, float y){ return x * y; }",
            "float add(float x, float y){ return x + y; }",
        )
        .unwrap();
        let a2 = Matrix::from_vec(&ctx2, n, d, a_data);
        let bt2 = Matrix::from_vec(&ctx2, m, d, bt_data);
        let c2 = tiled.call(&a2, &bt2).unwrap().to_vec().unwrap();

        assert_eq!(c1, c2);
    }

    #[test]
    fn multi_gpu_allpairs() {
        let (n, d, m) = (37usize, 8usize, 21usize);
        let a_data: Vec<f32> = (0..n * d).map(|i| (i % 6) as f32).collect();
        let bt_data: Vec<f32> = (0..m * d).map(|i| (i % 4) as f32).collect();
        let mut results = Vec::new();
        for devices in [1usize, 4] {
            let ctx = ctx(devices);
            let ap: Allpairs<f32, f32> = Allpairs::new(&ctx, DOT).unwrap();
            let a = Matrix::from_vec(&ctx, n, d, a_data.clone());
            let bt = Matrix::from_vec(&ctx, m, d, bt_data.clone());
            results.push(ap.call(&a, &bt).unwrap().to_vec().unwrap());
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn manhattan_distance_pairs() {
        let ctx = ctx(2);
        let manhattan: Allpairs<f32, f32> = Allpairs::new(
            &ctx,
            "float func(const float* a, const float* b, int d){
                 float sum = 0.0f;
                 for (int k = 0; k < d; ++k) sum += fabs(a[k] - b[k]);
                 return sum;
             }",
        )
        .unwrap();
        let a = Matrix::from_fn(&ctx, 10, 4, |r, c| (r + c) as f32);
        let c = manhattan.call(&a, &a).unwrap();
        // Distance to self is zero; symmetric otherwise.
        for i in 0..10 {
            assert_eq!(c.get(i, i).unwrap(), 0.0);
        }
        assert_eq!(c.get(2, 7).unwrap(), c.get(7, 2).unwrap());
        assert_eq!(c.get(0, 1).unwrap(), 4.0);
    }

    #[test]
    fn shape_validation() {
        let ctx = ctx(1);
        let ap: Allpairs<f32, f32> = Allpairs::new(&ctx, DOT).unwrap();
        let a = Matrix::<f32>::zeros(&ctx, 3, 4);
        let b = Matrix::<f32>::zeros(&ctx, 3, 5);
        assert!(matches!(ap.call(&a, &b), Err(Error::ShapeMismatch { .. })));
        let b2 = Matrix::<f32>::zeros(&ctx, 5, 3);
        assert!(matches!(
            matrix_multiply(&ap, &a, &b2),
            Err(Error::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn signature_validation() {
        let ctx = ctx(1);
        assert!(Allpairs::<f32, f32>::new(&ctx, "float f(float a, float b){ return a; }").is_err());
        assert!(Allpairs::<f32, f32>::new(
            &ctx,
            "float f(const float* a, const float* b){ return a[0]; }"
        )
        .is_err());
        assert!(Allpairs::<f32, f32>::zip_reduce(
            &ctx,
            "float f(float a, float b){ return a * b; }",
            "float f(float a, float b){ return a + b; }",
        )
        .is_err());
    }

    #[test]
    fn transpose_helper() {
        let ctx = ctx(1);
        let m = Matrix::from_fn(&ctx, 2, 3, |r, c| (r * 3 + c) as i32);
        let t = transpose(&m).unwrap();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.to_vec().unwrap(), vec![0, 3, 1, 4, 2, 5]);
    }
}
