//! The **Map** skeleton (paper §3.3): applies a unary customizing function
//! to every element of a container.

use std::marker::PhantomData;

use skelcl_kernel::value::Value;
use vgpu::{KernelArg, NdRange};

use crate::codegen::{
    compile_cached, expect_return, expect_scalar_extras, expect_scalar_param, extra_param_decls,
    extra_param_uses, parse_user_function, stage_spec, weld_elementwise, StageSpec,
};
use crate::container::{Matrix, Vector};
use crate::context::Context;
use crate::distribution::Distribution;
use crate::error::Result;
use crate::exec::{
    elementwise_matrix, elementwise_vector, DeviceLaunch, ElementwiseInput, Skeleton, SkeletonCore,
};
use crate::expr::Expr;
use crate::skeleton::EventLog;
use crate::types::KernelScalar;

/// The Map skeleton: `map f [x1, …, xn] = [f(x1), …, f(xn)]`.
///
/// Created from a customizing function written as SkelCL C source, exactly
/// as in the paper:
///
/// ```
/// use skelcl::{Context, Map, Vector};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ctx = Context::single_gpu();
/// let neg: Map<f32, f32> = Map::new(&ctx, "float func(float x){ return -x; }")?;
/// let input = Vector::from_vec(&ctx, vec![1.0, -2.0, 3.0]);
/// let result = neg.call(&input)?;
/// assert_eq!(result.to_vec()?, vec![-1.0, 2.0, -3.0]);
/// # Ok(())
/// # }
/// ```
///
/// The customizing function may take extra scalar parameters after the
/// element; supply them per call with [`Map::call_with`]. [`Map::lazy`]
/// defers the stage into a fusable [`Expr`] instead of executing it.
#[derive(Debug)]
pub struct Map<I: KernelScalar, O: KernelScalar> {
    core: SkeletonCore,
    /// The fusion stage of the customizing function ([`Map::lazy`]).
    stage: StageSpec,
    /// Whether an index-map entry point was generated (`I` is `int`).
    has_index_kernel: bool,
    _types: PhantomData<fn(I) -> O>,
}

impl<I: KernelScalar, O: KernelScalar> Map<I, O> {
    /// Creates a Map skeleton from a unary customizing function.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidCustomizingFunction`] when the source
    /// does not parse or its signature is not `O f(I x, …scalars)`.
    pub fn new(ctx: &Context, source: &str) -> Result<Self> {
        let f = parse_user_function("Map", source)?;
        expect_scalar_param("Map", &f, 0, I::SCALAR)?;
        expect_return("Map", &f, O::SCALAR)?;
        expect_scalar_extras("Map", &f, 1)?;
        let extras = f.extra_params(1).to_vec();

        // When the element type is `int`, also emit an index-map entry
        // point: the customizing function is applied to the global index
        // directly, with no input buffer at all (the `IndexVector` idea of
        // later SkelCL versions — saves the upload and the per-item load).
        let has_index_kernel = I::SCALAR == skelcl_kernel::types::ScalarType::Int;
        let index_kernel = if has_index_kernel {
            format!(
                "__kernel void skelcl_map_index(__global {o}* skelcl_out, int skelcl_n, int skelcl_base{decls}) {{\n\
                     int skelcl_i = (int)get_global_id(0);\n\
                     if (skelcl_i < skelcl_n)\n\
                         skelcl_out[skelcl_i] = {f}(skelcl_base + skelcl_i{uses});\n\
                 }}\n",
                o = O::SCALAR,
                f = f.name,
                decls = extra_param_decls(&extras, "skelcl_x"),
                uses = extra_param_uses(&extras, "skelcl_x"),
            )
        } else {
            String::new()
        };
        let kernel_source = format!(
            "{main}{index_kernel}",
            main = weld_elementwise("skelcl_map", &f, &[I::SCALAR], O::SCALAR),
        );
        let program = compile_cached(ctx, "skelcl_map.cl", &kernel_source)?;
        Ok(Map {
            stage: stage_spec(&f, O::SCALAR),
            core: SkeletonCore::new(ctx, "Map", program, extras),
            has_index_kernel,
            _types: PhantomData,
        })
    }

    /// Applies the skeleton to a vector.
    ///
    /// # Errors
    ///
    /// Propagates platform failures and kernel faults.
    pub fn call(&self, input: &Vector<I>) -> Result<Vector<O>> {
        self.call_with(input, &[])
    }

    /// Applies the skeleton with extra scalar arguments (in the order of
    /// the customizing function's extra parameters).
    ///
    /// # Errors
    ///
    /// Fails when the extra-argument count mismatches, plus anything
    /// [`Map::call`] can raise.
    pub fn call_with(&self, input: &Vector<I>, extra: &[Value]) -> Result<Vector<O>> {
        let _span = self.core.begin("Map.call");
        self.core.check_extras(extra)?;
        elementwise_vector(
            &self.core,
            "skelcl_map",
            &[input as &dyn ElementwiseInput],
            extra,
        )
    }

    /// Applies the skeleton elementwise to a matrix.
    ///
    /// # Errors
    ///
    /// As for [`Map::call`].
    pub fn call_matrix(&self, input: &Matrix<I>) -> Result<Matrix<O>> {
        self.call_matrix_with(input, &[])
    }

    /// Matrix variant of [`Map::call_with`].
    ///
    /// # Errors
    ///
    /// As for [`Map::call_with`].
    pub fn call_matrix_with(&self, input: &Matrix<I>, extra: &[Value]) -> Result<Matrix<O>> {
        let _span = self.core.begin("Map.call_matrix");
        self.core.check_extras(extra)?;
        elementwise_matrix(
            &self.core,
            "skelcl_map",
            &[input as &dyn ElementwiseInput],
            input.rows(),
            input.cols(),
            extra,
        )
    }

    /// Applies the customizing function to the index range `0..len`
    /// without materialising an input vector — the `IndexVector` extension
    /// of later SkelCL versions. Only available when the input element
    /// type `I` is `i32` (the function receives the index).
    ///
    /// # Errors
    ///
    /// Fails with [`crate::Error::ShapeMismatch`] when `I` is not `i32`,
    /// plus anything [`Map::call_with`] can raise.
    pub fn call_index(&self, len: usize, extra: &[Value]) -> Result<Vector<O>> {
        let _span = self.core.begin("Map.call_index");
        if !self.has_index_kernel {
            return Err(crate::error::Error::ShapeMismatch {
                reason: format!(
                    "index map requires the input element type `int`, this Map takes `{}`",
                    std::any::type_name::<I>()
                ),
            });
        }
        self.core.check_extras(extra)?;
        let (output, out_chunks) = Vector::alloc_device(&self.core.ctx, len, Distribution::Block)?;
        let launches = out_chunks
            .iter()
            .map(|oc| {
                let n = oc.plan.core_len();
                let mut args = vec![
                    KernelArg::Buffer(oc.buffer.clone()),
                    KernelArg::Scalar(Value::I32(n as i32)),
                    KernelArg::Scalar(Value::I32(oc.plan.core.start as i32)),
                ];
                args.extend(extra.iter().map(|v| KernelArg::Scalar(*v)));
                DeviceLaunch {
                    device: oc.plan.device,
                    args,
                    range: NdRange::linear_default(n),
                    units: oc.plan.core_len(),
                }
            })
            .collect();
        self.core.run("skelcl_map_index", launches)?;
        output.mark_device_written();
        Ok(output)
    }

    /// Defers the stage onto `input` instead of executing it: the result
    /// composes with further [`Map::lazy`] / [`crate::Zip::lazy`] stages
    /// and evaluates as **one** fused kernel ([`Expr::eval`]), or feeds a
    /// fused reduction ([`crate::Reduce::call_fused`]).
    ///
    /// # Errors
    ///
    /// Fails when the customizing function takes extra arguments (use
    /// [`Map::lazy_with`]).
    pub fn lazy(&self, input: &Expr<I>) -> Result<Expr<O>> {
        self.lazy_with(input, &[])
    }

    /// [`Map::lazy`] with extra scalar arguments, bound into the stage at
    /// composition time (they are inlined as literals in the fused
    /// kernel).
    ///
    /// # Errors
    ///
    /// Fails when the extra-argument count mismatches.
    pub fn lazy_with(&self, input: &Expr<I>, extra: &[Value]) -> Result<Expr<O>> {
        self.core.check_extras(extra)?;
        Ok(Expr::apply(
            &self.core.ctx,
            self.stage.clone(),
            extra.to_vec(),
            vec![input.node().clone()],
        ))
    }

    /// Profiling of the most recent call.
    pub fn events(&self) -> &EventLog {
        &self.core.events
    }

    /// The generated kernel's disassembly (debugging aid).
    pub fn kernel_disassembly(&self) -> String {
        self.core.program.disassemble()
    }
}

impl<I: KernelScalar, O: KernelScalar> Skeleton for Map<I, O> {
    fn name(&self) -> &'static str {
        self.core.name
    }

    fn context(&self) -> &Context {
        &self.core.ctx
    }

    fn events(&self) -> &EventLog {
        &self.core.events
    }

    fn kernel_disassembly(&self) -> String {
        self.core.program.disassemble()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DeviceSelection;
    use vgpu::{DeviceSpec, Platform};

    fn ctx(n: usize) -> Context {
        Context::init(
            Platform::new(n, DeviceSpec::tesla_t10()),
            DeviceSelection::All,
        )
    }

    #[test]
    fn negation_map_from_the_paper() {
        let ctx = ctx(1);
        let neg: Map<f32, f32> = Map::new(&ctx, "float func(float x){ return -x; }").unwrap();
        let v = Vector::from_fn(&ctx, 1000, |i| i as f32);
        let r = neg.call(&v).unwrap();
        let out = r.to_vec().unwrap();
        assert_eq!(out[0], 0.0);
        assert_eq!(out[999], -999.0);
        assert!(neg.events().last_kernel_time().as_nanos() > 0);
    }

    #[test]
    fn map_splits_across_devices_block() {
        let ctx = ctx(4);
        let inc: Map<i32, i32> = Map::new(&ctx, "int f(int x){ return x + 1; }").unwrap();
        let v = Vector::from_fn(&ctx, 1003, |i| i as i32);
        let r = inc.call(&v).unwrap();
        assert_eq!(r.to_vec().unwrap(), (1..=1003).collect::<Vec<i32>>());
        // One kernel launch per device.
        let kernel_events = inc.events().last_events();
        assert_eq!(kernel_events.len(), 4);
        let devices: std::collections::HashSet<usize> =
            kernel_events.iter().map(|e| e.device().0).collect();
        assert_eq!(devices.len(), 4);
    }

    #[test]
    fn map_honours_single_and_copy_distributions() {
        let ctx = ctx(2);
        let double: Map<i32, i32> = Map::new(&ctx, "int f(int x){ return 2 * x; }").unwrap();

        let v = Vector::from_fn(&ctx, 10, |i| i as i32);
        v.set_distribution(Distribution::Single(1)).unwrap();
        let r = double.call(&v).unwrap();
        assert_eq!(
            r.to_vec().unwrap(),
            (0..10).map(|x| 2 * x).collect::<Vec<i32>>()
        );
        assert_eq!(double.events().last_events().len(), 1);
        assert_eq!(double.events().last_events()[0].device().0, 1);

        let w = Vector::from_fn(&ctx, 10, |i| i as i32);
        w.set_distribution(Distribution::Copy).unwrap();
        let r = double.call(&w).unwrap();
        assert_eq!(
            r.to_vec().unwrap(),
            (0..10).map(|x| 2 * x).collect::<Vec<i32>>()
        );
        assert_eq!(
            double.events().last_events().len(),
            2,
            "copy computes everywhere"
        );
    }

    #[test]
    fn map_with_extra_arguments() {
        let ctx = ctx(2);
        let scale: Map<f32, f32> = Map::new(
            &ctx,
            "float f(float x, float s, float o){ return x * s + o; }",
        )
        .unwrap();
        let v = Vector::from_vec(&ctx, vec![1.0f32, 2.0, 3.0]);
        let r = scale
            .call_with(&v, &[Value::F32(10.0), Value::F32(0.5)])
            .unwrap();
        assert_eq!(r.to_vec().unwrap(), vec![10.5, 20.5, 30.5]);
        // Wrong arity reported.
        assert!(scale.call(&v).is_err());
        assert!(scale.call_with(&v, &[Value::F32(1.0)]).is_err());
    }

    #[test]
    fn matrix_map_with_extra_arguments() {
        let ctx = ctx(2);
        let affine: Map<i32, i32> =
            Map::new(&ctx, "int f(int x, int s, int o){ return x * s + o; }").unwrap();
        let m = Matrix::from_fn(&ctx, 5, 3, |r, c| (r * 3 + c) as i32);
        let out = affine
            .call_matrix_with(&m, &[Value::I32(10), Value::I32(7)])
            .unwrap();
        assert_eq!(out.get(0, 0).unwrap(), 7);
        assert_eq!(out.get(4, 2).unwrap(), 147);
        // Wrong arity reported on the matrix path too.
        assert!(affine.call_matrix(&m).is_err());
        assert!(affine.call_matrix_with(&m, &[Value::I32(1)]).is_err());
    }

    #[test]
    fn map_type_conversion_between_element_types() {
        let ctx = ctx(1);
        let classify: Map<f32, u8> =
            Map::new(&ctx, "uchar f(float x){ return x > 0.5f ? 255 : 0; }").unwrap();
        let v = Vector::from_vec(&ctx, vec![0.1f32, 0.9, 0.5, 0.7]);
        assert_eq!(
            classify.call(&v).unwrap().to_vec().unwrap(),
            vec![0, 255, 0, 255]
        );
    }

    #[test]
    fn map_on_matrix() {
        let ctx = ctx(2);
        let neg: Map<i32, i32> = Map::new(&ctx, "int f(int x){ return -x; }").unwrap();
        let m = Matrix::from_fn(&ctx, 5, 7, |r, c| (r * 7 + c) as i32);
        let out = neg.call_matrix(&m).unwrap();
        assert_eq!(out.rows(), 5);
        assert_eq!(out.cols(), 7);
        assert_eq!(out.get(4, 6).unwrap(), -34);
    }

    #[test]
    fn signature_mismatch_rejected_early() {
        let ctx = ctx(1);
        assert!(Map::<f32, f32>::new(&ctx, "int f(int x){ return x; }").is_err());
        assert!(
            Map::<f32, f32>::new(&ctx, "float f(float x, const float* p){ return x; }").is_err()
        );
        assert!(Map::<f32, f32>::new(&ctx, "not even C").is_err());
    }

    #[test]
    fn chained_maps_stay_on_device() {
        let ctx = ctx(2);
        let inc: Map<i32, i32> = Map::new(&ctx, "int f(int x){ return x + 1; }").unwrap();
        let v = Vector::from_fn(&ctx, 100, |i| i as i32);
        let r = inc
            .call(&inc.call(&inc.call(&v).unwrap()).unwrap())
            .unwrap();
        assert_eq!(r.get(0).unwrap(), 3);
        assert_eq!(r.get(99).unwrap(), 102);
    }

    #[test]
    fn index_map_matches_vector_map() {
        let ctx = ctx(3);
        let square: Map<i32, i64> =
            Map::new(&ctx, "long f(int i){ return (long)i * (long)i; }").unwrap();
        let via_vector = square
            .call(&Vector::from_fn(&ctx, 1000, |i| i as i32))
            .unwrap()
            .to_vec()
            .unwrap();
        let via_index = square.call_index(1000, &[]).unwrap().to_vec().unwrap();
        assert_eq!(via_vector, via_index);
        assert_eq!(via_index[999], 999 * 999);
    }

    #[test]
    fn index_map_requires_int_input() {
        let ctx = ctx(1);
        let neg: Map<f32, f32> = Map::new(&ctx, "float f(float x){ return -x; }").unwrap();
        assert!(neg.call_index(10, &[]).is_err());
    }

    #[test]
    fn index_map_with_extras_does_no_input_transfer() {
        let ctx = ctx(1);
        let scale: Map<i32, f32> =
            Map::new(&ctx, "float f(int i, float s){ return (float)i * s; }").unwrap();
        let out = scale.call_index(8, &[Value::F32(0.5)]).unwrap();
        assert_eq!(
            out.to_vec().unwrap(),
            (0..8).map(|i| i as f32 * 0.5).collect::<Vec<_>>()
        );
        // Kernel-only launch: no input loads at all.
        let counters = scale
            .events()
            .last_events()
            .iter()
            .find_map(|e| e.counters())
            .unwrap();
        assert_eq!(counters.global_loads, 0);
        assert_eq!(counters.global_stores, 8);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let ctx = ctx(2);
        let neg: Map<f32, f32> = Map::new(&ctx, "float f(float x){ return -x; }").unwrap();
        let v = Vector::<f32>::zeros(&ctx, 0);
        let r = neg.call(&v).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn skeleton_trait_surface() {
        let ctx = ctx(1);
        let neg: Map<f32, f32> = Map::new(&ctx, "float f(float x){ return -x; }").unwrap();
        let s: &dyn Skeleton = &neg;
        assert_eq!(s.name(), "Map");
        assert!(s.context().same_as(&ctx));
        assert!(s.kernel_disassembly().contains("skelcl_map"));
    }
}
