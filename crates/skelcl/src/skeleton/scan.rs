//! The **Scan** skeleton (paper §3.3): inclusive prefix computation
//! (a.k.a. prefix-sum) with a binary associative customizing operator.
//!
//! Implementation: per-block Hillis–Steele scan in local memory (pointer
//! double-buffering behind barriers), a recursive scan of the block sums,
//! and an offset-application pass — the standard multi-block GPU scan. On
//! multiple GPUs each device scans its block chunk; the chunk totals are
//! scanned on the first device and applied as per-device offsets.

use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

use skelcl_kernel::value::Value;
use vgpu::{DeviceBuffer, Event, KernelArg, NdRange};

use crate::codegen::{
    compile_cached, expect_return, expect_scalar_param, parse_user_function, stage_spec, StageSpec,
};
use crate::container::data::DeviceChunk;
use crate::container::Vector;
use crate::context::Context;
use crate::distribution::Distribution;
use crate::engine::{LaunchPlan, NodeId};
use crate::error::{Error, Result};
use crate::exec::{reduction_distribution, Skeleton, SkeletonCore};
use crate::expr::Expr;
use crate::plan::{PlanNode, ScanOffsetState};
use crate::skeleton::EventLog;
use crate::types::{from_bytes, to_bytes, KernelScalar};

/// Work-group (and scan block) size.
const WG: usize = 256;

/// The Scan skeleton:
/// `scan (⊕) [v1, …, vn] = [v1, v1 ⊕ v2, …, v1 ⊕ … ⊕ vn]` (inclusive).
///
/// ```
/// use skelcl::{Context, Scan, Vector};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ctx = Context::single_gpu();
/// let prefix: Scan<i32> = Scan::new(&ctx, "int add(int x, int y){ return x + y; }")?;
/// let v = Vector::from_vec(&ctx, vec![1, 2, 3, 4]);
/// assert_eq!(prefix.call(&v)?.to_vec()?, vec![1, 3, 6, 10]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Scan<T: KernelScalar> {
    core: SkeletonCore,
    stage: StageSpec,
    _types: PhantomData<fn(T, T) -> T>,
}

/// Result of the eager part of a scan: per-chunk inclusive scans plus the
/// scanned chunk totals (empty on a single chunk).
struct ScanPhase1<T: KernelScalar> {
    output: Vector<T>,
    out_chunks: Vec<DeviceChunk>,
    dist: Distribution,
    prefixes: Vec<T>,
    events: Vec<Event>,
}

impl<T: KernelScalar> Scan<T> {
    /// Creates a Scan skeleton from a binary associative operator
    /// `T f(T x, T y)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCustomizingFunction`] on parse or signature
    /// problems.
    pub fn new(ctx: &Context, source: &str) -> Result<Self> {
        let f = parse_user_function("Scan", source)?;
        expect_scalar_param("Scan", &f, 0, T::SCALAR)?;
        expect_scalar_param("Scan", &f, 1, T::SCALAR)?;
        expect_return("Scan", &f, T::SCALAR)?;
        if f.params.len() != 2 {
            return Err(Error::InvalidCustomizingFunction {
                skeleton: "Scan",
                reason: format!("`{}` must take exactly two parameters", f.name),
            });
        }

        let kernel_source = format!(
            "{user}\n\
             __kernel void skelcl_scan_block(__global const {t}* skelcl_in, __global {t}* skelcl_out,\n\
                                             __global {t}* skelcl_sums, int skelcl_n) {{\n\
                 __local {t} skelcl_bufa[{wg}];\n\
                 __local {t} skelcl_bufb[{wg}];\n\
                 __local {t}* cur = skelcl_bufa;\n\
                 __local {t}* nxt = skelcl_bufb;\n\
                 int lid = (int)get_local_id(0);\n\
                 int gid = (int)get_global_id(0);\n\
                 int lsz = (int)get_local_size(0);\n\
                 if (gid < skelcl_n) cur[lid] = skelcl_in[gid];\n\
                 barrier(CLK_LOCAL_MEM_FENCE);\n\
                 for (int off = 1; off < lsz; off <<= 1) {{\n\
                     if (lid >= off && gid < skelcl_n) nxt[lid] = {f}(cur[lid - off], cur[lid]);\n\
                     else nxt[lid] = cur[lid];\n\
                     barrier(CLK_LOCAL_MEM_FENCE);\n\
                     __local {t}* tmp = cur; cur = nxt; nxt = tmp;\n\
                 }}\n\
                 if (gid < skelcl_n) skelcl_out[gid] = cur[lid];\n\
                 if (lid == lsz - 1) skelcl_sums[get_group_id(0)] = cur[lid];\n\
             }}\n\
             __kernel void skelcl_scan_add_sums(__global {t}* skelcl_data,\n\
                                                __global const {t}* skelcl_sums, int skelcl_n) {{\n\
                 int gid = (int)get_global_id(0);\n\
                 int g = (int)get_group_id(0);\n\
                 if (g > 0 && gid < skelcl_n)\n\
                     skelcl_data[gid] = {f}(skelcl_sums[g - 1], skelcl_data[gid]);\n\
             }}\n\
             __kernel void skelcl_scan_offset(__global {t}* skelcl_data, {t} skelcl_off, int skelcl_n) {{\n\
                 int gid = (int)get_global_id(0);\n\
                 if (gid < skelcl_n) skelcl_data[gid] = {f}(skelcl_off, skelcl_data[gid]);\n\
             }}\n",
            user = f.source(),
            t = T::SCALAR,
            f = f.name,
            wg = WG,
        );
        let program = compile_cached(ctx, "skelcl_scan.cl", &kernel_source)?;
        let stage = stage_spec(&f, T::SCALAR);
        Ok(Scan {
            core: SkeletonCore::new(ctx, "Scan", program, Vec::new()),
            stage,
            _types: PhantomData,
        })
    }

    /// Computes the inclusive prefix of a vector.
    ///
    /// # Errors
    ///
    /// Propagates platform failures; empty input yields an empty output.
    pub fn call(&self, input: &Vector<T>) -> Result<Vector<T>> {
        let _span = self.core.begin("Scan.call");
        if input.is_empty() {
            return Ok(Vector::from_vec(&self.core.ctx, Vec::new()));
        }
        let mut p1 = self.run_phase1(input)?;

        // Phase 2b: one offset kernel per remaining chunk.
        if !p1.prefixes.is_empty() {
            let mut plan = LaunchPlan::new();
            for (i, oc) in p1.out_chunks.iter().enumerate().skip(1) {
                let n = oc.plan.core_len();
                plan.kernel(
                    oc.plan.device,
                    &self.core.program,
                    "skelcl_scan_offset",
                    vec![
                        KernelArg::Buffer(oc.buffer.clone()),
                        KernelArg::Scalar(p1.prefixes[i - 1].to_value()),
                        KernelArg::Scalar(Value::I32(n as i32)),
                    ],
                    NdRange::linear(n, WG),
                    0,
                    &[],
                );
            }
            let run = plan.execute(&self.core.ctx)?;
            run.wait()?;
            p1.events.extend(run.into_events());
        }

        self.core.events.record(p1.events);
        p1.output.mark_device_written();
        Ok(p1.output)
    }

    /// Computes the inclusive prefix lazily: per-chunk scans run now, but
    /// on multiple devices the cross-chunk offset pass is parked as a
    /// [`PlanNode::ScanOffset`] leaf. The plan layer either folds the
    /// offset into a downstream fused load (the `scan-offset` rewrite
    /// rule) or applies it standalone — bit-identical either way.
    ///
    /// # Errors
    ///
    /// As for [`Scan::call`].
    pub fn lazy(&self, input: &Vector<T>) -> Result<Expr<T>> {
        let _span = self.core.begin("Scan.lazy");
        if input.is_empty() {
            return Ok(Expr::from(&Vector::from_vec(&self.core.ctx, Vec::new())));
        }
        let p1 = self.run_phase1(input)?;
        self.core.events.record(p1.events);
        p1.output.mark_device_written();
        if p1.prefixes.is_empty() {
            return Ok(Expr::from(&p1.output));
        }
        let state = ScanOffsetState {
            program: self.core.program.clone(),
            stage: self.stage.clone(),
            scalar: T::SCALAR,
            zero: T::default().to_value(),
            vector: Box::new(p1.output.clone()),
            dist: p1.dist,
            offsets: p1.prefixes.iter().map(|v| v.to_value()).collect(),
            plans: p1.out_chunks.iter().map(|c| c.plan.clone()).collect(),
            applied: Mutex::new(false),
        };
        Ok(Expr::from_node(Arc::new(PlanNode::ScanOffset {
            ctx: self.core.ctx.clone(),
            state: Arc::new(state),
        })))
    }

    /// Phase 1 (per-chunk inclusive scans) plus phase 2a (scan of the
    /// chunk totals on the first device). `prefixes` stays empty on a
    /// single chunk, where the scan is already complete.
    fn run_phase1(&self, input: &Vector<T>) -> Result<ScanPhase1<T>> {
        let dist = reduction_distribution(input.effective_distribution(Distribution::Block));
        let in_chunks = input.ensure_device(dist)?;
        let (output, out_chunks) = Vector::alloc_device(&self.core.ctx, input.len(), dist)?;
        let elem = std::mem::size_of::<T>();
        let multi = out_chunks.len() > 1;

        // Phase 1: one plan — every device scans its chunk on its own
        // asynchronous queue. On multiple devices each chain ends in a
        // one-element readback of the chunk total, dependent on the
        // chunk's final scan pass.
        let mut plan = LaunchPlan::new();
        let mut total_reads = Vec::new();
        for (ic, oc) in in_chunks.iter().zip(&out_chunks) {
            let core = ic.plan.core_len();
            let done = self.plan_scan(
                &mut plan,
                ic.plan.device,
                &ic.buffer,
                &oc.buffer,
                core,
                core,
                &[],
            )?;
            if multi {
                total_reads.push(plan.read(
                    ic.plan.device,
                    &oc.buffer,
                    (core - 1) * elem,
                    elem,
                    &[done],
                ));
            }
        }
        let mut run = plan.execute(&self.core.ctx)?;
        run.wait()?;
        let mut totals: Vec<T> = Vec::with_capacity(total_reads.len());
        for id in total_reads {
            totals.push(T::from_le_bytes(&run.take_read(id)?));
        }
        let mut events = run.into_events();

        // Phase 2a: scan the chunk totals on the first device to get the
        // per-chunk offsets.
        let mut prefixes = Vec::new();
        if multi {
            let first = out_chunks[0].plan.device;
            let queue = self.core.ctx.queue(first);
            let count = totals.len();
            let tot_buf = queue.create_buffer(count * elem)?;
            let scanned = queue.create_buffer(count * elem)?;
            let mut plan = LaunchPlan::new();
            let upload = plan.write(first, &tot_buf, 0, to_bytes(&totals), &[]);
            let done = self.plan_scan(&mut plan, first, &tot_buf, &scanned, count, 0, &[upload])?;
            let read = plan.read(first, &scanned, 0, count * elem, &[done]);
            let mut run = plan.execute(&self.core.ctx)?;
            run.wait()?;
            prefixes = from_bytes(&run.take_read(read)?);
            events.extend(run.into_events());
        }

        Ok(ScanPhase1 {
            output,
            out_chunks,
            dist,
            prefixes,
            events,
        })
    }

    /// Appends the recursive multi-block scan of `n` elements of `input`
    /// into `output` on `device` to `plan`, returning the node after which
    /// `output` holds the finished scan. `units` is the scheduler
    /// measurement credited to the top-level block pass (0 for helper
    /// scans); `deps` gates the first pass.
    #[allow(clippy::too_many_arguments)]
    fn plan_scan(
        &self,
        plan: &mut LaunchPlan,
        device: usize,
        input: &DeviceBuffer,
        output: &DeviceBuffer,
        n: usize,
        units: usize,
        deps: &[NodeId],
    ) -> Result<NodeId> {
        let queue = self.core.ctx.queue(device);
        let elem = std::mem::size_of::<T>();
        let groups = n.div_ceil(WG);
        let sums = queue.create_buffer(groups * elem)?;
        let block = plan.kernel(
            device,
            &self.core.program,
            "skelcl_scan_block",
            vec![
                KernelArg::Buffer(input.clone()),
                KernelArg::Buffer(output.clone()),
                KernelArg::Buffer(sums.clone()),
                KernelArg::Scalar(Value::I32(n as i32)),
            ],
            NdRange::linear(groups * WG, WG),
            units,
            deps,
        );
        if groups == 1 {
            return Ok(block);
        }
        let scanned = queue.create_buffer(groups * elem)?;
        let sums_done = self.plan_scan(plan, device, &sums, &scanned, groups, 0, &[block])?;
        Ok(plan.kernel(
            device,
            &self.core.program,
            "skelcl_scan_add_sums",
            vec![
                KernelArg::Buffer(output.clone()),
                KernelArg::Buffer(scanned),
                KernelArg::Scalar(Value::I32(n as i32)),
            ],
            NdRange::linear(groups * WG, WG),
            0,
            &[sums_done],
        ))
    }

    /// Profiling of the most recent call.
    pub fn events(&self) -> &EventLog {
        &self.core.events
    }
}

impl<T: KernelScalar> Skeleton for Scan<T> {
    fn name(&self) -> &'static str {
        self.core.name
    }

    fn context(&self) -> &Context {
        &self.core.ctx
    }

    fn events(&self) -> &EventLog {
        &self.core.events
    }

    fn kernel_disassembly(&self) -> String {
        self.core.program.disassemble()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DeviceSelection;
    use vgpu::{DeviceSpec, Platform};

    fn ctx(n: usize) -> Context {
        Context::init(
            Platform::new(n, DeviceSpec::tesla_t10()),
            DeviceSelection::All,
        )
    }

    fn prefix_sum(ctx: &Context) -> Scan<i64> {
        Scan::new(ctx, "long add(long x, long y){ return x + y; }").unwrap()
    }

    fn host_scan(input: &[i64]) -> Vec<i64> {
        input
            .iter()
            .scan(0i64, |acc, &x| {
                *acc += x;
                Some(*acc)
            })
            .collect()
    }

    #[test]
    fn paper_prefix_sum_example() {
        let ctx = ctx(1);
        let scan = prefix_sum(&ctx);
        let v = Vector::from_vec(&ctx, vec![1i64, 2, 3, 4, 5]);
        assert_eq!(
            scan.call(&v).unwrap().to_vec().unwrap(),
            vec![1, 3, 6, 10, 15]
        );
    }

    #[test]
    fn scan_across_block_boundaries() {
        let ctx = ctx(1);
        let scan = prefix_sum(&ctx);
        for n in [1usize, 255, 256, 257, 512, 1000, 65537] {
            let data: Vec<i64> = (0..n as i64).map(|i| (i * 7) % 13 - 6).collect();
            let v = Vector::from_vec(&ctx, data.clone());
            assert_eq!(
                scan.call(&v).unwrap().to_vec().unwrap(),
                host_scan(&data),
                "n = {n}"
            );
        }
    }

    #[test]
    fn multi_gpu_scan() {
        let ctx = ctx(4);
        let scan = prefix_sum(&ctx);
        let data: Vec<i64> = (0..4099).map(|i| i % 17 - 8).collect();
        let v = Vector::from_vec(&ctx, data.clone());
        assert_eq!(scan.call(&v).unwrap().to_vec().unwrap(), host_scan(&data));
    }

    #[test]
    fn non_commutative_operator() {
        // Scan must preserve order; use a non-commutative associative op:
        // 2x2 matrix multiplication is overkill, but string-like "last"
        // composition works: f(x, y) = y ("replace"), whose scan is the
        // input itself.
        let ctx = ctx(2);
        let last: Scan<i32> = Scan::new(&ctx, "int f(int x, int y){ return y; }").unwrap();
        let data: Vec<i32> = (0..1000).map(|i| i * 3).collect();
        let v = Vector::from_vec(&ctx, data.clone());
        assert_eq!(last.call(&v).unwrap().to_vec().unwrap(), data);
    }

    #[test]
    fn float_prefix_product() {
        let ctx = ctx(2);
        let prod: Scan<f64> =
            Scan::new(&ctx, "double mul(double x, double y){ return x * y; }").unwrap();
        let v = Vector::from_vec(&ctx, vec![1.0f64, 2.0, 0.5, 4.0, 0.25]);
        let out = prod.call(&v).unwrap().to_vec().unwrap();
        assert_eq!(out, vec![1.0, 2.0, 1.0, 4.0, 1.0]);
    }

    #[test]
    fn empty_scan_is_empty() {
        let ctx = ctx(2);
        let scan = prefix_sum(&ctx);
        let v = Vector::<i64>::zeros(&ctx, 0);
        assert!(scan.call(&v).unwrap().is_empty());
    }

    #[test]
    fn signature_checked() {
        let ctx = ctx(1);
        assert!(Scan::<i32>::new(&ctx, "int f(int x){ return x; }").is_err());
        assert!(Scan::<i32>::new(&ctx, "float f(int x, int y){ return 0.0f; }").is_err());
    }
}
