//! SkelCL error types.

use std::fmt;

/// An error raised by the SkelCL library.
#[derive(Debug)]
pub enum Error {
    /// The user's customizing function failed to compile or did not match
    /// the skeleton's expected signature.
    InvalidCustomizingFunction {
        /// Which skeleton was being constructed.
        skeleton: &'static str,
        /// What was wrong (possibly a rendered compiler log).
        reason: String,
    },
    /// The generated kernel failed to compile — a SkelCL bug, reported with
    /// the full source and log for diagnosis.
    KernelCompilation {
        /// The generated source.
        source: String,
        /// The compiler log.
        log: String,
    },
    /// Container shapes don't match the skeleton's requirements.
    ShapeMismatch {
        /// Explanation, e.g. "zip requires vectors of equal length".
        reason: String,
    },
    /// An invalid distribution request (e.g. `single` on a device index
    /// that doesn't exist).
    InvalidDistribution {
        /// Explanation.
        reason: String,
    },
    /// The underlying virtual platform failed.
    Platform(vgpu::Error),
    /// The container is empty where a non-empty one is required (e.g.
    /// `Reduce` of zero elements has no defined value without an identity).
    EmptyContainer {
        /// Which operation required data.
        operation: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidCustomizingFunction { skeleton, reason } => {
                write!(f, "invalid customizing function for {skeleton}: {reason}")
            }
            Error::KernelCompilation { log, .. } => {
                write!(f, "generated kernel failed to compile (SkelCL bug): {log}")
            }
            Error::ShapeMismatch { reason } => write!(f, "shape mismatch: {reason}"),
            Error::InvalidDistribution { reason } => {
                write!(f, "invalid distribution: {reason}")
            }
            Error::Platform(e) => write!(f, "platform error: {e}"),
            Error::EmptyContainer { operation } => {
                write!(f, "{operation} requires a non-empty container")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vgpu::Error> for Error {
    fn from(e: vgpu::Error) -> Self {
        Error::Platform(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = Error::ShapeMismatch {
            reason: "lengths 3 vs 4".into(),
        };
        assert!(e.to_string().contains("lengths 3 vs 4"));
        let e: Error = vgpu::Error::UnknownKernel { name: "k".into() }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e = Error::EmptyContainer {
            operation: "Reduce",
        };
        assert!(e.to_string().contains("Reduce"));
    }
}
