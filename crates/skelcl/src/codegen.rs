//! Skeleton code generation: parsing user-provided customizing functions,
//! validating their signatures, rewriting stencil `get()` accesses, and
//! welding them into complete kernels (the paper's §3.3 mechanism — "rather
//! than writing low-level kernels, the application developer customizes
//! suitable skeletons by providing application-specific functions").

use skelcl_kernel::ast::{self, Block, Declarator, Expr, Stmt, VarDecl};
use skelcl_kernel::diag::Diagnostics;
use skelcl_kernel::parser;
use skelcl_kernel::pretty;
use skelcl_kernel::source::SourceFile;
use skelcl_kernel::types::{ScalarType, Type};
use skelcl_kernel::value::Value;

use crate::error::{Error, Result};

/// A parsed and validated customizing function.
#[derive(Debug, Clone)]
pub(crate) struct UserFunction {
    /// The whole user translation unit (customizing function first, then
    /// optional helper functions).
    pub unit: ast::TranslationUnit,
    /// Name of the customizing function (the first one).
    pub name: String,
    /// Parameter types of the customizing function.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
}

impl UserFunction {
    /// The user source, pretty-printed (after any rewriting).
    pub fn source(&self) -> String {
        pretty::print_unit(&self.unit)
    }

    /// Parameter types beyond the first `fixed` (the skeleton's extra
    /// arguments, which must be scalars).
    pub fn extra_params(&self, fixed: usize) -> &[Type] {
        &self.params[fixed.min(self.params.len())..]
    }
}

/// Parses `source` and extracts the customizing function (the first
/// function definition; later functions are helpers it may call).
///
/// Skeletons whose user functions are self-contained also pass them through
/// full semantic analysis here so the developer gets the compiler's
/// diagnostics immediately; `MapOverlap` skips that (its `get()` accessor
/// only resolves after rewriting) and relies on the post-weld check.
pub(crate) fn parse_user_function(skeleton: &'static str, source: &str) -> Result<UserFunction> {
    let file = SourceFile::new(format!("<{skeleton} customizing function>"), source);
    let mut diags = Diagnostics::new();
    let unit = parser::parse(&file, &mut diags);
    if diags.has_errors() {
        return Err(Error::InvalidCustomizingFunction {
            skeleton,
            reason: format!("parse error:\n{}", diags.render(&file)),
        });
    }
    if skeleton != "MapOverlap" {
        if let Err(e) = skelcl_kernel::check(&format!("<{skeleton} customizing function>"), source)
        {
            return Err(Error::InvalidCustomizingFunction {
                skeleton,
                reason: format!("type error:\n{}", e.log),
            });
        }
    }
    let Some(first) = unit.functions.first() else {
        return Err(Error::InvalidCustomizingFunction {
            skeleton,
            reason: "source contains no function definition".into(),
        });
    };
    if unit.functions.iter().any(|f| f.is_kernel) {
        return Err(Error::InvalidCustomizingFunction {
            skeleton,
            reason: "customizing functions must not be `__kernel`".into(),
        });
    }
    Ok(UserFunction {
        name: first.name.clone(),
        params: first.params.iter().map(|p| p.ty).collect(),
        ret: first.return_type,
        unit,
    })
}

/// Checks that a parameter is the scalar type `expected`.
pub(crate) fn expect_scalar_param(
    skeleton: &'static str,
    f: &UserFunction,
    index: usize,
    expected: ScalarType,
) -> Result<()> {
    match f.params.get(index) {
        Some(Type::Scalar(s)) if *s == expected => Ok(()),
        other => Err(Error::InvalidCustomizingFunction {
            skeleton,
            reason: format!(
                "parameter {} of `{}` must have type `{expected}`, found `{}`",
                index + 1,
                f.name,
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "<missing>".into())
            ),
        }),
    }
}

/// Checks that a parameter is a (const) pointer to `expected` (the stencil
/// or row-pointer parameter).
pub(crate) fn expect_pointer_param(
    skeleton: &'static str,
    f: &UserFunction,
    index: usize,
    expected: ScalarType,
) -> Result<()> {
    match f.params.get(index) {
        Some(Type::Pointer { pointee, .. }) if *pointee == expected => Ok(()),
        other => Err(Error::InvalidCustomizingFunction {
            skeleton,
            reason: format!(
                "parameter {} of `{}` must be a pointer to `{expected}`, found `{}`",
                index + 1,
                f.name,
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "<missing>".into())
            ),
        }),
    }
}

/// Checks the return type.
pub(crate) fn expect_return(
    skeleton: &'static str,
    f: &UserFunction,
    expected: ScalarType,
) -> Result<()> {
    if f.ret == Type::Scalar(expected) {
        Ok(())
    } else {
        Err(Error::InvalidCustomizingFunction {
            skeleton,
            reason: format!("`{}` must return `{expected}`, found `{}`", f.name, f.ret),
        })
    }
}

/// Checks that all parameters from `fixed` onwards are scalars (extra
/// skeleton arguments).
pub(crate) fn expect_scalar_extras(
    skeleton: &'static str,
    f: &UserFunction,
    fixed: usize,
) -> Result<()> {
    for (i, p) in f.params.iter().enumerate().skip(fixed) {
        if !matches!(p, Type::Scalar(_)) {
            return Err(Error::InvalidCustomizingFunction {
                skeleton,
                reason: format!(
                    "extra parameter {} of `{}` must be a scalar, found `{p}`",
                    i + 1,
                    f.name
                ),
            });
        }
    }
    Ok(())
}

/// Formats extra-parameter declarations (`, float scale, int n`) for a
/// generated kernel signature.
pub(crate) fn extra_param_decls(extras: &[Type], prefix: &str) -> String {
    extras
        .iter()
        .enumerate()
        .map(|(i, t)| format!(", {t} {prefix}{i}"))
        .collect()
}

/// Formats extra-argument forwarding (`, __x0, __x1`).
pub(crate) fn extra_param_uses(extras: &[Type], prefix: &str) -> String {
    (0..extras.len())
        .map(|i| format!(", {prefix}{i}"))
        .collect()
}

/// Validates the number of extra argument values supplied at call time.
pub(crate) fn check_extra_args(
    skeleton: &'static str,
    extras: &[Type],
    supplied: &[Value],
) -> Result<()> {
    if extras.len() != supplied.len() {
        return Err(Error::ShapeMismatch {
            reason: format!(
                "{skeleton} customizing function takes {} extra argument(s), {} supplied",
                extras.len(),
                supplied.len()
            ),
        });
    }
    for (i, (expected, value)) in extras.iter().zip(supplied).enumerate() {
        if let (Type::Scalar(want), Some(got)) = (expected, value.scalar_type()) {
            if *want != got {
                return Err(Error::ShapeMismatch {
                    reason: format!("{skeleton} extra argument {i} must be `{want}`, got `{got}`"),
                });
            }
        }
    }
    Ok(())
}

/// Formats a scalar [`Value`] as a SkelCL C literal expression (used to
/// inline the `MapOverlap` neutral element into generated source).
pub(crate) fn c_literal(v: Value) -> String {
    match v {
        Value::Bool(b) => b.to_string(),
        Value::I8(x) => format!("(char)({x})"),
        Value::U8(x) => format!("(uchar)({x})"),
        Value::I16(x) => format!("(short)({x})"),
        Value::U16(x) => format!("(ushort)({x})"),
        Value::I32(x) => format!("({x})"),
        Value::U32(x) => format!("{x}u"),
        Value::I64(x) => format!("({x}L)"),
        Value::U64(x) => format!("{x}uL"),
        Value::F32(x) => format_float(x as f64, true),
        Value::F64(x) => format_float(x, false),
        Value::Ptr(_) => unreachable!("pointers are not literal scalars"),
    }
}

fn format_float(x: f64, single: bool) -> String {
    let mut s = format!("{x}");
    if !s.contains('.') && !s.contains('e') {
        s.push_str(".0");
    }
    if single {
        s.push('f');
    }
    if x < 0.0 {
        s = format!("({s})");
    }
    s
}

/// Rewrites `get(p, dx[, dy])` stencil accesses inside the customizing
/// function (the **first** function of `f.unit`) into calls to the
/// generated checked accessors, and threads a tile-width parameter through
/// for the matrix variant:
///
/// * matrix: `get(m, dx, dy)` → `__skelcl_get2(m, __skelcl_tw, dx, dy)`,
///   and the function gains a `int __skelcl_tw` parameter right after the
///   stencil pointer;
/// * vector: `get(v, di)` → `__skelcl_get1(v, di)`.
///
/// Returns the rewritten function's new parameter list length.
pub(crate) fn rewrite_get_calls(f: &mut UserFunction, matrix: bool) -> Result<()> {
    let func = &mut f.unit.functions[0];
    if matrix {
        // Insert the tile-width parameter after the stencil pointer.
        let span = func.params.first().map(|p| p.span).unwrap_or_default();
        func.params.insert(
            1,
            ast::Param {
                ty: Type::Scalar(ScalarType::Int),
                name: "__skelcl_tw".into(),
                span,
            },
        );
        f.params.insert(1, Type::Scalar(ScalarType::Int));
    }
    let expected_args = if matrix { 3 } else { 2 };
    let mut bad: Option<String> = None;
    visit_block_exprs(&mut func.body, &mut |e| {
        if let Expr::Call {
            callee,
            args,
            callee_span,
            ..
        } = e
        {
            if callee == "get" {
                if args.len() != expected_args {
                    if bad.is_none() {
                        bad = Some(format!(
                            "`get` takes {} arguments for {} stencils, found {}",
                            expected_args,
                            if matrix { "matrix" } else { "vector" },
                            args.len()
                        ));
                    }
                    return;
                }
                if matrix {
                    *callee = "__skelcl_get2".into();
                    args.insert(
                        1,
                        Expr::Ident {
                            name: "__skelcl_tw".into(),
                            span: *callee_span,
                        },
                    );
                } else {
                    *callee = "__skelcl_get1".into();
                }
            }
        }
    });
    match bad {
        Some(reason) => Err(Error::InvalidCustomizingFunction {
            skeleton: "MapOverlap",
            reason,
        }),
        None => Ok(()),
    }
}

/// Applies `f` to every expression in a block, post-order (an expression's
/// children are visited before the expression itself). The single traversal
/// behind both the stencil `get()` rewrite and fusion-stage renaming.
fn visit_block_exprs(b: &mut Block, f: &mut dyn FnMut(&mut Expr)) {
    for s in &mut b.stmts {
        visit_stmt_exprs(s, f);
    }
}

fn visit_stmt_exprs(s: &mut Stmt, f: &mut dyn FnMut(&mut Expr)) {
    match s {
        Stmt::Block(b) => visit_block_exprs(b, f),
        Stmt::Decl(VarDecl { declarators, .. }) => {
            for Declarator {
                array_size, init, ..
            } in declarators
            {
                if let Some(e) = array_size {
                    visit_expr(e, f);
                }
                if let Some(e) = init {
                    visit_expr(e, f);
                }
            }
        }
        Stmt::Expr(e) => visit_expr(e, f),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            visit_expr(cond, f);
            visit_stmt_exprs(then_branch, f);
            if let Some(e) = else_branch {
                visit_stmt_exprs(e, f);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            if let Some(init) = init {
                visit_stmt_exprs(init, f);
            }
            if let Some(cond) = cond {
                visit_expr(cond, f);
            }
            if let Some(step) = step {
                visit_expr(step, f);
            }
            visit_stmt_exprs(body, f);
        }
        Stmt::While { cond, body, .. } | Stmt::DoWhile { cond, body, .. } => {
            visit_expr(cond, f);
            visit_stmt_exprs(body, f);
        }
        Stmt::Return { value: Some(e), .. } => visit_expr(e, f),
        Stmt::Return { value: None, .. } | Stmt::Break(_) | Stmt::Continue(_) | Stmt::Empty(_) => {}
    }
}

fn visit_expr(e: &mut Expr, f: &mut dyn FnMut(&mut Expr)) {
    match e {
        Expr::Call { args, .. } => {
            for a in args.iter_mut() {
                visit_expr(a, f);
            }
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => visit_expr(expr, f),
        Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
            visit_expr(lhs, f);
            visit_expr(rhs, f);
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => {
            visit_expr(cond, f);
            visit_expr(then_expr, f);
            visit_expr(else_expr, f);
        }
        Expr::Index { base, index, .. } => {
            visit_expr(base, f);
            visit_expr(index, f);
        }
        Expr::IntLit { .. }
        | Expr::FloatLit { .. }
        | Expr::BoolLit { .. }
        | Expr::CharLit { .. }
        | Expr::Ident { .. } => {}
    }
    f(e);
}

/// Renames every function defined in `unit` by appending `suffix`, and
/// rewrites the call sites that refer to them. Calls to built-ins (or to
/// anything not defined in the unit) are left alone. This lets several
/// user translation units coexist in one fused kernel without name
/// collisions.
pub(crate) fn suffix_functions(unit: &mut ast::TranslationUnit, suffix: &str) {
    let defined: std::collections::HashSet<String> =
        unit.functions.iter().map(|f| f.name.clone()).collect();
    for func in &mut unit.functions {
        func.name = format!("{}{suffix}", func.name);
        visit_block_exprs(&mut func.body, &mut |e| {
            if let Expr::Call { callee, .. } = e {
                if defined.contains(callee.as_str()) {
                    *callee = format!("{callee}{suffix}");
                }
            }
        });
    }
}

/// One elementwise stage of a fused expression: the user's translation
/// unit with every definition renamed by a content-derived suffix, so
/// stages originating from different skeleton instances (or the same
/// source used twice) weld into a single translation unit without
/// collisions — identical sources rename identically and deduplicate.
#[derive(Debug, Clone)]
pub(crate) struct StageSpec {
    /// Renamed, pretty-printed user translation unit.
    pub source: String,
    /// Renamed name of the customizing function.
    pub name: String,
    /// Output scalar type of the stage.
    pub ret: ScalarType,
}

/// Builds the fusion [`StageSpec`] for a validated elementwise customizing
/// function with scalar output type `ret`.
pub(crate) fn stage_spec(f: &UserFunction, ret: ScalarType) -> StageSpec {
    let mut unit = f.unit.clone();
    let suffix = format!("_{:032x}", source_hash("stage", &f.source()));
    suffix_functions(&mut unit, &suffix);
    let name = unit.functions[0].name.clone();
    StageSpec {
        source: pretty::print_unit(&unit),
        name,
        ret,
    }
}

/// Builds the fusion translation unit and renamed entry point for a
/// stencil customizing function (after `get` rewriting). The hash seed
/// differs from elementwise stages so a stencil function and an
/// identically-sourced elementwise function never collide in one unit;
/// calls to `__skelcl_get1` survive unsuffixed (not defined in the unit)
/// and bind to the fused kernel's accessor.
pub(crate) fn stencil_stage(f: &UserFunction) -> (String, String) {
    let mut unit = f.unit.clone();
    let suffix = format!("_{:032x}", source_hash("stencil", &f.source()));
    suffix_functions(&mut unit, &suffix);
    let name = unit.functions[0].name.clone();
    (pretty::print_unit(&unit), name)
}

/// Welds the uniform n-ary elementwise kernel around a customizing
/// function — the single generator behind `Map` (arity 1), `Zip`
/// (arity 2) and any future elementwise pattern:
///
/// ```text
/// <user translation unit>
/// __kernel void <kernel>(__global const I0* skelcl_in0, …,
///                        __global O* skelcl_out, int skelcl_n, <extras>) {
///     int skelcl_i = (int)get_global_id(0);
///     if (skelcl_i < skelcl_n)
///         skelcl_out[skelcl_i] = f(skelcl_in0[skelcl_i], …, <extras>);
/// }
/// ```
pub(crate) fn weld_elementwise(
    kernel: &str,
    user: &UserFunction,
    inputs: &[ScalarType],
    out: ScalarType,
) -> String {
    let extras = user.extra_params(inputs.len());
    let params: String = inputs
        .iter()
        .enumerate()
        .map(|(i, t)| format!("__global const {t}* skelcl_in{i}, "))
        .collect();
    let args = (0..inputs.len())
        .map(|i| format!("skelcl_in{i}[skelcl_i]"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{unit}\n\
         __kernel void {kernel}({params}__global {out}* skelcl_out, int skelcl_n{decls}) {{\n\
         \x20   int skelcl_i = (int)get_global_id(0);\n\
         \x20   if (skelcl_i < skelcl_n) skelcl_out[skelcl_i] = {f}({args}{uses});\n\
         }}\n",
        unit = user.source(),
        f = user.name,
        decls = extra_param_decls(extras, "skelcl_x"),
        uses = extra_param_uses(extras, "skelcl_x"),
    )
}

/// Compiles generated kernel source, classifying failures as SkelCL bugs
/// (the user function already parsed; a failure here means the weld is
/// wrong).
pub(crate) fn compile_generated(name: &str, source: &str) -> Result<skelcl_kernel::Program> {
    skelcl_kernel::compile(name, source).map_err(|e| Error::KernelCompilation {
        source: source.to_string(),
        log: e.log,
    })
}

/// FNV-1a-128 hash of generated kernel source — the program-cache key,
/// also used to derive collision-free fusion-stage suffixes. 128 bits
/// (rather than the original 64) because stage suffixes are a *naming*
/// mechanism: a collision between two distinct stage bodies would silently
/// weld the wrong function into a fused kernel, so the collision
/// probability has to be negligible even across adversarial inputs.
pub(crate) fn source_hash(name: &str, source: &str) -> u128 {
    let mut h: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    for b in name.bytes().chain([0u8]).chain(source.bytes()) {
        h ^= b as u128;
        h = h.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
    }
    h
}

/// [`compile_generated`] through the context's program cache: identical
/// generated source compiles once per context. Cache traffic is visible as
/// the `compile.cache_hit` / `compile.cache_miss` metrics, and an actual
/// compilation is traced as a `compile` span.
pub(crate) fn compile_cached(
    ctx: &crate::context::Context,
    name: &str,
    source: &str,
) -> Result<skelcl_kernel::Program> {
    let profiler = ctx.profiler();
    let hash = source_hash(name, source);
    if let Some(program) = ctx.cached_program(hash) {
        profiler.add(skelcl_profile::metrics::COMPILE_CACHE_HIT, 1);
        return Ok(program);
    }
    profiler.add(skelcl_profile::metrics::COMPILE_CACHE_MISS, 1);
    let _span = profiler.host_span(skelcl_profile::SpanKind::Compile, name);
    let program = compile_generated(name, source)?;
    ctx.store_program(hash, program.clone());
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_map_function() {
        let f = parse_user_function("Map", "float func(float x){ return -x; }").unwrap();
        assert_eq!(f.name, "func");
        assert_eq!(f.params, vec![Type::Scalar(ScalarType::Float)]);
        assert_eq!(f.ret, Type::Scalar(ScalarType::Float));
        assert!(f.extra_params(1).is_empty());
    }

    #[test]
    fn helpers_allowed_after_customizing_function() {
        let f = parse_user_function(
            "Map",
            "float func(float x){ return helper(x) * 2.0f; }
             float helper(float x){ return x + 1.0f; }",
        )
        .unwrap();
        assert_eq!(f.name, "func");
        assert_eq!(f.unit.functions.len(), 2);
    }

    #[test]
    fn rejects_bad_source() {
        let err = parse_user_function("Map", "float func(float x){ return + ; }").unwrap_err();
        assert!(err.to_string().contains("parse error"));
        let err = parse_user_function("Map", "").unwrap_err();
        assert!(err.to_string().contains("no function definition"));
        let err = parse_user_function("Map", "__kernel void k(__global int* p){ }").unwrap_err();
        assert!(err.to_string().contains("must not be `__kernel`"));
    }

    #[test]
    fn signature_validation() {
        let f = parse_user_function("Zip", "float mult(float x, float y){ return x*y; }").unwrap();
        expect_scalar_param("Zip", &f, 0, ScalarType::Float).unwrap();
        expect_scalar_param("Zip", &f, 1, ScalarType::Float).unwrap();
        expect_return("Zip", &f, ScalarType::Float).unwrap();
        assert!(expect_scalar_param("Zip", &f, 0, ScalarType::Int).is_err());
        assert!(expect_scalar_param("Zip", &f, 2, ScalarType::Float).is_err());
        assert!(expect_return("Zip", &f, ScalarType::Char).is_err());
    }

    #[test]
    fn extras_must_be_scalars() {
        let f = parse_user_function(
            "Map",
            "uchar func(int gid, int width, float scale){ return (uchar)(gid + width); }",
        )
        .unwrap();
        expect_scalar_extras("Map", &f, 1).unwrap();
        assert_eq!(f.extra_params(1).len(), 2);
        assert_eq!(
            extra_param_decls(f.extra_params(1), "__x"),
            ", int __x0, float __x1"
        );
        assert_eq!(extra_param_uses(f.extra_params(1), "__x"), ", __x0, __x1");

        let g = parse_user_function(
            "Map",
            "float func(float x, const float* lut){ return lut[0] * x; }",
        )
        .unwrap();
        assert!(expect_scalar_extras("Map", &g, 1).is_err());
    }

    #[test]
    fn c_literals() {
        assert_eq!(c_literal(Value::F32(0.0)), "0.0f");
        assert_eq!(c_literal(Value::F32(-1.5)), "(-1.5f)");
        assert_eq!(c_literal(Value::F64(2.0)), "2.0");
        assert_eq!(c_literal(Value::I32(-3)), "(-3)");
        assert_eq!(c_literal(Value::U8(200)), "(uchar)(200)");
        assert_eq!(c_literal(Value::U64(1)), "1uL");
        assert_eq!(c_literal(Value::Bool(true)), "true");
    }

    #[test]
    fn rewrites_matrix_get_calls() {
        let mut f = parse_user_function(
            "MapOverlap",
            "float func(const float* m){
                float sum = 0.0f;
                for (int i = -1; i <= 1; ++i)
                    for (int j = -1; j <= 1; ++j)
                        sum += get(m, i, j);
                return sum;
            }",
        )
        .unwrap();
        rewrite_get_calls(&mut f, true).unwrap();
        let src = f.source();
        assert!(src.contains("__skelcl_get2(m, __skelcl_tw, i, j)"), "{src}");
        assert!(src.contains("int __skelcl_tw"), "{src}");
        assert!(!src.contains("get(m"), "{src}");
        assert_eq!(f.params.len(), 2);
    }

    #[test]
    fn rewrites_vector_get_calls() {
        let mut f = parse_user_function(
            "MapOverlap",
            "float func(const float* v){ return get(v, -1) + get(v, 0) + get(v, 1); }",
        )
        .unwrap();
        rewrite_get_calls(&mut f, false).unwrap();
        let src = f.source();
        assert!(src.contains("__skelcl_get1(v, "), "{src}");
        assert_eq!(f.params.len(), 1, "vector variant adds no parameter");
    }

    #[test]
    fn rejects_wrong_get_arity() {
        let mut f = parse_user_function(
            "MapOverlap",
            "float func(const float* m){ return get(m, 1); }",
        )
        .unwrap();
        let err = rewrite_get_calls(&mut f, true).unwrap_err();
        assert!(err.to_string().contains("takes 3 arguments"), "{err}");
    }

    #[test]
    fn suffix_functions_renames_definitions_and_calls() {
        let f = parse_user_function(
            "Map",
            "float func(float x){ return helper(x) + sqrt(x); }
             float helper(float x){ return x + 1.0f; }",
        )
        .unwrap();
        let mut unit = f.unit.clone();
        suffix_functions(&mut unit, "_abc");
        let src = pretty::print_unit(&unit);
        assert!(src.contains("func_abc"), "{src}");
        assert!(src.contains("helper_abc(x)"), "{src}");
        // Built-ins keep their names.
        assert!(src.contains("sqrt(x)"), "{src}");
        assert!(!src.contains("helper(x)"), "{src}");
    }

    #[test]
    fn stage_specs_dedupe_by_content() {
        let f = parse_user_function("Map", "float neg(float x){ return -x; }").unwrap();
        let g = parse_user_function("Map", "float neg(float x){ return -x; }").unwrap();
        let h = parse_user_function("Map", "float neg(float x){ return -x - 0.0f; }").unwrap();
        let sf = stage_spec(&f, ScalarType::Float);
        let sg = stage_spec(&g, ScalarType::Float);
        let sh = stage_spec(&h, ScalarType::Float);
        // Identical sources rename identically (so they deduplicate)...
        assert_eq!(sf.source, sg.source);
        assert_eq!(sf.name, sg.name);
        // ...while different bodies with the same function name diverge.
        assert_ne!(sf.name, sh.name);
        // The welded unit must still compile under the new names.
        let probe = format!(
            "{}\n{}\n__kernel void probe(__global float* o){{ o[0] = {}({}(1.0f)); }}",
            sf.source, sh.source, sf.name, sh.name
        );
        compile_generated("stage_probe.cl", &probe).unwrap();
    }

    #[test]
    fn stage_suffix_is_full_width_and_collision_resistant() {
        // Regression test for the content-hash widening: the suffix must
        // carry the full 128-bit digest (32 hex chars), the hash must be
        // domain-separated (name vs source boundary matters), and
        // near-identical stage bodies must never share a suffix.
        let f = parse_user_function("Map", "float f(float x){ return x + 1.0f; }").unwrap();
        let s = stage_spec(&f, ScalarType::Float);
        let suffix = s.name.strip_prefix("f_").unwrap();
        assert_eq!(suffix.len(), 32, "suffix carries the full digest: {s:?}");
        assert!(suffix.chars().all(|c| c.is_ascii_hexdigit()));

        // Domain separation: moving a byte across the name/source boundary
        // must change the digest.
        assert_ne!(source_hash("a", "bc"), source_hash("ab", "c"));
        assert_ne!(source_hash("stage", "x"), source_hash("stagex", ""));

        // Single-character body variations all hash apart.
        let mut seen = std::collections::HashSet::new();
        for op in ["+", "-", "*", "/"] {
            let src = format!("float f(float x){{ return x {op} 2.0f; }}");
            let g = parse_user_function("Map", &src).unwrap();
            let spec = stage_spec(&g, ScalarType::Float);
            assert!(seen.insert(spec.name.clone()), "suffix collision: {op}");
        }
    }

    #[test]
    fn welds_nary_elementwise_kernel() {
        let f = parse_user_function(
            "Zip",
            "float madd(float a, float b, float s){ return a*b+s; }",
        )
        .unwrap();
        let src = weld_elementwise(
            "skelcl_zip",
            &f,
            &[ScalarType::Float, ScalarType::Float],
            ScalarType::Float,
        );
        assert!(
            src.contains("madd(skelcl_in0[skelcl_i], skelcl_in1[skelcl_i], skelcl_x0)"),
            "{src}"
        );
        compile_generated("weld_probe.cl", &src).unwrap();
    }

    #[test]
    fn compile_cache_hits_on_identical_source() {
        use skelcl_profile::{metrics, Profiler};
        let ctx = crate::Context::init_with_profiler(
            vgpu::Platform::single(vgpu::DeviceSpec::test_tiny()),
            crate::DeviceSelection::All,
            Profiler::enabled(),
        );
        let src = "__kernel void k(__global int* p){ p[0] = 7; }";
        compile_cached(&ctx, "probe.cl", src).unwrap();
        compile_cached(&ctx, "probe.cl", src).unwrap();
        compile_cached(
            &ctx,
            "probe.cl",
            "__kernel void k(__global int* p){ p[0] = 8; }",
        )
        .unwrap();
        let prof = ctx.profiler();
        assert_eq!(prof.counter(metrics::COMPILE_CACHE_HIT), 1);
        assert_eq!(prof.counter(metrics::COMPILE_CACHE_MISS), 2);
    }

    #[test]
    fn rewritten_sobel_compiles_in_context() {
        // The paper's Listing 1.5 user function, rewritten and welded into
        // a minimal harness, must compile.
        let mut f = parse_user_function(
            "MapOverlap",
            "char func(const char* img){
                short h = -1*get(img,-1,-1) +1*get(img,+1,-1)
                          -2*get(img,-1, 0) +2*get(img,+1, 0)
                          -1*get(img,-1,+1) +1*get(img,+1,+1);
                short v = -1*get(img,-1,-1) -2*get(img,0,-1) -1*get(img,+1,-1)
                          +1*get(img,-1,+1) +2*get(img,0,+1) +1*get(img,+1,+1);
                return (char)sqrt((float)(h*h + v*v));
            }",
        )
        .unwrap();
        rewrite_get_calls(&mut f, true).unwrap();
        let source = format!(
            "{}\nchar __skelcl_get2(const char* c, int tw, int dx, int dy){{\n\
                 if (dx < -1 || dx > 1 || dy < -1 || dy > 1) __skelcl_trap(100);\n\
                 return c[dy * tw + dx];\n\
             }}\n\
             __kernel void probe(__global const char* t, __global char* o, int tw){{\n\
                 o[0] = func(&t[tw + 1], tw);\n\
             }}",
            f.source()
        );
        compile_generated("sobel_probe.cl", &source).unwrap();
    }
}
