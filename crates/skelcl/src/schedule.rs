//! Adaptive, measurement-driven chunk scheduling.
//!
//! The paper's block distribution splits containers *evenly* (§3.2,
//! Fig. 1c), which balances devices only when every unit costs the same.
//! Real workloads (Mandelbrot rows) and real machines (mixed GPU
//! generations) break that assumption. This module keeps a per-device
//! throughput model — an exponentially-weighted moving average of
//! **units per busy nanosecond**, fed from every skeleton launch's kernel
//! events — and turns it into per-device weights for
//! [`crate::distribution::plan_chunks_weighted`].
//!
//! The policy is chosen per context: `SKELCL_SCHEDULE=even` (default)
//! keeps the paper's even split, `SKELCL_SCHEDULE=adaptive` enables the
//! feedback loop. An adaptive scheduler with a cold model plans exactly
//! like the even one, so the first call on fresh data *is* the calibration
//! pass; [`Scheduler::calibrate`] makes that explicit when a workload wants
//! to measure under a known-even split before going adaptive.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::distribution::{plan_chunks, plan_chunks_weighted, ChunkPlan, Distribution};

/// How chunk boundaries are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// The paper's even block split (the default).
    Even,
    /// Weighted split proportional to each device's measured throughput.
    Adaptive,
}

impl std::fmt::Display for SchedulePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulePolicy::Even => f.write_str("even"),
            SchedulePolicy::Adaptive => f.write_str("adaptive"),
        }
    }
}

const POLICY_EVEN: u8 = 0;
const POLICY_ADAPTIVE: u8 = 1;

/// Default EWMA smoothing factor: the newest measurement contributes half.
pub const DEFAULT_EWMA_ALPHA: f64 = 0.5;

#[derive(Debug, Clone, Copy, Default)]
struct DeviceModel {
    /// EWMA of units processed per busy nanosecond.
    units_per_ns: f64,
    samples: u64,
}

/// The per-context scheduler: policy switch plus throughput model.
///
/// Shared by every container and skeleton of a [`crate::Context`]; all
/// methods are cheap and thread-safe. Cloning is shallow — every clone
/// feeds the same model, which lets queue-worker completion callbacks own
/// a handle without keeping the whole context alive.
#[derive(Debug, Clone)]
pub struct Scheduler {
    state: Arc<SchedulerState>,
}

#[derive(Debug)]
struct SchedulerState {
    policy: AtomicU8,
    alpha: f64,
    models: Mutex<Vec<DeviceModel>>,
}

impl Scheduler {
    /// Creates a scheduler with the given policy and EWMA factor `alpha`
    /// (clamped to `(0, 1]`; the newest sample's share).
    pub fn new(policy: SchedulePolicy, alpha: f64) -> Self {
        let alpha = if alpha.is_finite() {
            alpha.clamp(f64::MIN_POSITIVE, 1.0)
        } else {
            DEFAULT_EWMA_ALPHA
        };
        Scheduler {
            state: Arc::new(SchedulerState {
                policy: AtomicU8::new(match policy {
                    SchedulePolicy::Even => POLICY_EVEN,
                    SchedulePolicy::Adaptive => POLICY_ADAPTIVE,
                }),
                alpha,
                models: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Reads `SKELCL_SCHEDULE` (`even` — the default — or `adaptive`) and
    /// `SKELCL_SCHEDULE_ALPHA` (EWMA factor, default 0.5).
    pub fn from_env() -> Self {
        let policy = match std::env::var("SKELCL_SCHEDULE").as_deref() {
            Ok("adaptive") | Ok("1") => SchedulePolicy::Adaptive,
            _ => SchedulePolicy::Even,
        };
        let alpha = std::env::var("SKELCL_SCHEDULE_ALPHA")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(DEFAULT_EWMA_ALPHA);
        Scheduler::new(policy, alpha)
    }

    /// The current policy.
    pub fn policy(&self) -> SchedulePolicy {
        if self.state.policy.load(Ordering::Relaxed) == POLICY_ADAPTIVE {
            SchedulePolicy::Adaptive
        } else {
            SchedulePolicy::Even
        }
    }

    /// Switches the policy at runtime (e.g. after a calibration phase).
    pub fn set_policy(&self, policy: SchedulePolicy) {
        self.state.policy.store(
            match policy {
                SchedulePolicy::Even => POLICY_EVEN,
                SchedulePolicy::Adaptive => POLICY_ADAPTIVE,
            },
            Ordering::Relaxed,
        );
    }

    /// The EWMA smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.state.alpha
    }

    /// Feeds one measurement into the model: `device` processed `units`
    /// distribution units in `busy_ns` of simulated kernel time. The first
    /// sample seeds the EWMA directly, so one calibration frame fully
    /// determines the next plan.
    pub fn observe(&self, device: usize, units: usize, busy_ns: u64) {
        if units == 0 || busy_ns == 0 {
            return;
        }
        let tput = units as f64 / busy_ns as f64;
        let alpha = self.state.alpha;
        let mut models = self.state.models.lock();
        if models.len() <= device {
            models.resize(device + 1, DeviceModel::default());
        }
        let m = &mut models[device];
        if m.samples == 0 {
            m.units_per_ns = tput;
        } else {
            m.units_per_ns = alpha * tput + (1.0 - alpha) * m.units_per_ns;
        }
        m.samples += 1;
    }

    /// Forgets all measurements (the model goes cold; adaptive planning
    /// degrades to the even split until re-fed).
    pub fn reset(&self) {
        self.state.models.lock().clear();
    }

    /// Per-device partition weights for `devices` devices, or `None` when
    /// the even split should be used: policy is [`SchedulePolicy::Even`],
    /// or any device lacks a measurement (a partially-cold model must not
    /// starve the unmeasured devices).
    pub fn weights(&self, devices: usize) -> Option<Vec<f64>> {
        if self.policy() != SchedulePolicy::Adaptive {
            return None;
        }
        let models = self.state.models.lock();
        if models.len() < devices {
            return None;
        }
        if models[..devices]
            .iter()
            .any(|m| m.samples == 0 || !m.units_per_ns.is_finite() || m.units_per_ns <= 0.0)
        {
            return None;
        }
        let w: Vec<f64> = models[..devices].iter().map(|m| m.units_per_ns).collect();
        let sum: f64 = w.iter().sum();
        Some(w.into_iter().map(|v| v / sum).collect())
    }

    /// The measured EWMA throughput of `device` in units per busy
    /// nanosecond, or `None` while the device's model is cold (no valid
    /// sample yet). Unlike [`Scheduler::weights`] this ignores the policy:
    /// the plan cost model consumes raw observations even when chunk
    /// planning stays on the even split.
    pub fn throughput(&self, device: usize) -> Option<f64> {
        let models = self.state.models.lock();
        let m = models.get(device)?;
        if m.samples == 0 || !m.units_per_ns.is_finite() || m.units_per_ns <= 0.0 {
            None
        } else {
            Some(m.units_per_ns)
        }
    }

    /// Plans `n` units across `devices` under `dist`: the weighted
    /// partition when the policy is adaptive and the model is warm, the
    /// paper's even partition otherwise. `Single` and `Copy` are
    /// weight-independent either way.
    pub fn plan(&self, n: usize, devices: usize, dist: Distribution) -> Vec<ChunkPlan> {
        match (dist, self.weights(devices)) {
            (Distribution::Block | Distribution::Overlap { .. }, Some(w)) => {
                plan_chunks_weighted(n, dist, &w)
            }
            _ => plan_chunks(n, devices, dist),
        }
    }

    /// Runs `frame` as an explicit calibration pass: the model is cleared
    /// and the policy pinned to even for the duration, so the measurements
    /// come from a known uniform split; afterwards the previous policy is
    /// restored and the observations made during `frame` drive the next
    /// plans.
    pub fn calibrate<R>(&self, frame: impl FnOnce() -> R) -> R {
        let prev = self.policy();
        self.reset();
        self.set_policy(SchedulePolicy::Even);
        let out = frame();
        self.set_policy(prev);
        out
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new(SchedulePolicy::Even, DEFAULT_EWMA_ALPHA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_policy_never_weights() {
        let s = Scheduler::new(SchedulePolicy::Even, 0.5);
        s.observe(0, 100, 50);
        s.observe(1, 100, 200);
        assert_eq!(s.weights(2), None);
        let plans = s.plan(100, 2, Distribution::Block);
        assert_eq!(plans[0].core, 0..50);
    }

    #[test]
    fn adaptive_needs_every_device_measured() {
        let s = Scheduler::new(SchedulePolicy::Adaptive, 0.5);
        s.observe(0, 100, 50);
        assert_eq!(s.weights(2), None, "device 1 is cold");
        s.observe(1, 100, 200);
        let w = s.weights(2).unwrap();
        // Device 0 is 4x faster: 2 units/ns vs 0.5 units/ns.
        assert!((w[0] - 0.8).abs() < 1e-9);
        assert!((w[1] - 0.2).abs() < 1e-9);
        let plans = s.plan(100, 2, Distribution::Block);
        assert_eq!(plans[0].core, 0..80);
        assert_eq!(plans[1].core, 80..100);
    }

    #[test]
    fn ewma_decays_towards_new_measurements() {
        let s = Scheduler::new(SchedulePolicy::Adaptive, 0.5);
        s.observe(0, 100, 100); // seed: 1.0 units/ns
        s.observe(0, 300, 100); // new: 3.0 → EWMA 2.0
        s.observe(1, 200, 100); // 2.0
        let w = s.weights(2).unwrap();
        assert!((w[0] - 0.5).abs() < 1e-9);
        assert!((w[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_measurements_are_ignored() {
        let s = Scheduler::new(SchedulePolicy::Adaptive, 0.5);
        s.observe(0, 0, 100);
        s.observe(0, 100, 0);
        s.observe(1, 10, 10);
        assert_eq!(s.weights(2), None);
    }

    #[test]
    fn calibrate_clears_and_restores() {
        let s = Scheduler::new(SchedulePolicy::Adaptive, 0.5);
        s.observe(0, 999, 1);
        s.observe(1, 1, 999);
        let policy_inside = s.calibrate(|| {
            s.observe(0, 10, 10);
            s.observe(1, 10, 10);
            s.policy()
        });
        assert_eq!(policy_inside, SchedulePolicy::Even);
        assert_eq!(s.policy(), SchedulePolicy::Adaptive);
        // Only the in-frame observations survive.
        let w = s.weights(2).unwrap();
        assert!((w[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn throughput_ignores_policy_but_respects_cold_models() {
        let s = Scheduler::new(SchedulePolicy::Even, 0.5);
        assert_eq!(s.throughput(0), None);
        s.observe(0, 100, 50);
        assert_eq!(s.throughput(0), Some(2.0), "even policy still reports");
        assert_eq!(s.throughput(1), None, "unmeasured device stays cold");
    }

    #[test]
    fn reset_goes_cold() {
        let s = Scheduler::new(SchedulePolicy::Adaptive, 0.5);
        s.observe(0, 10, 10);
        s.observe(1, 10, 10);
        assert!(s.weights(2).is_some());
        s.reset();
        assert_eq!(s.weights(2), None);
    }

    #[test]
    fn single_and_copy_ignore_weights() {
        let s = Scheduler::new(SchedulePolicy::Adaptive, 0.5);
        s.observe(0, 100, 10);
        s.observe(1, 10, 100);
        assert_eq!(s.plan(10, 2, Distribution::Copy).len(), 2);
        assert_eq!(s.plan(10, 2, Distribution::Single(1))[0].stored, 0..10);
    }
}
