//! The staged skeleton execution pipeline.
//!
//! Every skeleton runs the same sequence of stages (paper §3.3: a skeleton
//! is "a higher-order function customized by a user function welded into a
//! complete kernel"):
//!
//! 1. open the profiler span and bump the `skeleton.calls` counter
//!    ([`SkeletonCore::begin`]);
//! 2. validate the extra scalar arguments ([`SkeletonCore::check_extras`]);
//! 3. resolve the input distribution ([`elementwise_distribution`],
//!    [`reduction_distribution`], [`stencil_distributions`]);
//! 4. materialise the inputs and allocate the output
//!    ([`ElementwiseInput::input_chunks`], `alloc_device`);
//! 5. build one [`DeviceLaunch`] per device chunk
//!    ([`elementwise_launches`] for the uniform elementwise case);
//! 6. execute the [`crate::engine::LaunchPlan`] and record the events into
//!    the skeleton's [`EventLog`] ([`SkeletonCore::run`]).
//!
//! `Map`, `Zip` and fused expression chains share stages 3–6 verbatim via
//! [`elementwise_vector`] / [`elementwise_matrix`]; `Reduce`, `Scan`,
//! `MapOverlap` and `Allpairs` plug their own stage-5 plan construction
//! into the same skeleton core.

use vgpu::{Event, KernelArg, NdRange};

use crate::container::data::DeviceChunk;
use crate::container::{Matrix, Vector};
use crate::context::Context;
use crate::distribution::Distribution;
use crate::engine::LaunchPlan;
use crate::error::Result;
use crate::skeleton::EventLog;
use crate::types::KernelScalar;
use skelcl_kernel::types::{ScalarType, Type};
use skelcl_kernel::value::Value;

/// Common behaviour of every skeleton: identification, the owning context,
/// profiling of the most recent call and access to the generated kernel.
///
/// All skeletons ([`crate::Map`], [`crate::Zip`], [`crate::Reduce`],
/// [`crate::Scan`], [`crate::MapOverlap`], [`crate::MapOverlapVec`],
/// [`crate::Allpairs`]) implement this trait; it is the uniform surface of
/// the staged execution pipeline they all run on.
pub trait Skeleton {
    /// The skeleton's name as used in profiler spans (e.g. `"Map"`).
    fn name(&self) -> &'static str;

    /// The context the skeleton was created on.
    fn context(&self) -> &Context;

    /// Profiling of the most recent call.
    fn events(&self) -> &EventLog;

    /// The generated kernel program's disassembly (debugging aid).
    fn kernel_disassembly(&self) -> String;
}

/// The shared state of every skeleton: context, welded program, extra
/// parameter types and the per-skeleton event log. Owns pipeline stages 1,
/// 2 and 6; the distribution/launch stages are free functions below so the
/// fused expression layer can reuse them without a skeleton instance.
#[derive(Debug)]
pub(crate) struct SkeletonCore {
    /// The owning context.
    pub ctx: Context,
    /// The compiled program containing the welded kernels.
    pub program: skelcl_kernel::Program,
    /// Skeleton name for spans and error messages.
    pub name: &'static str,
    /// Extra scalar parameter types of the customizing function.
    pub extras: Vec<Type>,
    /// Events of the most recent call.
    pub events: EventLog,
}

impl SkeletonCore {
    /// Creates the core with an empty event log.
    pub fn new(
        ctx: &Context,
        name: &'static str,
        program: skelcl_kernel::Program,
        extras: Vec<Type>,
    ) -> Self {
        SkeletonCore {
            ctx: ctx.clone(),
            program,
            name,
            extras,
            events: EventLog::default(),
        }
    }

    /// Stage 1: opens the host-lane span for one invocation (`op` is the
    /// full label, e.g. `"Map.call"`) and bumps the `skeleton.calls`
    /// counter. Inert when profiling is disabled.
    pub fn begin(&self, op: &'static str) -> skelcl_profile::SpanGuard {
        skeleton_span(&self.ctx, op)
    }

    /// Stage 2: validates the number of extra argument values supplied at
    /// call time.
    pub fn check_extras(&self, supplied: &[Value]) -> Result<()> {
        crate::codegen::check_extra_args(self.name, &self.extras, supplied)
    }

    /// Stage 6 for single-kernel skeletons: executes `kernel` over the
    /// launches and records the events.
    pub fn run(&self, kernel: &str, launches: Vec<DeviceLaunch>) -> Result<()> {
        let events = run_launches(&self.ctx, &self.program, kernel, launches)?;
        self.events.record(events);
        Ok(())
    }
}

/// One device's share of a skeleton execution.
#[derive(Debug)]
pub(crate) struct DeviceLaunch {
    /// Device index within the context.
    pub device: usize,
    /// Kernel arguments.
    pub args: Vec<KernelArg>,
    /// Launch geometry.
    pub range: NdRange,
    /// Distribution units (elements or rows) this launch owns — the
    /// scheduler's throughput model divides them by the measured kernel
    /// time.
    pub units: usize,
}

/// Runs `kernel` on every listed device concurrently through the plan
/// engine — one independent plan node per device, executed by the
/// devices' asynchronous queues — and waits for completion, returning the
/// events in device order. Profiler spans and scheduler measurements are
/// recorded by the engine's completion callbacks.
pub(crate) fn run_launches(
    ctx: &Context,
    program: &skelcl_kernel::Program,
    kernel: &str,
    launches: Vec<DeviceLaunch>,
) -> Result<Vec<Event>> {
    let mut plan = LaunchPlan::new();
    for l in launches {
        plan.kernel(l.device, program, kernel, l.args, l.range, l.units, &[]);
    }
    let run = plan.execute(ctx)?;
    run.wait()?;
    publish_pool_gauges(ctx);
    Ok(run.into_events())
}

/// Publishes the fast-path worker pools' execution telemetry — groups
/// executed, thread count, and the steal-cursor balance (min/max groups a
/// worker ran in the most recent pooled launch) — as per-device gauges.
/// Inert when profiling is disabled.
pub(crate) fn publish_pool_gauges(ctx: &Context) {
    let profiler = ctx.profiler();
    if !profiler.is_enabled() {
        return;
    }
    use skelcl_profile::metrics as m;
    for d in 0..ctx.device_count() {
        let stats = ctx.platform().device(d).exec_stats();
        if stats.pool_groups_executed == 0 {
            continue;
        }
        profiler.set_device_gauge(m::POOL_GROUPS, d, stats.pool_groups_executed as f64);
        profiler.set_device_gauge(m::POOL_THREADS, d, stats.pool_threads as f64);
        profiler.set_device_gauge(m::POOL_STEAL_BALANCE, d, stats.steal_balance());
    }
}

/// Compact launch-geometry label for kernel spans, e.g. `1024/256`,
/// `4096x3072/16x16` or `64x64x64/8x8x4` (global/local per dimension).
pub(crate) fn nd_range_label(range: &NdRange) -> String {
    match range.dims {
        0 | 1 => format!("{}/{}", range.global[0], range.local[0]),
        2 => format!(
            "{}x{}/{}x{}",
            range.global[0], range.global[1], range.local[0], range.local[1]
        ),
        _ => format!(
            "{}x{}x{}/{}x{}x{}",
            range.global[0],
            range.global[1],
            range.global[2],
            range.local[0],
            range.local[1],
            range.local[2]
        ),
    }
}

/// Opens the host-lane span for one skeleton invocation and bumps the
/// `skeleton.calls` counter. Inert when profiling is disabled.
pub(crate) fn skeleton_span(ctx: &Context, name: &'static str) -> skelcl_profile::SpanGuard {
    let profiler = ctx.profiler();
    profiler.add(skelcl_profile::metrics::SKELETON_CALLS, 1);
    profiler.host_span(skelcl_profile::SpanKind::Skeleton, name)
}

/// Stage 3 for elementwise skeletons: no halo is needed, so an overlap
/// request degrades to block.
pub(crate) fn elementwise_distribution(requested: Distribution) -> Distribution {
    match requested {
        Distribution::Overlap { .. } => Distribution::Block,
        other => other,
    }
}

/// Stage 3 for reductions and scans: copy degrades to a single device
/// (combining the same copy on every GPU would be redundant work) and
/// overlap degrades to block (the halo would double-count elements).
pub(crate) fn reduction_distribution(requested: Distribution) -> Distribution {
    match requested {
        Distribution::Copy => Distribution::Single(0),
        Distribution::Overlap { .. } => Distribution::Block,
        other => other,
    }
}

/// Stage 3 for stencils of range `d`: block-style inputs need an overlap
/// halo of at least `d`; outputs are written core-only.
pub(crate) fn stencil_distributions(
    requested: Distribution,
    d: usize,
) -> (Distribution, Distribution) {
    match requested {
        Distribution::Single(dev) => (Distribution::Single(dev), Distribution::Single(dev)),
        Distribution::Copy => (Distribution::Copy, Distribution::Copy),
        Distribution::Block => (Distribution::Overlap { size: d }, Distribution::Block),
        Distribution::Overlap { size } => (
            Distribution::Overlap { size: size.max(d) },
            Distribution::Block,
        ),
    }
}

/// A container usable as an elementwise-pipeline input: enough to resolve
/// a distribution and materialise device chunks without knowing the
/// element type. Implemented by [`Vector`] and [`Matrix`]; the fused
/// expression layer stores its sources behind this trait.
pub(crate) trait ElementwiseInput: std::fmt::Debug + Send + Sync {
    /// The owning context.
    fn input_ctx(&self) -> &Context;
    /// Total element count.
    fn input_len(&self) -> usize;
    /// Element scalar type.
    fn input_scalar(&self) -> ScalarType;
    /// The distribution the pipeline should use, given `default`.
    fn input_distribution(&self, default: Distribution) -> Distribution;
    /// Materialises the container under `dist` and returns its chunks.
    fn input_chunks(&self, dist: Distribution) -> Result<Vec<DeviceChunk>>;
    /// Stable identity of the backing storage (fusion source dedup).
    fn input_id(&self) -> usize;
    /// Marks device buffers as freshly written (plan lowering writes to
    /// them behind the container's back).
    fn input_mark_device_written(&self);
    /// Reads unit range `units` as raw bytes from the freshest copy,
    /// staging only intersecting device chunks when the host copy is
    /// stale (the streaming executor's partial-range source reads).
    fn input_host_units(&self, units: std::ops::Range<usize>) -> Result<Vec<u8>>;
    /// Clones the container behind the trait (plan nodes own their leaves).
    fn input_boxed(&self) -> Box<dyn ElementwiseInput>;
    /// Downcast hook so a root-level staged intermediate can be returned
    /// as a typed container without a device round-trip.
    fn input_any(&self) -> &dyn std::any::Any;
}

/// Stage 5 for uniform elementwise kernels: one launch per output chunk
/// with arguments `in0, …, ink, out, n, extras…` over a default linear
/// range. All chunk lists must be aligned (same distribution, so the
/// per-device core ranges agree).
pub(crate) fn elementwise_launches(
    inputs: &[Vec<DeviceChunk>],
    outputs: &[DeviceChunk],
    unit_elems: usize,
    extra: &[Value],
) -> Vec<DeviceLaunch> {
    outputs
        .iter()
        .enumerate()
        .map(|(j, oc)| {
            let n = oc.plan.core_len() * unit_elems;
            let mut args: Vec<KernelArg> = inputs
                .iter()
                .map(|chunks| {
                    debug_assert_eq!(chunks[j].plan.core, oc.plan.core);
                    KernelArg::Buffer(chunks[j].buffer.clone())
                })
                .collect();
            args.push(KernelArg::Buffer(oc.buffer.clone()));
            args.push(KernelArg::Scalar(Value::I32(n as i32)));
            args.extend(extra.iter().map(|v| KernelArg::Scalar(*v)));
            DeviceLaunch {
                device: oc.plan.device,
                args,
                range: NdRange::linear_default(n),
                units: oc.plan.core_len(),
            }
        })
        .collect()
}

/// Stages 3–6 for an elementwise skeleton producing a vector: resolve the
/// distribution from the first input, materialise every input, allocate
/// the output, launch and record.
pub(crate) fn elementwise_vector<O: KernelScalar>(
    core: &SkeletonCore,
    kernel: &str,
    inputs: &[&dyn ElementwiseInput],
    extra: &[Value],
) -> Result<Vector<O>> {
    let dist = elementwise_distribution(inputs[0].input_distribution(Distribution::Block));
    let in_chunks = materialize(inputs, dist)?;
    let (output, out_chunks) = Vector::alloc_device(&core.ctx, inputs[0].input_len(), dist)?;
    core.run(
        kernel,
        elementwise_launches(&in_chunks, &out_chunks, 1, extra),
    )?;
    output.mark_device_written();
    Ok(output)
}

/// Matrix variant of [`elementwise_vector`] (the distribution unit is a
/// row, so each launch covers `core rows × cols` elements).
pub(crate) fn elementwise_matrix<O: KernelScalar>(
    core: &SkeletonCore,
    kernel: &str,
    inputs: &[&dyn ElementwiseInput],
    rows: usize,
    cols: usize,
    extra: &[Value],
) -> Result<Matrix<O>> {
    let dist = elementwise_distribution(inputs[0].input_distribution(Distribution::Block));
    let in_chunks = materialize(inputs, dist)?;
    let (output, out_chunks) = Matrix::alloc_device(&core.ctx, rows, cols, dist)?;
    core.run(
        kernel,
        elementwise_launches(&in_chunks, &out_chunks, cols, extra),
    )?;
    output.mark_device_written();
    Ok(output)
}

/// Stage 4: materialises every input under `dist`.
pub(crate) fn materialize(
    inputs: &[&dyn ElementwiseInput],
    dist: Distribution,
) -> Result<Vec<Vec<DeviceChunk>>> {
    inputs.iter().map(|i| i.input_chunks(dist)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nd_range_labels() {
        assert_eq!(nd_range_label(&NdRange::linear(1000, 256)), "1024/256");
        assert_eq!(
            nd_range_label(&NdRange::grid([100, 60], [16, 16])),
            "112x64/16x16"
        );
        // 3-D ranges must not silently drop the z dimension.
        let r3 = NdRange {
            dims: 3,
            global: [64, 64, 64],
            local: [8, 8, 4],
        };
        assert_eq!(nd_range_label(&r3), "64x64x64/8x8x4");
    }

    #[test]
    fn distribution_rules() {
        // Elementwise: only overlap degrades.
        assert_eq!(
            elementwise_distribution(Distribution::Overlap { size: 3 }),
            Distribution::Block
        );
        assert_eq!(
            elementwise_distribution(Distribution::Copy),
            Distribution::Copy
        );
        // Reduction: copy collapses to a single device, overlap to block.
        assert_eq!(
            reduction_distribution(Distribution::Copy),
            Distribution::Single(0)
        );
        assert_eq!(
            reduction_distribution(Distribution::Overlap { size: 2 }),
            Distribution::Block
        );
        assert_eq!(
            reduction_distribution(Distribution::Block),
            Distribution::Block
        );
        // Stencil: block inputs gain a halo at least as wide as the range.
        assert_eq!(
            stencil_distributions(Distribution::Block, 2),
            (Distribution::Overlap { size: 2 }, Distribution::Block)
        );
        assert_eq!(
            stencil_distributions(Distribution::Overlap { size: 1 }, 4),
            (Distribution::Overlap { size: 4 }, Distribution::Block)
        );
        assert_eq!(
            stencil_distributions(Distribution::Single(1), 4),
            (Distribution::Single(1), Distribution::Single(1))
        );
    }
}
