//! The SkelCL context: the analogue of the paper's `SkelCL::init()`.
//!
//! A [`Context`] owns the platform's devices (all of them, or a selected
//! count) and one command queue per device. Containers and skeletons hold a
//! clone of the context, which is cheap (`Arc` internally).
//!
//! The context also carries the session's observability handles — the
//! [`Profiler`] (enabled via `SKELCL_PROFILE=1` or
//! [`Context::init_with_profiler`]), the [`FlightRecorder`]
//! (`SKELCL_FLIGHT=<capacity>`), and the live [`StatsReporter`]
//! (`SKELCL_STATS_INTERVAL_MS`) — plus a cache of compiled skeleton
//! programs keyed by source hash.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use skelcl_profile::{FlightRecorder, Profiler, StatsReporter};
use vgpu::{CommandQueue, DeviceSpec, LaunchConfig, Platform};

use crate::distribution::{ChunkPlan, Distribution};
use crate::schedule::Scheduler;

/// Which devices of the platform SkelCL should use (the paper's
/// `SkelCL::init()` device-selection knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceSelection {
    /// Every device in the platform.
    All,
    /// The first `n` devices.
    Count(usize),
}

#[derive(Debug)]
struct ContextInner {
    platform: Platform,
    queues: Vec<CommandQueue>,
    launch_config: LaunchConfig,
    profiler: Profiler,
    flight: FlightRecorder,
    stats: Mutex<StatsReporter>,
    scheduler: Scheduler,
    /// Compiled skeleton programs, keyed by a 128-bit hash of the
    /// generated source (wide enough that two distinct sources can never
    /// collide in practice).
    program_cache: Mutex<HashMap<u128, skelcl_kernel::Program>>,
}

impl Drop for ContextInner {
    fn drop(&mut self) {
        // Drain every queue first: completion callbacks are what record
        // device spans, so the trace below must not race outstanding work.
        for queue in &self.queues {
            let _ = queue.finish();
        }
        // Stop the live reporter before exporting: its final snapshot line
        // then covers the fully drained session.
        self.stats.lock().stop();
        // `SKELCL_TRACE=<path>` dumps the Chrome trace of a profiled
        // session when it ends, so any example can produce a trace with no
        // code changes.
        if let Some(trace) = self.profiler.chrome_trace_json() {
            if let Ok(path) = std::env::var("SKELCL_TRACE") {
                if !path.is_empty() {
                    if let Err(e) = std::fs::write(&path, trace) {
                        eprintln!("skelcl: failed to write trace to {path}: {e}");
                    }
                }
            }
        }
    }
}

/// A SkelCL session: selected devices plus their queues.
#[derive(Debug, Clone)]
pub struct Context {
    inner: Arc<ContextInner>,
}

impl Context {
    /// Initialises SkelCL on `platform` with the given device selection —
    /// the analogue of `SkelCL::init()`.
    ///
    /// # Panics
    ///
    /// Panics if the selection is `Count(0)` or exceeds the platform.
    pub fn init(platform: Platform, selection: DeviceSelection) -> Self {
        Context::init_with_profiler(platform, selection, Profiler::from_env())
    }

    /// [`Context::init`] with an explicit profiler (instead of the
    /// `SKELCL_PROFILE` environment default). The flight recorder still
    /// comes from `SKELCL_FLIGHT`.
    ///
    /// # Panics
    ///
    /// As for [`Context::init`].
    pub fn init_with_profiler(
        platform: Platform,
        selection: DeviceSelection,
        profiler: Profiler,
    ) -> Self {
        Context::init_with_observability(platform, selection, profiler, FlightRecorder::from_env())
    }

    /// [`Context::init`] with explicit observability handles — profiler
    /// *and* flight recorder — bypassing the `SKELCL_PROFILE` /
    /// `SKELCL_FLIGHT` environment defaults (tests inject handles here
    /// without touching process-global state). Queue telemetry observers
    /// are installed on every selected device queue, and the live stats
    /// reporter starts if `SKELCL_STATS_INTERVAL_MS` asks for one.
    ///
    /// # Panics
    ///
    /// As for [`Context::init`].
    pub fn init_with_observability(
        platform: Platform,
        selection: DeviceSelection,
        profiler: Profiler,
        flight: FlightRecorder,
    ) -> Self {
        let count = match selection {
            DeviceSelection::All => platform.device_count(),
            DeviceSelection::Count(n) => {
                assert!(
                    n > 0 && n <= platform.device_count(),
                    "device selection {n} out of range (platform has {})",
                    platform.device_count()
                );
                n
            }
        };
        let queues: Vec<CommandQueue> = (0..count).map(|i| platform.queue(i)).collect();
        for queue in &queues {
            flight.attach_queue(&profiler, queue);
        }
        let stats = StatsReporter::from_env(&profiler);
        Context {
            inner: Arc::new(ContextInner {
                platform,
                queues,
                launch_config: LaunchConfig::default(),
                profiler,
                flight,
                stats: Mutex::new(stats),
                scheduler: Scheduler::from_env(),
                program_cache: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// A context on the paper's testbed: all 4 GPUs of a Tesla S1070.
    pub fn tesla_s1070() -> Self {
        Context::init(Platform::tesla_s1070(), DeviceSelection::All)
    }

    /// A single-GPU context (one Tesla T10), for the paper's single-GPU
    /// experiments.
    pub fn single_gpu() -> Self {
        Context::init(
            Platform::single(DeviceSpec::tesla_t10()),
            DeviceSelection::All,
        )
    }

    /// Number of devices in use.
    pub fn device_count(&self) -> usize {
        self.inner.queues.len()
    }

    /// The queue of device `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn queue(&self, index: usize) -> &CommandQueue {
        &self.inner.queues[index]
    }

    /// All queues, ordered by device index.
    pub fn queues(&self) -> &[CommandQueue] {
        &self.inner.queues
    }

    /// The underlying platform.
    pub fn platform(&self) -> &Platform {
        &self.inner.platform
    }

    /// The launch configuration used by skeleton executions.
    pub fn launch_config(&self) -> &LaunchConfig {
        &self.inner.launch_config
    }

    /// Whether two contexts refer to the same session.
    pub fn same_as(&self, other: &Context) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Blocks until every command enqueued on every device queue has
    /// completed (the analogue of calling `clFinish` on each queue).
    /// Skeleton `call`s wait for their own plans, so this is only needed
    /// when synchronising with work driven through the queues directly.
    pub fn finish(&self) -> crate::error::Result<()> {
        for queue in &self.inner.queues {
            queue.finish()?;
        }
        Ok(())
    }

    /// The session's profiler (disabled unless requested — see
    /// [`Context::init_with_profiler`] and `SKELCL_PROFILE`).
    pub fn profiler(&self) -> &Profiler {
        &self.inner.profiler
    }

    /// The session's flight recorder (disabled unless requested — see
    /// [`Context::init_with_observability`] and `SKELCL_FLIGHT`).
    pub fn flight(&self) -> &FlightRecorder {
        &self.inner.flight
    }

    /// Renders the flight recorder's event ring as an aligned table —
    /// the on-demand counterpart of the automatic crash dump on
    /// [`vgpu::Error::DeviceLost`]. `None` when the recorder is disabled.
    pub fn dump_flight(&self) -> Option<String> {
        self.inner.flight.dump()
    }

    /// The session's chunk scheduler (policy from `SKELCL_SCHEDULE`, even
    /// by default; switchable at runtime via
    /// [`crate::schedule::Scheduler::set_policy`]).
    pub fn scheduler(&self) -> &Scheduler {
        &self.inner.scheduler
    }

    /// Plans `units` distribution units across this context's devices: the
    /// scheduler's weighted partition when adaptive and warm, the paper's
    /// even partition otherwise. Publishes the weights as per-device
    /// gauges when profiling.
    pub(crate) fn plan_units(&self, units: usize, dist: Distribution) -> Vec<ChunkPlan> {
        let devices = self.device_count();
        if let (Distribution::Block | Distribution::Overlap { .. }, Some(w)) =
            (dist, self.inner.scheduler.weights(devices))
        {
            if self.inner.profiler.is_enabled() {
                for (d, wi) in w.iter().enumerate() {
                    self.inner.profiler.set_device_gauge(
                        skelcl_profile::metrics::SCHED_WEIGHT,
                        d,
                        *wi,
                    );
                }
            }
            crate::distribution::plan_chunks_weighted(units, dist, &w)
        } else {
            crate::distribution::plan_chunks(units, devices, dist)
        }
    }

    /// Looks up a compiled program by source hash.
    pub(crate) fn cached_program(&self, hash: u128) -> Option<skelcl_kernel::Program> {
        self.inner.program_cache.lock().get(&hash).cloned()
    }

    /// Stores a compiled program under its source hash.
    pub(crate) fn store_program(&self, hash: u128, program: skelcl_kernel::Program) {
        self.inner.program_cache.lock().insert(hash, program);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_selects_devices() {
        let ctx = Context::init(Platform::tesla_s1070(), DeviceSelection::All);
        assert_eq!(ctx.device_count(), 4);
        let ctx = Context::init(Platform::tesla_s1070(), DeviceSelection::Count(2));
        assert_eq!(ctx.device_count(), 2);
        assert_eq!(ctx.queues().len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn init_rejects_oversized_selection() {
        let _ = Context::init(
            Platform::single(DeviceSpec::test_tiny()),
            DeviceSelection::Count(3),
        );
    }

    #[test]
    fn profiler_injectable_and_shared_by_clones() {
        let ctx = Context::init_with_profiler(
            Platform::single(DeviceSpec::test_tiny()),
            DeviceSelection::All,
            Profiler::enabled(),
        );
        assert!(ctx.profiler().is_enabled());
        assert!(ctx.clone().profiler().is_enabled());
    }

    #[test]
    fn program_cache_round_trip() {
        let ctx = Context::single_gpu();
        assert!(ctx.cached_program(42).is_none());
        let program = skelcl_kernel::compile(
            "cache_probe.cl",
            "__kernel void k(__global int* p){ p[0] = 1; }",
        )
        .unwrap();
        ctx.store_program(42, program);
        assert!(ctx.cached_program(42).is_some());
    }

    #[test]
    fn clones_share_the_session() {
        let a = Context::single_gpu();
        let b = a.clone();
        assert!(a.same_as(&b));
        let c = Context::single_gpu();
        assert!(!a.same_as(&c));
    }
}
