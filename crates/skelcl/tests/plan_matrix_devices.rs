//! End-to-end differential test of the `SKELCL_PLAN` matrix across 1–4
//! devices: eight lazy pipelines — exercising each rewrite rule singly
//! and all together — must be bit-identical to the fully staged oracle
//! (`SKELCL_PLAN=0`), which in turn must match the eager skeletons.
//!
//! The environment variable is process-global, so all configurations are
//! exercised from a single `#[test]` in a dedicated binary — nothing else
//! lowers plans concurrently with the variable set.

use skelcl::{
    BoundaryHandling, Context, DeviceSelection, Map, MapOverlapVec, Reduce, Scan, Vector,
};
use vgpu::{DeviceSpec, Platform};

fn ctx(devices: usize) -> Context {
    Context::init(
        Platform::new(devices, DeviceSpec::tesla_t10()),
        DeviceSelection::All,
    )
}

struct Kit {
    v: Vector<f32>,
    sq: Map<f32, f32>,
    neg: Map<f32, f32>,
    sum: Reduce<f32>,
    blur: MapOverlapVec<f32, f32>,
    edge: MapOverlapVec<f32, f32>,
    scan: Scan<f32>,
}

fn kit(devices: usize) -> Kit {
    let ctx = ctx(devices);
    let data: Vec<f32> = (0..1537)
        .map(|i| ((i * 37) % 101) as f32 * 0.25 - 12.0)
        .collect();
    let v = Vector::from_vec(&ctx, data);
    let sq: Map<f32, f32> = Map::new(&ctx, "float sq(float x){ return x * x; }").unwrap();
    let neg: Map<f32, f32> = Map::new(&ctx, "float neg(float x){ return -x; }").unwrap();
    let sum: Reduce<f32> =
        Reduce::new(&ctx, "float sum(float x, float y){ return x + y; }").unwrap();
    let blur: MapOverlapVec<f32, f32> = MapOverlapVec::new(
        &ctx,
        "float blur(const float* v){ return (get(v,-1) + get(v,0) + get(v,1)) / 3.0f; }",
        1,
        BoundaryHandling::Neutral(1.5),
    )
    .unwrap();
    let edge: MapOverlapVec<f32, f32> = MapOverlapVec::new(
        &ctx,
        "float edge(const float* v){ return get(v,2) - get(v,-2); }",
        2,
        BoundaryHandling::Nearest,
    )
    .unwrap();
    let scan: Scan<f32> = Scan::new(&ctx, "float add(float x, float y){ return x + y; }").unwrap();
    Kit {
        v,
        sq,
        neg,
        sum,
        blur,
        edge,
        scan,
    }
}

fn bits(v: Vector<f32>) -> Vec<u32> {
    v.to_vec().unwrap().iter().map(|x| x.to_bits()).collect()
}

/// Runs the nine pipelines under the current `SKELCL_PLAN`, returning bit
/// patterns for comparison.
fn run_all(devices: usize) -> Vec<Vec<u32>> {
    let k = kit(devices);
    vec![
        // 1: elementwise chain (the `chain` rule).
        bits(
            k.neg
                .lazy(&k.sq.lazy(&k.v.expr()).unwrap())
                .unwrap()
                .eval()
                .unwrap(),
        ),
        // 2: map → reduce (the `reduce-weld` rule).
        vec![k
            .sum
            .call_fused(&k.sq.lazy(&k.v.expr()).unwrap())
            .unwrap()
            .value()
            .to_bits()],
        // 3: map → stencil → map (the `stencil` rule with a consumer after).
        bits(
            k.neg
                .lazy(&k.blur.lazy(&k.sq.lazy(&k.v.expr()).unwrap()).unwrap())
                .unwrap()
                .eval()
                .unwrap(),
        ),
        // 4: scan → map (the `scan-offset` rule).
        bits(
            k.sq.lazy(&k.scan.lazy(&k.v).unwrap())
                .unwrap()
                .eval()
                .unwrap(),
        ),
        // 5: map → stencil → reduce (the acceptance pipeline).
        vec![k
            .sum
            .call_fused(&k.blur.lazy(&k.sq.lazy(&k.v.expr()).unwrap()).unwrap())
            .unwrap()
            .value()
            .to_bits()],
        // 6: lazy scan evaluated alone.
        bits(k.scan.lazy(&k.v).unwrap().eval().unwrap()),
        // 7: map → Nearest-boundary stencil with d=2.
        bits(
            k.edge
                .lazy(&k.neg.lazy(&k.v.expr()).unwrap())
                .unwrap()
                .eval()
                .unwrap(),
        ),
        // 8: scan → reduce (offset folded into the weld prologue).
        vec![k
            .sum
            .call_fused(&k.scan.lazy(&k.v).unwrap())
            .unwrap()
            .value()
            .to_bits()],
        // 9: stencil over a bare container (fresh-root return path).
        bits(k.blur.lazy(&k.v.expr()).unwrap().eval().unwrap()),
    ]
}

/// Eager (plan-free) references for the pipelines that have a direct
/// eager equivalent, anchoring the staged oracle itself.
fn eager_anchors(devices: usize) -> Vec<Vec<u32>> {
    let k = kit(devices);
    vec![
        // chain
        bits(k.neg.call(&k.sq.call(&k.v).unwrap()).unwrap()),
        // map → reduce
        vec![k
            .sum
            .call(&k.sq.call(&k.v).unwrap())
            .unwrap()
            .value()
            .to_bits()],
        // scan
        bits(k.scan.call(&k.v).unwrap()),
        // stencil
        bits(k.blur.call(&k.v).unwrap()),
    ]
}

#[test]
fn plan_matrix_is_bit_identical_across_devices() {
    let matrix = [
        "1",
        "chain",
        "reduce-weld",
        "stencil",
        "scan-offset",
        "chain,reduce-weld,stencil,scan-offset",
    ];
    for devices in 1..=4 {
        std::env::set_var("SKELCL_PLAN", "0");
        let oracle = run_all(devices);

        // The staged oracle must match the eager skeletons where an eager
        // equivalent exists (pipelines 1, 2, 6, 9).
        let anchors = eager_anchors(devices);
        assert_eq!(
            oracle[0], anchors[0],
            "staged chain vs eager, {devices} device(s)"
        );
        assert_eq!(
            oracle[1], anchors[1],
            "staged reduce vs eager, {devices} device(s)"
        );
        assert_eq!(
            oracle[5], anchors[2],
            "staged scan vs eager, {devices} device(s)"
        );
        assert_eq!(
            oracle[8], anchors[3],
            "staged stencil vs eager, {devices} device(s)"
        );

        for spec in matrix {
            std::env::set_var("SKELCL_PLAN", spec);
            let got = run_all(devices);
            for (i, (g, o)) in got.iter().zip(&oracle).enumerate() {
                assert_eq!(
                    g,
                    o,
                    "SKELCL_PLAN={spec} pipeline {} on {devices} device(s) diverged from oracle",
                    i + 1
                );
            }
        }
    }
    std::env::remove_var("SKELCL_PLAN");
}
