//! End-to-end test of the observability layer: a Reduce on two virtual
//! devices, cross-checked against the Chrome trace export and the
//! skeleton's own `EventLog`.

use skelcl::profile::json::Json;
use skelcl::profile::{Lane, SpanKind};
use skelcl::{Context, DeviceSelection, Profiler, Reduce, Vector};
use vgpu::{event, CommandKind, DeviceSpec, Platform};

fn two_gpu_profiled() -> Context {
    Context::init_with_profiler(
        Platform::new(2, DeviceSpec::tesla_t10()),
        DeviceSelection::All,
        Profiler::enabled(),
    )
}

#[test]
fn reduce_trace_round_trips_and_matches_event_log() {
    let ctx = two_gpu_profiled();
    let sum: Reduce<i32> = Reduce::new(&ctx, "int sum(int x, int y){ return x + y; }").unwrap();
    let input = Vector::from_fn(&ctx, 10_000, |i| i as i32);
    let result = sum.call(&input).unwrap();
    assert_eq!(result.value(), (0..10_000).sum::<i32>());

    // 1. The Chrome trace parses and has the expected envelope.
    let trace_text = ctx
        .profiler()
        .chrome_trace_json()
        .expect("profiler enabled");
    let trace = Json::parse(&trace_text).expect("chrome trace is valid JSON");
    let events = trace
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // 2. Per-lane "X" timestamps are monotone: each device is an in-order
    //    queue, and host spans are recorded at creation order per lane.
    let mut last_ts: std::collections::HashMap<(u64, u64), f64> = std::collections::HashMap::new();
    let mut complete_events = 0;
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("event phase");
        if ph != "X" {
            continue;
        }
        complete_events += 1;
        let pid = e.get("pid").and_then(Json::as_f64).unwrap() as u64;
        let tid = e.get("tid").and_then(Json::as_f64).unwrap() as u64;
        let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
        assert!(
            e.get("dur").and_then(Json::as_f64).is_some(),
            "X event has dur"
        );
        let prev = last_ts.insert((pid, tid), ts);
        if let Some(prev) = prev {
            assert!(
                ts >= prev,
                "lane ({pid},{tid}) timestamps go backwards: {prev} > {ts}"
            );
        }
    }
    assert!(complete_events > 0, "trace has complete events");
    // Both device lanes (tid 1 and 2) plus the host lane appear.
    assert!(last_ts.contains_key(&(1, 0)), "host lane present");
    assert!(last_ts.contains_key(&(1, 1)), "device 0 lane present");
    assert!(last_ts.contains_key(&(1, 2)), "device 1 lane present");

    // 3. The kernel spans are exactly the EventLog's kernel events: their
    //    summed durations agree with `event::total_duration`.
    let spans = ctx.profiler().spans();
    let kernel_span_ns: u64 = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Kernel)
        .map(|s| s.end_ns - s.start_ns)
        .sum();
    let log_events = sum.events().last_events();
    let log_kernels: Vec<_> = log_events
        .iter()
        .filter(|e| matches!(e.kind(), CommandKind::Kernel { .. }))
        .collect();
    assert!(!log_kernels.is_empty());
    let log_kernel_ns = event::total_duration(log_kernels.iter().copied()).as_nanos() as u64;
    assert_eq!(
        kernel_span_ns, log_kernel_ns,
        "kernel spans mirror the event log"
    );

    // Kernel spans landed on both device lanes.
    let devices: std::collections::BTreeSet<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Kernel)
        .filter_map(|s| match s.lane {
            Lane::Device(d) => Some(d),
            Lane::Host => None,
        })
        .collect();
    assert_eq!(devices.into_iter().collect::<Vec<_>>(), vec![0, 1]);
}

#[test]
fn metrics_cover_transfers_compile_cache_and_busy_ns() {
    let ctx = two_gpu_profiled();
    let sum: Reduce<i32> = Reduce::new(&ctx, "int sum(int x, int y){ return x + y; }").unwrap();
    let input = Vector::from_fn(&ctx, 4096, |i| i as i32);
    sum.call(&input).unwrap();
    // Second call with the same skeleton: the program cache hits.
    let sum2: Reduce<i32> = Reduce::new(&ctx, "int sum(int x, int y){ return x + y; }").unwrap();
    sum2.call(&input).unwrap();

    let m = ctx.profiler().metrics_snapshot().expect("profiler enabled");
    let counter = |name: &str| m.counters.get(name).copied().unwrap_or(0);
    assert!(counter(skelcl::profile::metrics::BYTES_H2D) >= 4096 * 4);
    assert!(counter(skelcl::profile::metrics::BYTES_D2H) > 0);
    assert_eq!(counter(skelcl::profile::metrics::COMPILE_CACHE_MISS), 1);
    assert_eq!(counter(skelcl::profile::metrics::COMPILE_CACHE_HIT), 1);
    assert_eq!(counter(skelcl::profile::metrics::SKELETON_CALLS), 2);
    assert_eq!(m.devices.len(), 2, "both devices accrued busy time");
    for busy in m.devices.values() {
        assert!(busy.kernel_ns > 0);
        assert!(busy.transfer_ns > 0);
    }
    assert!(m.load_imbalance() >= 1.0);
}
