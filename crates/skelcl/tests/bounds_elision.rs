//! The paper's stated *future work* (§3.4): "we plan to avoid boundary
//! checks at runtime by statically proving that all memory accesses are in
//! bounds, as it is the case in the shown example."
//!
//! In this reproduction that optimisation falls out of the compiler: the
//! generated `get()` accessor is a single bounds-checked expression, the
//! inliner substitutes it at every call site, and constant folding
//! evaluates the range comparison for literal offsets — eliminating the
//! check (and its trap) from the kernel entirely. These tests pin that
//! behaviour down.

use skelcl::{BoundaryHandling, Context, MapOverlap, Matrix};

/// Counts `trap` instructions outside the standalone accessor helpers —
/// i.e. in the code work-items actually execute per access once the
/// accessors are inlined. (The un-inlined `__skelcl_get2` definition keeps
/// its trap but is never called when all sites were substituted.)
fn kernel_trap_count(m: &MapOverlap<f32, f32>) -> usize {
    m.program()
        .functions()
        .iter()
        .filter(|f| !f.name.starts_with("__skelcl_"))
        .flat_map(|f| f.code.iter())
        .filter(|op| matches!(op, skelcl_kernel::ir::Op::Trap))
        .count()
}

#[test]
fn constant_offsets_prove_bounds_statically() {
    let ctx = Context::single_gpu();
    // Sobel-style stencil: every get() offset is a literal within ±1.
    let m: MapOverlap<f32, f32> = MapOverlap::new(
        &ctx,
        "float func(const float* img){
            return get(img, -1, -1) + get(img, 1, 1) + get(img, 0, 0);
        }",
        1,
        BoundaryHandling::Neutral(0.0),
    )
    .unwrap();
    assert_eq!(
        kernel_trap_count(&m),
        0,
        "all accesses statically in bounds — no runtime checks remain:\n{}",
        m.program().disassemble()
    );
    // And it still computes correctly.
    let input = Matrix::from_fn(&ctx, 8, 8, |r, c| (r * 8 + c) as f32);
    let out = m.call(&input).unwrap();
    assert_eq!(
        out.get(4, 4).unwrap(),
        (3 * 8 + 3) as f32 + (5 * 8 + 5) as f32 + (4 * 8 + 4) as f32
    );
}

#[test]
fn constant_trip_loops_unroll_and_prove_bounds() {
    let ctx = Context::single_gpu();
    // Listing 1.2 style: offsets are loop variables. The trip counts are
    // small compile-time constants, so the unroller turns `i`/`j` into
    // literals and constant folding then proves every access in bounds —
    // the same elimination the straight-line Sobel kernel gets.
    let m: MapOverlap<f32, f32> = MapOverlap::new(
        &ctx,
        "float func(const float* m_in){
            float sum = 0.0f;
            for (int i = -1; i <= 1; ++i)
                for (int j = -1; j <= 1; ++j)
                    sum += get(m_in, i, j);
            return sum;
        }",
        1,
        BoundaryHandling::Neutral(0.0),
    )
    .unwrap();
    assert_eq!(
        kernel_trap_count(&m),
        0,
        "constant-trip loops unroll; bounds prove statically:\n{}",
        m.program().disassemble()
    );
    // And the unrolled kernel still computes the 3x3 sum correctly.
    let input = Matrix::from_fn(&ctx, 8, 8, |r, c| (r * 8 + c) as f32);
    let out = m.call(&input).unwrap();
    let expect: f32 = (3..6)
        .flat_map(|r| (3..6).map(move |c| (r * 8 + c) as f32))
        .sum();
    assert_eq!(out.get(4, 4).unwrap(), expect);
}

#[test]
fn dynamic_offsets_keep_the_runtime_check() {
    let ctx = Context::single_gpu();
    // The loop bound is a kernel argument: the trip count is unknown at
    // compile time, so the accesses are not statically provable and the
    // check must remain in the executed code.
    let m: MapOverlap<f32, f32> = MapOverlap::new(
        &ctx,
        "float func(const float* m_in, int r){
            float sum = 0.0f;
            for (int i = -1; i <= r; ++i)
                for (int j = -1; j <= r; ++j)
                    sum += get(m_in, i, j);
            return sum;
        }",
        1,
        BoundaryHandling::Neutral(0.0),
    )
    .unwrap();
    assert!(
        kernel_trap_count(&m) > 0,
        "dynamic offsets cannot be proven — runtime check retained"
    );

    // A dynamic out-of-range access traps, as the paper specifies.
    let bad: MapOverlap<f32, f32> = MapOverlap::new(
        &ctx,
        "float func(const float* m_in, int k){
            return get(m_in, k, 0);
        }",
        1,
        BoundaryHandling::Neutral(0.0),
    )
    .unwrap();
    let input = Matrix::<f32>::zeros(&ctx, 4, 4);
    assert!(bad.call_with(&input, &[skelcl::Value::I32(0)]).is_ok());
    let err = bad.call_with(&input, &[skelcl::Value::I32(2)]).unwrap_err();
    assert!(err.to_string().contains("trap"), "{err}");
}

#[test]
fn statically_out_of_range_offset_is_caught_at_first_run() {
    let ctx = Context::single_gpu();
    // get(m, 2, 0) with d=1 is *always* wrong; the folded condition is
    // constantly false, so the kernel body becomes an unconditional trap.
    let bad: MapOverlap<f32, f32> = MapOverlap::new(
        &ctx,
        "float func(const float* m){ return get(m, 2, 0); }",
        1,
        BoundaryHandling::Neutral(0.0),
    )
    .unwrap();
    let input = Matrix::<f32>::zeros(&ctx, 4, 4);
    let err = bad.call(&input).unwrap_err();
    assert!(err.to_string().contains("trap"), "{err}");
}
