//! Integration tests for the lazy elementwise fusion layer: fused
//! pipelines must be bit-identical to their unfused equivalents on any
//! device count, launch exactly one elementwise kernel however many
//! stages are composed, and weld into Reduce's first pass.

use proptest::prelude::*;

use skelcl::{Context, DeviceSelection, EventLog, Map, Reduce, Value, Vector, Zip};
use vgpu::{CommandKind, DeviceSpec, Platform};

fn ctx(devices: usize) -> Context {
    Context::init(
        Platform::new(devices, DeviceSpec::tesla_t10()),
        DeviceSelection::All,
    )
}

fn dot_skeletons(ctx: &Context) -> (Zip<f32, f32, f32>, Reduce<f32>) {
    let mult: Zip<f32, f32, f32> =
        Zip::new(ctx, "float mult(float x, float y){ return x * y; }").unwrap();
    let sum: Reduce<f32> =
        Reduce::new(ctx, "float sum(float x, float y){ return x + y; }").unwrap();
    (mult, sum)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The paper's dot product: `sum.call_fused(mult.lazy(a, b))` must be
    /// **bit-identical** to the unfused `sum.call(mult.call(a, b))` —
    /// the fused first pass performs exactly the same float operations in
    /// the same order, only loading the products from registers instead of
    /// an intermediate buffer.
    #[test]
    fn fused_dot_is_bit_identical(
        data in proptest::collection::vec((any::<f32>(), any::<f32>()), 1..3000),
        devices in 1usize..=4,
    ) {
        let ctx = ctx(devices);
        let (mult, sum) = dot_skeletons(&ctx);
        let (xs, ys): (Vec<f32>, Vec<f32>) = data.into_iter().unzip();
        let a = Vector::from_vec(&ctx, xs);
        let b = Vector::from_vec(&ctx, ys);

        let unfused = sum.call(&mult.call(&a, &b).unwrap()).unwrap().value();
        let fused = sum
            .call_fused(&mult.lazy(&a.expr(), &b.expr()).unwrap())
            .unwrap()
            .value();
        prop_assert_eq!(fused.to_bits(), unfused.to_bits());
    }

    /// Multi-stage elementwise chains evaluate to the same result fused
    /// (one kernel) and unfused (one kernel per stage).
    #[test]
    fn fused_chain_matches_unfused(
        data in proptest::collection::vec(-1000i32..1000, 1..2000),
        devices in 1usize..=4,
    ) {
        let ctx = ctx(devices);
        let sq: Map<i32, i32> = Map::new(&ctx, "int sq(int x){ return x * x; }").unwrap();
        let neg: Map<i32, i32> = Map::new(&ctx, "int neg(int x){ return -x; }").unwrap();
        let v = Vector::from_vec(&ctx, data.clone());

        let unfused = neg.call(&sq.call(&v).unwrap()).unwrap().to_vec().unwrap();
        let fused = neg
            .lazy(&sq.lazy(&v.expr()).unwrap())
            .unwrap()
            .eval()
            .unwrap()
            .to_vec()
            .unwrap();
        prop_assert_eq!(&fused, &unfused);
        let expected: Vec<i32> = data.iter().map(|&x| x.wrapping_mul(x).wrapping_neg()).collect();
        prop_assert_eq!(fused, expected);
    }
}

/// A three-stage expression must evaluate with exactly ONE kernel launch
/// per device — that is the whole point of fusion.
#[test]
fn multi_stage_expr_runs_one_kernel_per_device() {
    for devices in [1usize, 2, 4] {
        let ctx = ctx(devices);
        let scale: Map<f32, f32> =
            Map::new(&ctx, "float scale(float x, float a){ return x * a; }").unwrap();
        let add: Zip<f32, f32, f32> =
            Zip::new(&ctx, "float add(float x, float y){ return x + y; }").unwrap();
        let a = Vector::from_fn(&ctx, 4096, |i| i as f32);
        let b = Vector::from_fn(&ctx, 4096, |i| (4096 - i) as f32);

        // scale(a, 2) + scale(b, 3), three stages, two sources.
        let e = add
            .lazy(
                &scale.lazy_with(&a.expr(), &[Value::F32(2.0)]).unwrap(),
                &scale.lazy_with(&b.expr(), &[Value::F32(3.0)]).unwrap(),
            )
            .unwrap();
        let stats = e.stats().unwrap();
        assert_eq!(stats.stages, 3);
        assert_eq!(stats.sources, 2);
        assert_eq!(stats.len, 4096);

        let log = EventLog::default();
        let out = e.eval_logged(&log).unwrap();
        let launches = log.kernel_launches_by_device();
        assert_eq!(launches.len(), devices, "one chunk per device");
        // Launch counts depend on the chain rule (`SKELCL_PLAN=0` runs
        // this staged: one kernel per stage instead of one in total).
        if skelcl::PlanConfig::from_env().chain {
            assert!(
                launches.values().all(|&n| n == 1),
                "fusion must launch exactly one kernel per device, got {launches:?}"
            );
        }
        assert!(log.last_events().iter().any(|e| matches!(
            e.kind(),
            CommandKind::Kernel { name } if name == "skelcl_fused"
        )));

        let host = out.to_vec().unwrap();
        for (i, v) in host.iter().enumerate() {
            assert_eq!(*v, i as f32 * 2.0 + (4096 - i) as f32 * 3.0);
        }
    }
}

/// Fused reduce across the multi-pass boundary: n > WG * MAX_GROUPS
/// (16384) forces a second reduction pass over the per-group partials;
/// the fused and plain paths must still agree bit-for-bit.
#[test]
fn fused_reduce_across_multi_pass_boundary() {
    for devices in [1usize, 4] {
        let ctx = ctx(devices);
        let (mult, sum) = dot_skeletons(&ctx);
        let n = 100_000;
        let a = Vector::from_fn(&ctx, n, |i| ((i * 29) % 1013) as f32 * 0.03125);
        let b = Vector::from_fn(&ctx, n, |i| ((i * 17) % 911) as f32 * 0.0625);

        let unfused = sum.call(&mult.call(&a, &b).unwrap()).unwrap().value();
        let fused = sum
            .call_fused(&mult.lazy(&a.expr(), &b.expr()).unwrap())
            .unwrap()
            .value();
        assert_eq!(fused.to_bits(), unfused.to_bits(), "devices = {devices}");
    }
}

/// Extra scalar arguments captured at `lazy_with` time are baked into the
/// fused kernel as literals, including inside a fused reduction.
#[test]
fn extras_are_baked_into_fused_stages() {
    let ctx = ctx(2);
    let saxpy: Zip<f32, f32, f32> = Zip::new(
        &ctx,
        "float saxpy(float x, float y, float a){ return a * x + y; }",
    )
    .unwrap();
    let sum: Reduce<f32> =
        Reduce::new(&ctx, "float sum(float x, float y){ return x + y; }").unwrap();
    let x = Vector::from_fn(&ctx, 513, |i| i as f32);
    let y = Vector::from_fn(&ctx, 513, |i| (i % 7) as f32);

    let expr = saxpy
        .lazy_with(&x.expr(), &y.expr(), &[Value::F32(2.5)])
        .unwrap();
    let eager = saxpy.call_with(&x, &y, &[Value::F32(2.5)]).unwrap();
    assert_eq!(
        expr.eval().unwrap().to_vec().unwrap(),
        eager.to_vec().unwrap()
    );
    let fused = sum.call_fused(&expr).unwrap().value();
    let unfused = sum.call(&eager).unwrap().value();
    assert_eq!(fused.to_bits(), unfused.to_bits());

    // Wrong arity is rejected at expression-build time, not at eval.
    assert!(saxpy.lazy(&x.expr(), &y.expr()).is_err());
    assert!(saxpy
        .lazy_with(&x.expr(), &y.expr(), &[Value::I32(1)])
        .is_err());
}

/// A shared source consumed by two stages is deduplicated: the fused
/// kernel reads it once, and the DAG still evaluates correctly.
#[test]
fn shared_source_is_read_once() {
    let ctx = ctx(2);
    let mul: Zip<f32, f32, f32> =
        Zip::new(&ctx, "float mul(float x, float y){ return x * y; }").unwrap();
    let v = Vector::from_fn(&ctx, 1000, |i| (i % 31) as f32 - 15.0);

    // v * v, both children the same container.
    let e = mul.lazy(&v.expr(), &v.expr()).unwrap();
    assert_eq!(e.stats().unwrap().sources, 1);
    let out = e.eval().unwrap().to_vec().unwrap();
    let host = v.to_vec().unwrap();
    for (o, x) in out.iter().zip(&host) {
        assert_eq!(*o, x * x);
    }
}

/// Mixed contexts and mismatched lengths are rejected when the expression
/// is built into a plan.
#[test]
fn fusion_validates_contexts_and_lengths() {
    let ctx1 = ctx(1);
    let ctx2 = ctx(1);
    let add: Zip<f32, f32, f32> =
        Zip::new(&ctx1, "float add(float x, float y){ return x + y; }").unwrap();

    let a = Vector::from_fn(&ctx1, 10, |i| i as f32);
    let foreign = Vector::from_fn(&ctx2, 10, |i| i as f32);
    let e = add.lazy(&a.expr(), &foreign.expr()).unwrap();
    assert!(e.eval().is_err(), "cross-context fusion must fail");

    let short = Vector::from_fn(&ctx1, 7, |i| i as f32);
    let e = add.lazy(&a.expr(), &short.expr()).unwrap();
    assert!(e.eval().is_err(), "length mismatch must fail");
}
