//! End-to-end differential test of the `SKELCL_KERNEL_OPT` matrix across
//! 1–4 devices: the same skeletons run under the legacy pipeline, the
//! bare MIR pipeline, each optimization pass alone and the full pipeline,
//! and every configuration must produce bit-identical results.
//!
//! The environment variable is process-global, so all configurations are
//! exercised from a single `#[test]` in a dedicated binary — nothing else
//! compiles kernels concurrently with the variable set.

use skelcl::{BoundaryHandling, Context, DeviceSelection, Map, MapOverlap, Matrix, Reduce, Vector};
use vgpu::{DeviceSpec, Platform};

fn ctx(devices: usize) -> Context {
    Context::init(
        Platform::new(devices, DeviceSpec::tesla_t10()),
        DeviceSelection::All,
    )
}

/// One full run of map + reduce + map-overlap on `devices` devices,
/// returning the raw results for comparison across configurations.
fn run_all(devices: usize) -> (Vec<f32>, f32, Vec<f32>) {
    let ctx = ctx(devices);
    let n = 1000;
    let data: Vec<f32> = (0..n).map(|i| (i as f32) * 0.125 - 40.0).collect();

    let map: Map<f32, f32> = Map::new(
        &ctx,
        "float f(float x){ return sqrt(fabs(x)) * 2.0f + 1.0f; }",
    )
    .unwrap();
    let mapped = map.call(&Vector::from_vec(&ctx, data.clone())).unwrap();
    let map_out = mapped.to_vec().unwrap();

    let reduce: Reduce<f32> =
        Reduce::new(&ctx, "float f(float a, float b){ return a + b; }").unwrap();
    let red_out = reduce
        .call(&Vector::from_vec(&ctx, data.clone()))
        .unwrap()
        .value();

    let blur: MapOverlap<f32, f32> = MapOverlap::new(
        &ctx,
        "float func(const float* m_in){
            float sum = 0.0f;
            for (int i = -1; i <= 1; ++i)
                for (int j = -1; j <= 1; ++j)
                    sum += get(m_in, i, j);
            return sum / 9.0f;
        }",
        1,
        BoundaryHandling::Neutral(0.0),
    )
    .unwrap();
    let m = Matrix::from_fn(&ctx, 16, 16, |r, c| ((r * 16 + c) as f32).cos());
    let blurred = blur.call(&m).unwrap();
    let mut blur_out = Vec::new();
    for r in 0..16 {
        for c in 0..16 {
            blur_out.push(blurred.get(r, c).unwrap());
        }
    }
    (map_out, red_out, blur_out)
}

#[test]
fn opt_matrix_is_bit_identical_across_devices() {
    let matrix = [
        "0",
        "none",
        "const-prop",
        "cse",
        "dce",
        "licm",
        "unroll",
        "1",
    ];
    for devices in 1..=4 {
        // Legacy pipeline is the oracle.
        std::env::set_var("SKELCL_KERNEL_OPT", "0");
        let oracle = run_all(devices);
        for spec in matrix {
            std::env::set_var("SKELCL_KERNEL_OPT", spec);
            let got = run_all(devices);
            assert!(
                got.0
                    .iter()
                    .zip(&oracle.0)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
                    && got.1.to_bits() == oracle.1.to_bits()
                    && got
                        .2
                        .iter()
                        .zip(&oracle.2)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                "SKELCL_KERNEL_OPT={spec} on {devices} device(s) diverged from legacy"
            );
        }
    }
    std::env::remove_var("SKELCL_KERNEL_OPT");
}
