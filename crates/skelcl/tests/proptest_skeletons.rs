//! Property-based tests: every skeleton must agree with a host reference
//! for arbitrary inputs, lengths and device counts — including the awkward
//! sizes around work-group and chunk boundaries.

use proptest::prelude::*;

use skelcl::{
    BoundaryHandling, Context, DeviceSelection, Distribution, Map, MapOverlap, Matrix, Reduce,
    Scan, Vector, Zip,
};
use vgpu::{DeviceSpec, Platform};

fn ctx(devices: usize) -> Context {
    Context::init(
        Platform::new(devices, DeviceSpec::tesla_t10()),
        DeviceSelection::All,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn map_matches_host(
        data in proptest::collection::vec(any::<i32>(), 0..2000),
        devices in 1usize..=4,
    ) {
        let ctx = ctx(devices);
        let map: Map<i32, i32> =
            Map::new(&ctx, "int f(int x){ return x * 3 - 7; }").unwrap();
        let v = Vector::from_vec(&ctx, data.clone());
        let out = map.call(&v).unwrap().to_vec().unwrap();
        let expected: Vec<i32> =
            data.iter().map(|&x| x.wrapping_mul(3).wrapping_sub(7)).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn zip_matches_host(
        data in proptest::collection::vec((any::<i32>(), any::<i32>()), 1..1500),
        devices in 1usize..=4,
        dist_choice in 0usize..4,
    ) {
        let ctx = ctx(devices);
        let zip: Zip<i32, i32, i32> =
            Zip::new(&ctx, "int f(int a, int b){ return a ^ (b + 1); }").unwrap();
        let (xs, ys): (Vec<i32>, Vec<i32>) = data.into_iter().unzip();
        let a = Vector::from_vec(&ctx, xs.clone());
        let b = Vector::from_vec(&ctx, ys.clone());
        let dist = match dist_choice {
            0 => Distribution::Block,
            1 => Distribution::Copy,
            2 => Distribution::single(),
            _ => Distribution::Overlap { size: 3 },
        };
        a.set_distribution(dist).unwrap();
        let out = zip.call(&a, &b).unwrap().to_vec().unwrap();
        let expected: Vec<i32> =
            xs.iter().zip(&ys).map(|(&x, &y)| x ^ y.wrapping_add(1)).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn reduce_matches_host(
        data in proptest::collection::vec(any::<i64>(), 1..5000),
        devices in 1usize..=4,
    ) {
        let ctx = ctx(devices);
        let sum: Reduce<i64> =
            Reduce::new(&ctx, "long f(long x, long y){ return x + y; }").unwrap();
        let v = Vector::from_vec(&ctx, data.clone());
        let expected = data.iter().fold(0i64, |a, &b| a.wrapping_add(b));
        // Wrapping addition is associative and commutative, so any
        // reduction order gives the same result.
        prop_assert_eq!(sum.call(&v).unwrap().value(), expected);
    }

    #[test]
    fn scan_matches_host(
        data in proptest::collection::vec(any::<i64>(), 1..3000),
        devices in 1usize..=4,
    ) {
        let ctx = ctx(devices);
        let scan: Scan<i64> =
            Scan::new(&ctx, "long f(long x, long y){ return x + y; }").unwrap();
        let v = Vector::from_vec(&ctx, data.clone());
        let out = scan.call(&v).unwrap().to_vec().unwrap();
        let expected: Vec<i64> = data
            .iter()
            .scan(0i64, |acc, &x| {
                *acc = acc.wrapping_add(x);
                Some(*acc)
            })
            .collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn map_overlap_matches_host(
        rows in 1usize..40,
        cols in 1usize..40,
        d in 1usize..3,
        devices in 1usize..=4,
        seed in any::<u32>(),
    ) {
        let ctx = ctx(devices);
        // Stencil: sum of the four axis neighbours at distance d, neutral 1.
        let src = format!(
            "int f(const int* m){{
                 return get(m, -{d}, 0) + get(m, {d}, 0) + get(m, 0, -{d}) + get(m, 0, {d});
             }}"
        );
        let m: MapOverlap<i32, i32> =
            MapOverlap::new(&ctx, &src, d, BoundaryHandling::Neutral(1)).unwrap();
        let data: Vec<i32> = (0..rows * cols)
            .map(|i| ((i as u32).wrapping_mul(seed | 1) >> 16) as i32 % 100)
            .collect();
        let input = Matrix::from_vec(&ctx, rows, cols, data.clone());
        let out = m.call(&input).unwrap().to_vec().unwrap();

        let get = |r: isize, c: isize| -> i32 {
            if r < 0 || r >= rows as isize || c < 0 || c >= cols as isize {
                1
            } else {
                data[r as usize * cols + c as usize]
            }
        };
        let di = d as isize;
        for r in 0..rows as isize {
            for c in 0..cols as isize {
                let expected = get(r, c - di) + get(r, c + di) + get(r - di, c) + get(r + di, c);
                prop_assert_eq!(
                    out[r as usize * cols + c as usize],
                    expected,
                    "rows={} cols={} d={} at ({}, {})", rows, cols, d, r, c
                );
            }
        }
    }

    #[test]
    fn redistribution_preserves_contents(
        data in proptest::collection::vec(any::<f32>(), 0..1000),
        dists in proptest::collection::vec(0usize..4, 1..5),
        devices in 1usize..=4,
    ) {
        let ctx = ctx(devices);
        let v = Vector::from_vec(&ctx, data.clone());
        for d in dists {
            let dist = match d {
                0 => Distribution::Block,
                1 => Distribution::Copy,
                2 => Distribution::single(),
                _ => Distribution::Overlap { size: 2 },
            };
            v.set_distribution(dist).unwrap();
            v.prefetch(dist).unwrap();
            let back = v.to_vec().unwrap();
            // NaN-safe bitwise comparison.
            prop_assert_eq!(back.len(), data.len());
            for (a, b) in back.iter().zip(&data) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
