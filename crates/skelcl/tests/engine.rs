//! Integration tests of the asynchronous plan engine: topological
//! execution order for arbitrary plans, `Context::finish` draining, and
//! bit-identical determinism of async multi-device skeleton pipelines.

use proptest::prelude::*;

use skelcl::engine::LaunchPlan;
use skelcl::{Context, DeviceSelection, Reduce, Vector, Zip};
use vgpu::{DeviceSpec, EventStatus, KernelArg, NdRange, Platform};

fn ctx(devices: usize) -> Context {
    Context::init(
        Platform::new(devices, DeviceSpec::tesla_t10()),
        DeviceSelection::All,
    )
}

const TOUCH_KERNEL: &str = "__kernel void touch(__global int* p, int n) {\n\
         int i = (int)get_global_id(0);\n\
         if (i < n) p[i] = p[i] + 1;\n\
     }";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any plan the builder accepts — random mix of writes, reads and
    /// kernels with random backward dependencies across 1–4 devices —
    /// completes every node, exactly once, in an order where each
    /// dependency's completion callback ran before its dependent's.
    #[test]
    fn plans_complete_in_topological_order(
        specs in proptest::collection::vec(
            (0usize..4, 0usize..3, any::<u64>()),
            1..20,
        ),
        devices in 1usize..=4,
    ) {
        let ctx = ctx(devices);
        let program = skelcl_kernel::compile("touch.cl", TOUCH_KERNEL).unwrap();
        let buffers: Vec<_> = (0..devices)
            .map(|d| ctx.queue(d).create_buffer(64).unwrap())
            .collect();

        let mut plan = LaunchPlan::new();
        let mut ids = Vec::new();
        let mut read_ids = Vec::new();
        for (i, &(dev_raw, op_raw, seed)) in specs.iter().enumerate() {
            let device = dev_raw % devices;
            let mut deps = Vec::new();
            if i > 0 {
                if seed & 1 == 1 {
                    deps.push(ids[(seed as usize >> 1) % i]);
                }
                if seed & 2 == 2 {
                    deps.push(ids[(seed as usize >> 2) % i]);
                }
            }
            let id = match op_raw {
                0 => plan.write(device, &buffers[device], 0, vec![i as u8; 4], &deps),
                1 => {
                    let id = plan.read(device, &buffers[device], 0, 4, &deps);
                    read_ids.push(id);
                    id
                }
                _ => plan.kernel(
                    device,
                    &program,
                    "touch",
                    vec![
                        KernelArg::Buffer(buffers[device].clone()),
                        KernelArg::Scalar(skelcl::Value::I32(16)),
                    ],
                    NdRange::linear(16, 16),
                    1,
                    &deps,
                ),
            };
            ids.push(id);
        }

        let mut run = plan.execute(&ctx).unwrap();
        run.wait().unwrap();

        // Every node completed exactly once…
        let order = run.completion_order();
        prop_assert_eq!(order.len(), specs.len());
        let mut position = vec![usize::MAX; specs.len()];
        for (pos, &node) in order.iter().enumerate() {
            prop_assert_eq!(position[node], usize::MAX, "node completed twice");
            position[node] = pos;
        }
        // …and only after all of its dependencies.
        for (i, &(_, _, seed)) in specs.iter().enumerate() {
            if i > 0 {
                if seed & 1 == 1 {
                    prop_assert!(position[(seed as usize >> 1) % i] < position[i]);
                }
                if seed & 2 == 2 {
                    prop_assert!(position[(seed as usize >> 2) % i] < position[i]);
                }
            }
        }
        // Read nodes deliver their bytes.
        for id in read_ids {
            prop_assert_eq!(run.take_read(id).unwrap().len(), 4);
        }
        for event in run.events() {
            prop_assert_eq!(event.status(), EventStatus::Complete);
        }
    }
}

/// `Context::finish` blocks until every queue has drained — after it
/// returns, every event of a plan that was never waited on is complete.
#[test]
fn finish_drains_every_queue() {
    let ctx = ctx(4);
    let mut plan = LaunchPlan::new();
    for device in 0..4 {
        let buffer = ctx.queue(device).create_buffer(4096).unwrap();
        let mut dep = None;
        for round in 0..16 {
            let bytes = vec![round as u8; 4096];
            let deps: Vec<_> = dep.into_iter().collect();
            dep = Some(plan.write(device, &buffer, 0, bytes, &deps));
        }
    }
    let run = plan.execute(&ctx).unwrap();
    // No run.wait(): finish alone must drain all four queues.
    ctx.finish().unwrap();
    for event in run.events() {
        assert_eq!(event.status(), EventStatus::Complete);
    }
}

fn dot_product_f32(devices: usize, n: usize) -> f32 {
    let ctx = ctx(devices);
    let mult: Zip<f32, f32, f32> =
        Zip::new(&ctx, "float mult(float x, float y){ return x * y; }").unwrap();
    let sum: Reduce<f32> =
        Reduce::new(&ctx, "float sum(float x, float y){ return x + y; }").unwrap();
    let a = Vector::from_fn(&ctx, n, |i| ((i % 97) as f32) * 0.375 - 18.0);
    let b = Vector::from_fn(&ctx, n, |i| ((i % 31) as f32) * 0.25 + 1.0);
    sum.call(&mult.call(&a, &b).unwrap()).unwrap().value()
}

/// The async engine must not introduce run-to-run nondeterminism: the
/// same multi-device dot product, executed in fresh contexts, returns
/// bit-identical floats every time (each queue is in-order and the
/// combination tree is fixed, so rounding order never varies).
#[test]
fn async_dot_product_is_bit_identical() {
    for devices in [1, 2, 4] {
        let reference = dot_product_f32(devices, 10_001).to_bits();
        for _ in 0..3 {
            assert_eq!(
                dot_product_f32(devices, 10_001).to_bits(),
                reference,
                "devices = {devices}"
            );
        }
    }
}

/// Exact integer cross-check of the async pipeline against the host.
#[test]
fn async_dot_product_matches_host_exactly() {
    let ctx = ctx(4);
    let mult: Zip<i64, i64, i64> =
        Zip::new(&ctx, "long mult(long x, long y){ return x * y; }").unwrap();
    let sum: Reduce<i64> = Reduce::new(&ctx, "long sum(long x, long y){ return x + y; }").unwrap();
    let n = 4099usize;
    let a = Vector::from_fn(&ctx, n, |i| (i as i64 % 113) - 56);
    let b = Vector::from_fn(&ctx, n, |i| (i as i64 % 57) - 28);
    let expected: i64 = (0..n)
        .map(|i| ((i as i64 % 113) - 56) * ((i as i64 % 57) - 28))
        .sum();
    assert_eq!(
        sum.call(&mult.call(&a, &b).unwrap()).unwrap().value(),
        expected
    );
}
