//! Integration tests for the second-generation observability layer:
//! the flight recorder's crash postmortem on `DeviceLost`, its queue
//! telemetry feed, and the Chrome-trace flow edges drawn from `LaunchPlan`
//! wait-list dependencies.

use skelcl::profile::flight::HOST_DEVICE;
use skelcl::profile::json::Json;
use skelcl::profile::FlightKind;
use skelcl::{
    Context, DeviceSelection, Distribution, FlightRecorder, Profiler, Reduce, Vector, Zip,
};
use vgpu::{
    DeviceSpec, Error as VgpuError, ExecStrategy, FaultInjection, KernelArg, LaunchConfig, NdRange,
    Platform,
};

fn observed_ctx(devices: usize, profiler: Profiler, capacity: usize) -> Context {
    Context::init_with_observability(
        Platform::new(devices, DeviceSpec::tesla_t10()),
        DeviceSelection::All,
        profiler,
        FlightRecorder::with_capacity(capacity),
    )
}

/// A panicking kernel on the fast path surfaces as `DeviceLost`, the
/// flight recorder auto-dumps its ring exactly once, and the persistent
/// worker pool keeps serving skeleton calls on the same context.
#[test]
fn device_lost_dumps_flight_recorder_and_session_survives() {
    let ctx = observed_ctx(2, Profiler::enabled(), 128);
    let flight = ctx.flight().clone();
    assert!(flight.is_enabled());
    assert!(!flight.dumped());

    // Warm up: a real skeleton call feeds the recorder through the queue
    // observers installed by the context.
    let sum: Reduce<i32> = Reduce::new(&ctx, "int sum(int x, int y){ return x + y; }").unwrap();
    let input = Vector::from_fn(&ctx, 4_096, |i| i as i32);
    assert_eq!(sum.call(&input).unwrap().value(), (0..4_096).sum::<i32>());
    assert!(flight.recorded() > 0, "queue telemetry feeds the recorder");
    let events = flight.events();
    assert!(events.iter().any(|e| e.kind == FlightKind::LaunchEnd));
    assert!(events.iter().any(|e| e.kind == FlightKind::Transfer));
    assert!(events.iter().any(|e| e.kind == FlightKind::PlanNode));

    // Crash a kernel on the pool's worker threads via fault injection,
    // driven through the context's own (observed) queue.
    let program = skelcl_kernel::compile(
        "crash.cl",
        "__kernel void crash(__global int* out){ out[get_global_id(0)] = 1; }",
    )
    .unwrap();
    let buf = ctx.queue(0).create_buffer(64 * 4).unwrap();
    let config = LaunchConfig {
        strategy: ExecStrategy::Fast,
        fault_injection: Some(FaultInjection::PanicInKernel),
        ..LaunchConfig::default()
    };
    let err = ctx
        .queue(0)
        .launch_kernel(
            &program,
            "crash",
            &[KernelArg::Buffer(buf)],
            NdRange::linear(64, 32),
            &config,
        )
        .unwrap_err();
    assert!(matches!(err, VgpuError::DeviceLost));

    // The queue observer saw the DeviceLost failure and fired the one-shot
    // postmortem dump; the failure itself is in the ring.
    assert!(flight.dumped(), "DeviceLost must auto-dump the recorder");
    assert!(flight
        .events()
        .iter()
        .any(|e| e.kind == FlightKind::Failure && e.b == 1));

    // The session is not poisoned: the same skeleton still executes on the
    // same pools, and the on-demand dump keeps working.
    assert_eq!(sum.call(&input).unwrap().value(), (0..4_096).sum::<i32>());
    let dump = ctx.dump_flight().expect("recorder enabled");
    assert!(dump.contains("launch_end"));
}

/// A disabled flight recorder stays fully inert through a real session.
#[test]
fn disabled_flight_recorder_is_inert_in_context() {
    let ctx = Context::init_with_observability(
        Platform::new(2, DeviceSpec::tesla_t10()),
        DeviceSelection::All,
        Profiler::disabled(),
        FlightRecorder::disabled(),
    );
    assert!(!ctx.flight().is_enabled());
    let sum: Reduce<i32> = Reduce::new(&ctx, "int sum(int x, int y){ return x + y; }").unwrap();
    let input = Vector::from_fn(&ctx, 1_000, |i| i as i32);
    assert_eq!(sum.call(&input).unwrap().value(), (0..1_000).sum::<i32>());
    assert_eq!(ctx.flight().recorded(), 0);
    assert!(ctx.dump_flight().is_none());
}

/// Multi-node plans (Reduce chains upload → kernel → … → read per device)
/// produce flow edges, and the exported trace pairs every flow start with
/// a flow end whose timestamp is not earlier.
#[test]
fn launch_plan_dependencies_become_trace_flow_edges() {
    let ctx = observed_ctx(2, Profiler::enabled(), 64);
    let mult: Zip<f32, f32, f32> =
        Zip::new(&ctx, "float mult(float x, float y){ return x * y; }").unwrap();
    let sum: Reduce<f32> =
        Reduce::new(&ctx, "float sum(float x, float y){ return x + y; }").unwrap();
    let a = Vector::from_fn(&ctx, 8_192, |i| (i % 100) as f32);
    let b = Vector::from_fn(&ctx, 8_192, |_| 0.5);
    a.set_distribution(Distribution::Block).unwrap();
    let dot = sum.call(&mult.call(&a, &b).unwrap()).unwrap();
    let expected: f32 = (0..8_192).map(|i| (i % 100) as f32 * 0.5).sum();
    assert!((dot.value() - expected).abs() / expected < 1e-3);

    let flows = ctx.profiler().flows();
    assert!(
        !flows.is_empty(),
        "reduce plans chain nodes, so flow edges must exist"
    );
    for f in &flows {
        assert_ne!(f.from, 0);
        assert_ne!(f.to, 0);
        assert_ne!(f.from, f.to);
    }

    // Queue-depth counter samples were recorded by the queue observers.
    let samples = ctx.profiler().counter_samples();
    assert!(!samples.is_empty());
    assert!(samples
        .iter()
        .all(|s| s.name == skelcl::profile::metrics::QUEUE_DEPTH));

    // Redistribution events carry the host pseudo-device id.
    assert!(ctx
        .flight()
        .events()
        .iter()
        .filter(|e| e.kind == FlightKind::Redistribution)
        .all(|e| e.device == HOST_DEVICE));

    // The exported trace pairs every flow start with a matching end.
    let trace = Json::parse(&ctx.profiler().chrome_trace_json().unwrap()).unwrap();
    let events = trace.get("traceEvents").unwrap().as_arr().unwrap();
    let mut starts = std::collections::HashMap::new();
    let mut ends = std::collections::HashMap::new();
    for e in events {
        let id = || e.get("id").unwrap().as_f64().unwrap() as u64;
        let ts = || e.get("ts").unwrap().as_f64().unwrap();
        match e.get("ph").unwrap().as_str().unwrap() {
            "s" => {
                starts.insert(id(), ts());
            }
            "t" => {
                ends.insert(id(), ts());
            }
            _ => {}
        }
    }
    assert!(!starts.is_empty());
    assert_eq!(starts.len(), ends.len());
    for (id, s_ts) in &starts {
        let t_ts = ends.get(id).expect("flow start without end");
        assert!(s_ts <= t_ts, "flow {id}: {s_ts} -> {t_ts}");
    }
}
