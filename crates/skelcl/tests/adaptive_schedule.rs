//! End-to-end adaptive scheduling: one calibration frame of busy-ns
//! feedback must visibly flatten the per-device kernel-time imbalance,
//! both for spatially non-uniform work (mandelbrot) on homogeneous GPUs
//! and for uniform work on a heterogeneous platform — without changing
//! any output bits.

use skelcl::{Context, DeviceSelection, Map, SchedulePolicy, Value, Vector};
use vgpu::Platform;

/// Mandelbrot pixel from its linear index — per-pixel work varies by
/// orders of magnitude between exterior and interior points, which is
/// exactly the load imbalance the adaptive scheduler targets.
const MANDEL_SRC: &str = r#"
uchar func(int gid, int width, int height, int max_iter)
{
    int px = gid % width;
    int py = gid / width;
    float cr = 3.5f * (float)px / (float)width - 2.5f;
    float ci = 3.0f * (float)py / (float)height - 1.5f;
    float zr = 0.0f;
    float zi = 0.0f;
    int it = 0;
    while (zr * zr + zi * zi <= 4.0f && it < max_iter) {
        float t = zr * zr - zi * zi + cr;
        zi = 2.0f * zr * zi + ci;
        zr = t;
        it = it + 1;
    }
    return (uchar)(255 * it / max_iter);
}
"#;

fn mandel_frame(
    ctx: &Context,
    map: &Map<i32, u8>,
    w: usize,
    h: usize,
    max_iter: i32,
) -> (f64, Vec<u8>) {
    let pixels = Vector::from_fn(ctx, w * h, |i| i as i32);
    let image = map
        .call_with(
            &pixels,
            &[
                Value::I32(w as i32),
                Value::I32(h as i32),
                Value::I32(max_iter),
            ],
        )
        .unwrap();
    let out = image.to_vec().unwrap();
    (map.events().load_imbalance(), out)
}

#[test]
fn adaptive_flattens_mandelbrot_imbalance_after_one_calibration_frame() {
    let (w, h, it) = (512usize, 384usize, 200);
    let ctx = Context::tesla_s1070();
    let map: Map<i32, u8> = Map::new(&ctx, MANDEL_SRC).unwrap();

    ctx.scheduler().set_policy(SchedulePolicy::Adaptive);
    // The calibration frame runs under the even policy and seeds the
    // throughput model with its per-device busy times.
    let (even_imb, even_out) = ctx
        .scheduler()
        .calibrate(|| mandel_frame(&ctx, &map, w, h, it));
    let (adaptive_imb, adaptive_out) = mandel_frame(&ctx, &map, w, h, it);

    // The paper's even block distribution leaves the middle GPUs (which
    // own the interior of the set) far behind.
    assert!(
        even_imb > 1.2,
        "even split should be visibly imbalanced, got {even_imb:.3}"
    );
    assert!(
        adaptive_imb < even_imb,
        "adaptive ({adaptive_imb:.3}) must beat even ({even_imb:.3})"
    );
    assert!(
        adaptive_imb <= 1.10,
        "one calibration frame should reach max/mean <= 1.10, got {adaptive_imb:.3}"
    );
    assert_eq!(even_out, adaptive_out, "scheduling must not change pixels");
}

#[test]
fn adaptive_matches_throughput_on_heterogeneous_platform() {
    // Two half-speed and two full-speed GPUs: an even split leaves the
    // fast pair idle half the time (max/mean = 4/3).
    let ctx = Context::init(Platform::tesla_s1070_slow_fast(), DeviceSelection::All);
    let map: Map<f32, f32> =
        Map::new(&ctx, "float func(float x){ return x * 2.0f + 1.0f; }").unwrap();
    ctx.scheduler().set_policy(SchedulePolicy::Adaptive);

    let frame = |n: usize| {
        let v = Vector::from_fn(&ctx, n, |i| i as f32);
        let out = map.call(&v).unwrap().to_vec().unwrap();
        (map.events().load_imbalance(), out)
    };
    let n = 1 << 18;
    let (even_imb, even_out) = ctx.scheduler().calibrate(|| frame(n));
    let (adaptive_imb, adaptive_out) = frame(n);

    assert!(
        even_imb > 1.25,
        "uniform work split evenly across 2x-speed-skewed GPUs, got {even_imb:.3}"
    );
    assert!(
        adaptive_imb < 1.05,
        "uniform work should balance almost perfectly, got {adaptive_imb:.3}"
    );
    assert_eq!(even_out, adaptive_out);
}
