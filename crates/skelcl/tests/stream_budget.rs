//! Acceptance test for the out-of-core streaming executor: a 4-GPU fused
//! map → stencil → reduce whose working set exceeds the per-device budget
//! must actually engage streaming (chunked regions, staged bytes), stay
//! within the budget for peak resident device bytes, and produce a result
//! bit-identical to the `SKELCL_STREAM=0` oracle.
//!
//! The env gates are process-global, so this binary holds exactly one
//! test.

use skelcl::profile::metrics;
use skelcl::{
    BoundaryHandling, Context, DeviceSelection, Map, MapOverlapVec, Profiler, Reduce, Vector,
};
use vgpu::{DeviceSpec, Platform};

const DEVICES: usize = 4;
const N: usize = 1 << 18;
const BUDGET: usize = 256 * 1024;

/// Runs the fused map → stencil → reduce pipeline under the current env
/// gates, returning the scalar result's bits and the context for
/// inspection.
fn run() -> (u32, Context) {
    let ctx = Context::init_with_profiler(
        Platform::new(DEVICES, DeviceSpec::tesla_t10()),
        DeviceSelection::All,
        Profiler::enabled(),
    );
    let v = Vector::from_fn(&ctx, N, |i| ((i * 37) % 1999) as f32 * 0.5);
    let sq: Map<f32, f32> = Map::new(&ctx, "float sq(float x){ return x * x; }").unwrap();
    let sum: Reduce<f32> =
        Reduce::new(&ctx, "float sum(float x, float y){ return x + y; }").unwrap();
    let blur: MapOverlapVec<f32, f32> = MapOverlapVec::new(
        &ctx,
        "float blur(const float* v){ return (get(v,-1) + get(v,0) + get(v,1)) / 3.0f; }",
        1,
        BoundaryHandling::Neutral(0.0),
    )
    .unwrap();
    for d in 0..DEVICES {
        ctx.platform().device(d).reset_peak();
    }
    let r = sum
        .call_fused(&blur.lazy(&sq.lazy(&v.expr()).unwrap()).unwrap())
        .unwrap()
        .value();
    (r.to_bits(), ctx)
}

#[test]
fn streams_within_budget_and_matches_oracle() {
    std::env::set_var("SKELCL_DEVICE_BUDGET", BUDGET.to_string());

    std::env::set_var("SKELCL_STREAM", "0");
    let (oracle, oracle_ctx) = run();
    let p = oracle_ctx.profiler();
    assert_eq!(
        p.counter(metrics::STREAM_REGIONS),
        0,
        "SKELCL_STREAM=0 must keep the oracle path"
    );
    let oracle_peak: usize = (0..DEVICES)
        .map(|d| oracle_ctx.platform().device(d).peak_allocated_bytes())
        .max()
        .unwrap();
    assert!(
        oracle_peak > BUDGET,
        "the workload must exceed the budget non-streamed (peak {oracle_peak})"
    );

    std::env::set_var("SKELCL_STREAM", "2");
    let (streamed, ctx) = run();
    std::env::remove_var("SKELCL_STREAM");
    std::env::remove_var("SKELCL_DEVICE_BUDGET");

    assert_eq!(streamed, oracle, "streamed result must be bit-identical");
    let p = ctx.profiler();
    assert!(
        p.counter(metrics::STREAM_REGIONS) >= 2,
        "both the stencil and the reduce region must stream"
    );
    assert!(
        p.counter(metrics::STREAM_CHUNKS) > 2 * DEVICES as u64,
        "each device's share must split into multiple chunks"
    );
    assert!(p.counter(metrics::STREAM_BYTES_STAGED) > 0);
    for d in 0..DEVICES {
        let peak = ctx.platform().device(d).peak_allocated_bytes();
        assert!(
            peak <= BUDGET,
            "device {d} peak resident bytes {peak} exceed the budget {BUDGET}"
        );
    }
}
