//! Property tests for the streaming executor: streamed execution
//! (`SKELCL_STREAM=<depth>` under a tiny `SKELCL_DEVICE_BUDGET`) must be
//! bit-identical to the non-streamed oracle (`SKELCL_STREAM=0`) across
//! random data, ring depths, 1–4 devices and every rewrite rule
//! (chain, reduce-weld, stencil, scan-offset) — the default `SKELCL_PLAN`
//! enables them all, so each shape exercises its rule's streamed lowering.
//!
//! The env gates are process-global, so this binary holds exactly one
//! test; the proptest runner executes cases sequentially within it.

use proptest::prelude::*;

use skelcl::{
    BoundaryHandling, Context, DeviceSelection, Map, MapOverlapVec, Reduce, Scan, Vector,
};
use vgpu::{DeviceSpec, Platform};

/// Runs pipeline `shape` over `data` on `devices` devices under the
/// current `SKELCL_STREAM`, returning the result's bit patterns.
fn run(shape: u8, data: &[f32], devices: usize) -> Vec<u32> {
    let ctx = Context::init(
        Platform::new(devices, DeviceSpec::tesla_t10()),
        DeviceSelection::All,
    );
    let v = Vector::from_vec(&ctx, data.to_vec());
    let sq: Map<f32, f32> = Map::new(&ctx, "float sq(float x){ return x * x; }").unwrap();
    let neg: Map<f32, f32> = Map::new(&ctx, "float neg(float x){ return -x; }").unwrap();
    let sum: Reduce<f32> =
        Reduce::new(&ctx, "float sum(float x, float y){ return x + y; }").unwrap();
    let blur: MapOverlapVec<f32, f32> = MapOverlapVec::new(
        &ctx,
        "float blur(const float* v){ return get(v,-1) + get(v,0) + get(v,1); }",
        1,
        BoundaryHandling::Neutral(0.25),
    )
    .unwrap();
    let scan: Scan<f32> = Scan::new(&ctx, "float add(float x, float y){ return x + y; }").unwrap();

    let bits =
        |v: Vector<f32>| -> Vec<u32> { v.to_vec().unwrap().iter().map(|x| x.to_bits()).collect() };
    match shape {
        // Elementwise chain (chain rule) → streamed fused region.
        0 => bits(
            neg.lazy(&sq.lazy(&v.expr()).unwrap())
                .unwrap()
                .eval()
                .unwrap(),
        ),
        // Map welded into reduce (reduce-weld rule) → streamed reduction.
        1 => vec![sum
            .call_fused(&sq.lazy(&v.expr()).unwrap())
            .unwrap()
            .value()
            .to_bits()],
        // Map fused into a stencil, consumed by a map (stencil rule) →
        // halo-aware streamed chunks.
        2 => bits(
            neg.lazy(&blur.lazy(&sq.lazy(&v.expr()).unwrap()).unwrap())
                .unwrap()
                .eval()
                .unwrap(),
        ),
        // Scan offsets folded into a downstream map (scan-offset rule) →
        // streaming pre-applies the cross-chunk offset state.
        3 => bits(sq.lazy(&scan.lazy(&v).unwrap()).unwrap().eval().unwrap()),
        // All rules at once: map → stencil → reduce.
        4 => vec![sum
            .call_fused(&blur.lazy(&sq.lazy(&v.expr()).unwrap()).unwrap())
            .unwrap()
            .value()
            .to_bits()],
        // Scan offsets folded into the reduce weld prologue.
        _ => vec![sum
            .call_fused(&scan.lazy(&v).unwrap())
            .unwrap()
            .value()
            .to_bits()],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streamed_is_bit_identical_to_oracle(
        data in proptest::collection::vec(any::<f32>(), 1..2500),
        devices in 1usize..=4,
        shape in 0u8..6,
        depth in 2usize..=4,
    ) {
        // A budget far below the shares' working sets, so every region
        // large enough to chunk (≥ the 256-unit floor) streams.
        std::env::set_var("SKELCL_DEVICE_BUDGET", "8192");
        std::env::set_var("SKELCL_STREAM", "0");
        let oracle = run(shape, &data, devices);
        std::env::set_var("SKELCL_STREAM", depth.to_string());
        let streamed = run(shape, &data, devices);
        std::env::remove_var("SKELCL_STREAM");
        std::env::remove_var("SKELCL_DEVICE_BUDGET");
        prop_assert_eq!(
            streamed,
            oracle,
            "shape {} on {} device(s), depth {}",
            shape,
            devices,
            depth
        );
    }
}
