//! EXT-SCALE companion: skeleton execution across 1–4 virtual GPUs (paper
//! §3.2's scalability motivation).
//!
//! Note on the metric: the **simulated makespan** (the paper's quantity)
//! shrinks with the device count and is printed by the `scaling` binary.
//! This criterion bench measures the simulator's **wall time**, which is
//! bound by the total interpreted work (constant across device counts,
//! already spread over all host cores) — it tracks simulator overhead per
//! device, not the paper's speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skelcl::{Context, DeviceSelection, Map, Value, Vector};
use vgpu::{DeviceSpec, Platform};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_map");
    group.sample_size(10);
    let n = 1 << 16;
    for devices in [1usize, 2, 4] {
        let ctx = Context::init(
            Platform::new(devices, DeviceSpec::tesla_t10()),
            DeviceSelection::All,
        );
        let map: Map<f32, f32> = Map::new(
            &ctx,
            "float f(float x, float k){
                 float acc = x;
                 for (int i = 0; i < 32; ++i) acc = acc * 0.999f + k;
                 return acc;
             }",
        )
        .unwrap();
        let v = Vector::from_fn(&ctx, n, |i| i as f32);
        // Materialise once so the bench isolates kernel execution.
        let _ = map.call_with(&v, &[Value::F32(0.5)]).unwrap();
        group.bench_function(BenchmarkId::new("gpus", devices), |b| {
            b.iter(|| map.call_with(&v, &[Value::F32(0.5)]).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
