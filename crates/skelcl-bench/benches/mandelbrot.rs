//! FIG4-TIME: Mandelbrot runtime — CUDA-style vs OpenCL-style vs SkelCL
//! (paper Fig. 4b). Criterion measures the simulator's wall time; the
//! paper-shape comparison (simulated seconds) is printed by the
//! `fig4_mandelbrot` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skelcl_bench::baselines::{mandelbrot_cuda, mandelbrot_opencl, mandelbrot_skelcl};

fn bench_mandelbrot(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_mandelbrot");
    group.sample_size(10);
    let (w, h, it) = (128usize, 96usize, 64);

    group.bench_function(BenchmarkId::new("cuda", format!("{w}x{h}")), |b| {
        b.iter(|| mandelbrot_cuda::run(w, h, it).unwrap())
    });
    group.bench_function(BenchmarkId::new("opencl", format!("{w}x{h}")), |b| {
        b.iter(|| mandelbrot_opencl::run(w, h, it).unwrap())
    });
    group.bench_function(BenchmarkId::new("skelcl", format!("{w}x{h}")), |b| {
        b.iter(|| mandelbrot_skelcl::run(w, h, it).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_mandelbrot);
criterion_main!(benches);
