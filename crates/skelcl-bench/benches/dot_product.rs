//! LOC-DOT companion: dot-product runtime — hand-written OpenCL style vs
//! SkelCL's `Zip` + `Reduce` composition (paper §3.3 compares their code
//! sizes; this bench shows the performance cost of the abstraction is
//! small).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skelcl_bench::baselines::{dot_opencl, dot_skelcl};
use skelcl_bench::workloads::random_f32_vector;

fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot_product");
    group.sample_size(10);
    for n in [1 << 12, 1 << 16] {
        let a = random_f32_vector(n, 21);
        let b = random_f32_vector(n, 22);
        group.bench_function(BenchmarkId::new("opencl", n), |bch| {
            bch.iter(|| dot_opencl::run(&a, &b).unwrap())
        });
        group.bench_function(BenchmarkId::new("skelcl", n), |bch| {
            bch.iter(|| dot_skelcl::run(&a, &b).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dot);
criterion_main!(benches);
