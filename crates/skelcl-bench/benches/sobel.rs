//! FIG5: Sobel kernel runtime — AMD-style (global memory) vs NVIDIA-style
//! (local memory) vs SkelCL MapOverlap (paper Fig. 5). The paper-shape
//! table (simulated kernel-only milliseconds) is printed by the
//! `fig5_sobel` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skelcl_bench::baselines::{sobel_amd, sobel_nvidia, sobel_skelcl};
use skelcl_bench::workloads::synthetic_image;

fn bench_sobel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_sobel");
    group.sample_size(10);
    let (w, h) = (128usize, 128usize);
    let img = synthetic_image(w, h);

    group.bench_function(BenchmarkId::new("opencl_amd", format!("{w}x{h}")), |b| {
        b.iter(|| sobel_amd::run(&img, w, h).unwrap())
    });
    group.bench_function(BenchmarkId::new("opencl_nvidia", format!("{w}x{h}")), |b| {
        b.iter(|| sobel_nvidia::run(&img, w, h).unwrap())
    });
    group.bench_function(BenchmarkId::new("skelcl", format!("{w}x{h}")), |b| {
        b.iter(|| sobel_skelcl::run(&img, w, h).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_sobel);
criterion_main!(benches);
