//! DESIGN.md ablation 4: lazy (implicit) transfers vs pre-resident data.
//! A cold call pays the host→device upload before the kernel; a warm call
//! reuses the resident buffers (the paper's containers keep data on the
//! GPUs between skeleton calls).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skelcl::{Context, Distribution, Map, Vector};

fn bench_lazy_transfers(c: &mut Criterion) {
    let mut group = c.benchmark_group("lazy_transfers");
    group.sample_size(10);
    let n = 1 << 16;

    // Cold: a fresh vector every iteration -> implicit upload + kernel.
    group.bench_function(BenchmarkId::new("cold_upload_each_call", n), |b| {
        let ctx = Context::single_gpu();
        let map: Map<f32, f32> = Map::new(&ctx, "float f(float x){ return x * 2.0f; }").unwrap();
        b.iter(|| {
            let v = Vector::from_fn(&ctx, n, |i| i as f32);
            map.call(&v).unwrap()
        })
    });

    // Warm: the input stays resident; only the kernel runs per iteration.
    group.bench_function(BenchmarkId::new("warm_resident_data", n), |b| {
        let ctx = Context::single_gpu();
        let map: Map<f32, f32> = Map::new(&ctx, "float f(float x){ return x * 2.0f; }").unwrap();
        let v = Vector::from_fn(&ctx, n, |i| i as f32);
        v.prefetch(Distribution::Block).unwrap();
        b.iter(|| map.call(&v).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_lazy_transfers);
criterion_main!(benches);
