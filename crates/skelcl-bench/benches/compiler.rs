//! Compiler-substrate bench: runtime compilation speed of SkelCL C
//! kernels (SkelCL compiles generated sources at skeleton-construction
//! time, like `clBuildProgram`).

use criterion::{criterion_group, criterion_main, Criterion};

const SMALL: &str = "float func(float x){ return -x; }
__kernel void map(__global const float* in, __global float* out, int n) {
    int i = (int)get_global_id(0);
    if (i < n) out[i] = func(in[i]);
}";

const LARGE: &str = r#"
float poly(float x) {
    float acc = 0.0f;
    for (int i = 0; i < 8; ++i) acc = acc * x + (float)i;
    return acc;
}
float blend(float a, float b, float t) { return a * (1.0f - t) + b * t; }
__kernel void pipeline(__global const float* in, __global float* out,
                       __local float* tile, int n, float t) {
    int lid = (int)get_local_id(0);
    int gid = (int)get_global_id(0);
    if (gid < n) tile[lid] = poly(in[gid]);
    barrier(CLK_LOCAL_MEM_FENCE);
    float left = lid > 0 ? tile[lid - 1] : tile[lid];
    float right = lid < (int)get_local_size(0) - 1 ? tile[lid + 1] : tile[lid];
    if (gid < n) out[gid] = blend(left, right, t) + sqrt(fabs(tile[lid]));
}
"#;

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_compile");
    group.bench_function("small_map", |b| {
        b.iter(|| skelcl_kernel::compile("small.cl", SMALL).unwrap())
    });
    group.bench_function("barrier_pipeline", |b| {
        b.iter(|| skelcl_kernel::compile("large.cl", LARGE).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
