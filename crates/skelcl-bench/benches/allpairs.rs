//! EXT-ALLPAIRS: the Allpairs skeleton (paper §3.5) — generic row-function
//! form vs the zip-reduce specialisation with local-memory tiling, over a
//! matrix-multiplication sweep (DESIGN.md ablation 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skelcl::{transpose, Allpairs, Context, Matrix};

fn bench_allpairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("allpairs_matmul");
    group.sample_size(10);

    for size in [32usize, 64] {
        let (n, d, m) = (size, size, size);
        let ctx = Context::single_gpu();
        let generic: Allpairs<f32, f32> = Allpairs::new(
            &ctx,
            "float dotp(const float* a, const float* b, int d){
                 float s = 0.0f;
                 for (int k = 0; k < d; ++k) s += a[k] * b[k];
                 return s;
             }",
        )
        .unwrap();
        let tiled: Allpairs<f32, f32> = Allpairs::zip_reduce(
            &ctx,
            "float mul(float x, float y){ return x * y; }",
            "float add(float x, float y){ return x + y; }",
        )
        .unwrap();
        let a = Matrix::from_fn(&ctx, n, d, |r, cc| ((r + cc) % 7) as f32);
        let b = Matrix::from_fn(&ctx, d, m, |r, cc| ((r * cc) % 5) as f32);
        let bt = transpose(&b).unwrap();

        group.bench_function(BenchmarkId::new("generic", size), |bch| {
            bch.iter(|| generic.call(&a, &bt).unwrap())
        });
        group.bench_function(BenchmarkId::new("zip_reduce_tiled", size), |bch| {
            bch.iter(|| tiled.call(&a, &bt).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allpairs);
criterion_main!(benches);
