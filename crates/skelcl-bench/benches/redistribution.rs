//! EXT-REDIST: runtime redistribution cost (paper §3.2: changing a
//! container's distribution moves data between the GPUs via the CPU,
//! implicitly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skelcl::{Context, DeviceSelection, Distribution, Vector};
use vgpu::{DeviceSpec, Platform};

fn ctx4() -> Context {
    Context::init(
        Platform::new(4, DeviceSpec::tesla_t10()),
        DeviceSelection::All,
    )
}

fn bench_redistribution(c: &mut Criterion) {
    let mut group = c.benchmark_group("redistribution");
    group.sample_size(10);
    for n in [1usize << 14, 1 << 18] {
        let ctx = ctx4();
        let v = Vector::from_fn(&ctx, n, |i| i as f32);
        group.bench_function(BenchmarkId::new("block_to_copy_roundtrip", n), |b| {
            b.iter(|| {
                v.set_distribution(Distribution::Block).unwrap();
                v.prefetch(Distribution::Block).unwrap();
                v.set_distribution(Distribution::Copy).unwrap();
                v.prefetch(Distribution::Copy).unwrap();
            })
        });
        group.bench_function(BenchmarkId::new("block_to_overlap", n), |b| {
            b.iter(|| {
                v.set_distribution(Distribution::Block).unwrap();
                v.prefetch(Distribution::Block).unwrap();
                v.set_distribution(Distribution::Overlap { size: 64 })
                    .unwrap();
                v.prefetch(Distribution::Overlap { size: 64 }).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_redistribution);
criterion_main!(benches);
