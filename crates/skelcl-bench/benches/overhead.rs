//! EXT-OVERHEAD: per-skeleton abstraction overhead — each skeleton against
//! a hand-rolled kernel doing the same work on the same device (paper
//! §4.1's "overhead of less than 5%" claim, isolated per skeleton).

use criterion::{criterion_group, criterion_main, Criterion};
use skelcl::engine::LaunchPlan;
use skelcl::{Context, DeviceSelection, Map, Reduce, Vector, Zip};
use skelcl_kernel::value::Value;
use skelcl_profile::{FlightRecorder, Profiler};
use vgpu::{DeviceSpec, KernelArg, LaunchConfig, NdRange, Platform};

const N: usize = 1 << 14;

fn bench_map_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead_map");
    group.sample_size(10);

    // Hand-rolled kernel on a raw queue.
    let program = skelcl_kernel::compile(
        "raw.cl",
        "__kernel void scale(__global const float* in, __global float* out, int n) {
             int i = (int)get_global_id(0);
             if (i < n) out[i] = in[i] * 2.0f + 1.0f;
         }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let a = queue.create_buffer(4 * N).unwrap();
    let b = queue.create_buffer(4 * N).unwrap();
    let bytes: Vec<u8> = (0..N).flat_map(|i| (i as f32).to_le_bytes()).collect();
    queue.enqueue_write(&a, 0, &bytes).unwrap();
    group.bench_function("raw_kernel", |bch| {
        bch.iter(|| {
            queue
                .launch_kernel(
                    &program,
                    "scale",
                    &[
                        KernelArg::Buffer(a.clone()),
                        KernelArg::Buffer(b.clone()),
                        KernelArg::Scalar(Value::I32(N as i32)),
                    ],
                    NdRange::linear_default(N),
                    &LaunchConfig::default(),
                )
                .unwrap()
        })
    });

    // The same computation via the Map skeleton.
    let ctx = Context::single_gpu();
    let map: Map<f32, f32> = Map::new(&ctx, "float f(float x){ return x * 2.0f + 1.0f; }").unwrap();
    let v = Vector::from_fn(&ctx, N, |i| i as f32);
    let _ = map.call(&v).unwrap(); // upload once
    group.bench_function("map_skeleton", |bch| b_iter_map(bch, &map, &v));
    group.finish();
}

fn b_iter_map(bch: &mut criterion::Bencher, map: &Map<f32, f32>, v: &Vector<f32>) {
    bch.iter(|| map.call(v).unwrap())
}

fn bench_zip_reduce_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead_zip_reduce");
    group.sample_size(10);
    let ctx = Context::single_gpu();
    let zip: Zip<f32, f32, f32> =
        Zip::new(&ctx, "float f(float x, float y){ return x * y; }").unwrap();
    let sum: Reduce<f32> = Reduce::new(&ctx, "float f(float x, float y){ return x + y; }").unwrap();
    let a = Vector::from_fn(&ctx, N, |i| (i % 97) as f32);
    let b = Vector::from_fn(&ctx, N, |i| (i % 89) as f32);
    group.bench_function("zip", |bch| bch.iter(|| zip.call(&a, &b).unwrap()));
    let prod = zip.call(&a, &b).unwrap();
    group.bench_function("reduce", |bch| bch.iter(|| sum.call(&prod).unwrap()));
    group.finish();
}

const SCALE_SRC: &str = "__kernel void scale(__global float* buf, int n) {
         int i = (int)get_global_id(0);
         if (i < n) buf[i] = buf[i] * 2.0f + 1.0f;
     }";

fn bench_async_engine_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead_async");
    group.sample_size(10);
    let devices = 4usize;
    let ctx = Context::init(
        Platform::new(devices, DeviceSpec::tesla_t10()),
        DeviceSelection::All,
    );
    let program = skelcl_kernel::compile("scale.cl", SCALE_SRC).unwrap();
    let bytes: Vec<u8> = (0..N).flat_map(|i| (i as f32).to_le_bytes()).collect();
    let buffers: Vec<_> = (0..devices)
        .map(|d| ctx.queue(d).create_buffer(4 * N).unwrap())
        .collect();
    let args = |d: usize| {
        vec![
            KernelArg::Buffer(buffers[d].clone()),
            KernelArg::Scalar(Value::I32(N as i32)),
        ]
    };

    // Host serializes on every command: each blocking call waits for the
    // device before the next device's work can even be enqueued.
    group.bench_function("blocking_queues", |bch| {
        bch.iter(|| {
            for (d, buffer) in buffers.iter().enumerate() {
                let queue = ctx.queue(d);
                queue.enqueue_write(buffer, 0, &bytes).unwrap();
                queue
                    .launch_kernel(
                        &program,
                        "scale",
                        &args(d),
                        NdRange::linear_default(N),
                        &LaunchConfig::default(),
                    )
                    .unwrap();
            }
        })
    });

    // The same upload+kernel per device as one declarative plan: every
    // queue works concurrently, the host blocks once at the end.
    group.bench_function("async_plan", |bch| {
        bch.iter(|| {
            let mut plan = LaunchPlan::new();
            for (d, buffer) in buffers.iter().enumerate() {
                let write = plan.write(d, buffer, 0, bytes.clone(), &[]);
                plan.kernel(
                    d,
                    &program,
                    "scale",
                    args(d),
                    NdRange::linear_default(N),
                    0,
                    &[write],
                );
            }
            let run = plan.execute(&ctx).unwrap();
            run.wait().unwrap();
        })
    });
    group.finish();
}

fn bench_flight_recorder_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead_flight_recorder");
    group.sample_size(10);
    let program = skelcl_kernel::compile("scale.cl", SCALE_SRC).unwrap();
    let bytes: Vec<u8> = (0..N).flat_map(|i| (i as f32).to_le_bytes()).collect();

    // Baseline: one pooled launch on a queue with no observer installed.
    {
        let platform = Platform::single(DeviceSpec::tesla_t10());
        let queue = platform.queue(0);
        let buf = queue.create_buffer(4 * N).unwrap();
        queue.enqueue_write(&buf, 0, &bytes).unwrap();
        let args = [
            KernelArg::Buffer(buf),
            KernelArg::Scalar(Value::I32(N as i32)),
        ];
        group.bench_function("no_observer", |bch| {
            bch.iter(|| {
                queue
                    .launch_kernel(
                        &program,
                        "scale",
                        &args,
                        NdRange::linear_default(N),
                        &LaunchConfig::default(),
                    )
                    .unwrap()
            })
        });
    }

    // Same launch with the flight recorder riding the queue observer (the
    // `SKELCL_FLIGHT` configuration): three ring writes per command.
    {
        let platform = Platform::single(DeviceSpec::tesla_t10());
        let queue = platform.queue(0);
        let flight = FlightRecorder::with_capacity(1 << 12);
        flight.attach_queue(&Profiler::disabled(), &queue);
        let buf = queue.create_buffer(4 * N).unwrap();
        queue.enqueue_write(&buf, 0, &bytes).unwrap();
        let args = [
            KernelArg::Buffer(buf),
            KernelArg::Scalar(Value::I32(N as i32)),
        ];
        group.bench_function("flight_recorder", |bch| {
            bch.iter(|| {
                queue
                    .launch_kernel(
                        &program,
                        "scale",
                        &args,
                        NdRange::linear_default(N),
                        &LaunchConfig::default(),
                    )
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_map_overhead,
    bench_zip_reduce_overhead,
    bench_async_engine_overhead,
    bench_flight_recorder_overhead
);
criterion_main!(benches);
