//! # skelcl-bench — workloads, baselines and harnesses reproducing the
//! SkelCL paper's evaluation (Section 4)
//!
//! * [`workloads`] — synthetic inputs (images, vectors, matrices);
//! * [`baselines`] — CUDA-style, OpenCL-style and SkelCL implementations
//!   of the paper's applications, each in a self-contained source file so
//!   lines of code can be counted like the paper counts SDK samples;
//! * [`loc`] — the LoC counter and the paper's reported numbers;
//! * [`overlap`] — transfer/compute overlap analysis over profiler spans
//!   (how much transfer time the async queues hid behind other devices'
//!   kernels);
//! * [`report`] — the `BENCH_*.json` machine-readable reports the figure
//!   binaries emit alongside their tables;
//! * [`gate`] — the regression rules `bench_gate` applies when diffing
//!   fresh reports against the committed baselines in `bench/baselines/`.
//!
//! Binaries (see `src/bin/`): `fig4_mandelbrot`, `fig5_sobel`, `loc_table`
//! and `scaling` regenerate the paper's figures; `bench_gate` diffs their
//! reports against committed baselines; criterion benches under `benches/`
//! measure the same workloads.

#![warn(missing_docs)]

pub mod baselines;
pub mod gate;
pub mod loc;
pub mod overlap;
pub mod report;
pub mod workloads;
