//! Workload generators for the paper's experiments.
//!
//! The paper uses the 512×512 "Lena" photograph for Sobel (Fig. 5); image
//! content does not affect kernel runtime, so a procedurally generated
//! image of the same size substitutes for it (see DESIGN.md).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default seed for reproducible workloads.
pub const SEED: u64 = 0x5ce1_c1ab;

/// The paper's Mandelbrot configuration (Fig. 4): 4096×3072 pixels.
pub const MANDELBROT_FULL: (usize, usize) = (4096, 3072);

/// The paper's Sobel configuration (Fig. 5): the 512×512 Lena image.
pub const SOBEL_FULL: (usize, usize) = (512, 512);

/// A synthetic grayscale test image: smooth gradients plus blocky regions
/// and speckle noise, giving Sobel plenty of edges (a stand-in for Lena).
pub fn synthetic_image(width: usize, height: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut img = vec![0u8; width * height];
    for y in 0..height {
        for x in 0..width {
            let gradient = (x * 255 / width.max(1)) as i32;
            let blocks = if ((x / 32) + (y / 32)) % 2 == 0 {
                64
            } else {
                -64
            };
            let noise: i32 = rng.gen_range(-8..=8);
            let ring = {
                let dx = x as f64 - width as f64 / 2.0;
                let dy = y as f64 - height as f64 / 2.0;
                let r = (dx * dx + dy * dy).sqrt();
                if (r as usize / 24).is_multiple_of(2) {
                    32
                } else {
                    -32
                }
            };
            img[y * width + x] = (gradient + blocks + noise + ring).clamp(0, 255) as u8;
        }
    }
    img
}

/// A random `f32` vector in `[-1, 1)`.
pub fn random_f32_vector(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// A random row-major `f32` matrix in `[-1, 1)`.
pub fn random_f32_matrix(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
    random_f32_vector(rows * cols, seed)
}

/// Host reference Sobel edge detection with clamped (nearest) boundaries,
/// matching the paper's kernels (used to verify every implementation).
pub fn sobel_reference(img: &[u8], width: usize, height: usize) -> Vec<u8> {
    let px = |x: isize, y: isize| -> i32 {
        let xc = x.clamp(0, width as isize - 1) as usize;
        let yc = y.clamp(0, height as isize - 1) as usize;
        img[yc * width + xc] as i32
    };
    let mut out = vec![0u8; width * height];
    for y in 0..height as isize {
        for x in 0..width as isize {
            let h = -px(x - 1, y - 1) + px(x + 1, y - 1) - 2 * px(x - 1, y) + 2 * px(x + 1, y)
                - px(x - 1, y + 1)
                + px(x + 1, y + 1);
            let v = -px(x - 1, y - 1) - 2 * px(x, y - 1) - px(x + 1, y - 1)
                + px(x - 1, y + 1)
                + 2 * px(x, y + 1)
                + px(x + 1, y + 1);
            let mag = ((h * h + v * v) as f32).sqrt() as i32;
            out[y as usize * width + x as usize] = mag.clamp(0, 255) as u8;
        }
    }
    out
}

/// Host reference Mandelbrot: iteration count scaled to a byte, matching
/// the GPU kernels bit-for-bit when evaluated in `f32`.
pub fn mandelbrot_reference(width: usize, height: usize, max_iter: i32) -> Vec<u8> {
    let mut out = vec![0u8; width * height];
    for py in 0..height {
        for px in 0..width {
            let cr = 3.5f32 * px as f32 / width as f32 - 2.5;
            let ci = 3.0f32 * py as f32 / height as f32 - 1.5;
            let mut zr = 0.0f32;
            let mut zi = 0.0f32;
            let mut it = 0i32;
            while zr * zr + zi * zi <= 4.0 && it < max_iter {
                let t = zr * zr - zi * zi + cr;
                zi = 2.0 * zr * zi + ci;
                zr = t;
                it += 1;
            }
            out[py * width + px] = (255 * it / max_iter) as u8;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_is_deterministic_and_textured() {
        let a = synthetic_image(64, 64);
        let b = synthetic_image(64, 64);
        assert_eq!(a, b, "seeded generation is reproducible");
        let distinct: std::collections::HashSet<u8> = a.iter().copied().collect();
        assert!(
            distinct.len() > 20,
            "image has texture: {} levels",
            distinct.len()
        );
    }

    #[test]
    fn sobel_reference_finds_edges() {
        // A vertical step edge produces strong responses along the step.
        let w = 16;
        let img: Vec<u8> = (0..w * w)
            .map(|i| if i % w < w / 2 { 0 } else { 200 })
            .collect();
        let out = sobel_reference(&img, w, w);
        let edge_col = w / 2;
        assert!(out[8 * w + edge_col] > 100, "edge detected");
        assert_eq!(out[8 * w + 2], 0, "flat area is black");
    }

    #[test]
    fn mandelbrot_reference_has_interior_and_exterior() {
        let img = mandelbrot_reference(32, 24, 64);
        assert!(img.contains(&255));
        assert!(img.iter().any(|&p| p < 255));
    }

    #[test]
    fn random_vectors_reproducible() {
        assert_eq!(random_f32_vector(10, 1), random_f32_vector(10, 1));
        assert_ne!(random_f32_vector(10, 1), random_f32_vector(10, 2));
    }
}
