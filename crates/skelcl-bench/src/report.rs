//! Machine-readable benchmark reports.
//!
//! Every figure binary ends by writing a self-describing
//! `BENCH_<name>.json` (schema `skelcl-bench-report/1`, built with
//! [`skelcl_profile::report::bench_report`]) next to the human-readable
//! table it prints, so runs can be diffed and regression-gated without
//! scraping stdout. `SKELCL_BENCH_DIR` overrides the output directory
//! (default: current directory).

use std::path::PathBuf;

use skelcl::{Context, DeviceSelection, Profiler};
use skelcl_profile::json::Json;
use vgpu::{DeviceSpec, Platform};

/// Directory benchmark reports are written to: `SKELCL_BENCH_DIR` if set,
/// else the current directory.
pub fn out_dir() -> PathBuf {
    std::env::var_os("SKELCL_BENCH_DIR").map_or_else(|| PathBuf::from("."), PathBuf::from)
}

/// Writes `report` to `BENCH_<name>.json` in [`out_dir`] and returns the
/// path.
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be written.
pub fn write_report(name: &str, report: &Json) -> std::io::Result<PathBuf> {
    let path = out_dir().join(format!("BENCH_{name}.json"));
    std::fs::write(&path, report.to_json())?;
    Ok(path)
}

/// A context with profiling force-enabled, for the instrumented SkelCL run
/// each figure binary reports metrics from. Simulated device timelines are
/// unaffected by the (host-side) profiler.
pub fn profiled_ctx(devices: usize) -> Context {
    Context::init_with_profiler(
        Platform::new(devices, DeviceSpec::tesla_t10()),
        DeviceSelection::All,
        Profiler::enabled(),
    )
}

/// Duration in fractional milliseconds, as a JSON number.
pub fn ms(d: std::time::Duration) -> Json {
    Json::Num(d.as_secs_f64() * 1e3)
}
