//! Benchmark regression gate: diffs a freshly generated `BENCH_*.json`
//! report against a committed baseline.
//!
//! The virtual platform is deterministic, so most drift is a real change
//! in behaviour rather than noise. The rules, from strictest to loosest:
//!
//! * **byte counters** (`metrics.counters.*`) must match exactly — a
//!   transfer that moves one extra byte is a coherence-protocol change;
//! * **booleans** that are `true` in the baseline (shape flags such as
//!   `shape_reproduced` or `balanced`) must stay `true`;
//! * **strings** must match exactly (schema, params, names);
//! * **numbers** (kernel milliseconds, speedups, imbalance ratios,
//!   histogram stats) must stay within a relative tolerance;
//! * **host-measured numbers** (any path containing `.host.`) are checked
//!   for presence and type only — real wall-clock depends on the machine
//!   and its load, so comparing values across machines would make the gate
//!   flake; the shape *conclusions* drawn from them (e.g.
//!   `fast_at_least_2x`) live outside `.host.` as gated booleans;
//! * a key present in the baseline but **missing** from the fresh report
//!   is a regression; extra keys in the fresh report are fine (schema
//!   growth is not a regression).

use skelcl_profile::json::Json;

/// Tunables for [`diff_reports`].
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Maximum relative deviation allowed for numeric fields.
    pub rel_tolerance: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            rel_tolerance: 0.10,
        }
    }
}

/// Compares `fresh` against `baseline` and returns one human-readable
/// violation per regressed field (empty means the gate passes).
pub fn diff_reports(name: &str, baseline: &Json, fresh: &Json, cfg: &GateConfig) -> Vec<String> {
    let mut out = Vec::new();
    walk(name, baseline, fresh, cfg, &mut out);
    out
}

fn walk(path: &str, baseline: &Json, fresh: &Json, cfg: &GateConfig, out: &mut Vec<String>) {
    match (baseline, fresh) {
        (Json::Obj(fields), Json::Obj(_)) => {
            for (key, base_val) in fields {
                let sub = format!("{path}.{key}");
                match fresh.get(key) {
                    Some(fresh_val) => walk(&sub, base_val, fresh_val, cfg, out),
                    None => out.push(format!("{sub}: missing from fresh report")),
                }
            }
        }
        (Json::Arr(b), Json::Arr(f)) => {
            if b.len() != f.len() {
                out.push(format!(
                    "{path}: array length changed ({} -> {})",
                    b.len(),
                    f.len()
                ));
                return;
            }
            for (i, (bv, fv)) in b.iter().zip(f).enumerate() {
                walk(&format!("{path}[{i}]"), bv, fv, cfg, out);
            }
        }
        (Json::Num(b), Json::Num(f)) => {
            if loose_path(path) {
                // Presence and type already established by the match.
            } else if exact_path(path) {
                if b != f {
                    out.push(format!("{path}: expected exactly {b}, got {f}"));
                }
            } else {
                let scale = b.abs().max(1e-12);
                let rel = (f - b).abs() / scale;
                if rel > cfg.rel_tolerance {
                    out.push(format!(
                        "{path}: {f} deviates {:.1}% from baseline {b} (tolerance {:.0}%)",
                        rel * 100.0,
                        cfg.rel_tolerance * 100.0
                    ));
                }
            }
        }
        (Json::Bool(b), Json::Bool(f)) => {
            // Only a true->false flip is a regression; a flag the baseline
            // already failed cannot regress further.
            if *b && !f {
                out.push(format!("{path}: baseline-true flag became false"));
            }
        }
        (Json::Str(b), Json::Str(f)) => {
            if b != f {
                out.push(format!("{path}: expected {b:?}, got {f:?}"));
            }
        }
        (Json::Null, Json::Null) => {}
        (b, f) => out.push(format!(
            "{path}: type changed ({} -> {})",
            type_name(b),
            type_name(f)
        )),
    }
}

/// Deterministic-exact fields: every profiler counter (byte counts, call
/// counts, cache hits) — the simulator makes them reproducible bit for
/// bit, so any drift is a behaviour change.
fn exact_path(path: &str) -> bool {
    path.contains(".metrics.counters.")
}

/// Machine-dependent fields: real host wall-clock (as opposed to the
/// simulator's deterministic nanoseconds) varies with the machine and its
/// load. Reports nest such numbers under a `host` object; the gate checks
/// they are still emitted but never compares their values.
fn loose_path(path: &str) -> bool {
    path.contains(".host.")
}

fn type_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Json {
        Json::parse(
            r#"{
                "schema": "skelcl-bench-report/1",
                "name": "scaling",
                "results": {
                    "mandelbrot_kernel_ms": 0.125,
                    "speedup": 3.98,
                    "shape_reproduced": true,
                    "rows": [{"devices": 1}, {"devices": 2}]
                },
                "metrics": {"counters": {"bytes.h2d": 786432, "skeleton.calls": 4}}
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn identical_reports_pass() {
        let r = report();
        assert!(diff_reports("scaling", &r, &r, &GateConfig::default()).is_empty());
    }

    #[test]
    fn jitter_within_tolerance_passes() {
        let base = report();
        let fresh = Json::parse(
            &base
                .to_json()
                .replace("0.125", "0.130")
                .replace("3.98", "3.90"),
        )
        .unwrap();
        assert!(diff_reports("scaling", &base, &fresh, &GateConfig::default()).is_empty());
    }

    #[test]
    fn injected_slowdown_fails() {
        let base = report();
        // 2x kernel time: far outside the 10% band.
        let fresh = Json::parse(&base.to_json().replace("0.125", "0.250")).unwrap();
        let violations = diff_reports("scaling", &base, &fresh, &GateConfig::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("mandelbrot_kernel_ms"));
    }

    #[test]
    fn byte_counters_are_exact() {
        let base = report();
        // One extra byte transferred: within any tolerance, still a failure.
        let fresh = Json::parse(&base.to_json().replace("786432", "786433")).unwrap();
        let violations = diff_reports("scaling", &base, &fresh, &GateConfig::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("bytes.h2d"));
        assert!(violations[0].contains("exactly"));
    }

    #[test]
    fn shape_flag_must_stay_true() {
        let base = report();
        let fresh = Json::parse(&base.to_json().replace("true", "false")).unwrap();
        let violations = diff_reports("scaling", &base, &fresh, &GateConfig::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("shape_reproduced"));
    }

    #[test]
    fn missing_key_and_shorter_array_fail() {
        let base = report();
        let fresh = Json::parse(
            r#"{
                "schema": "skelcl-bench-report/1",
                "name": "scaling",
                "results": {
                    "speedup": 3.98,
                    "shape_reproduced": true,
                    "rows": [{"devices": 1}]
                },
                "metrics": {"counters": {"bytes.h2d": 786432, "skeleton.calls": 4}}
            }"#,
        )
        .unwrap();
        let violations = diff_reports("scaling", &base, &fresh, &GateConfig::default());
        assert!(violations.iter().any(|v| v.contains("missing")));
        assert!(violations.iter().any(|v| v.contains("array length")));
    }

    fn host_report() -> Json {
        Json::parse(
            r#"{
                "schema": "skelcl-bench-report/1",
                "name": "interp",
                "results": {
                    "fast_at_least_2x": true,
                    "host": {"fast_wall_ms": 120.0, "lockstep_wall_ms": 310.0}
                }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn host_wall_clock_values_are_not_compared() {
        let base = host_report();
        // 10x slower wall-clock: a loaded CI machine, not a regression.
        let fresh = Json::parse(
            r#"{
                "schema": "skelcl-bench-report/1",
                "name": "interp",
                "results": {
                    "fast_at_least_2x": true,
                    "host": {"fast_wall_ms": 1200.0, "lockstep_wall_ms": 310.0}
                }
            }"#,
        )
        .unwrap();
        assert!(diff_reports("interp", &base, &fresh, &GateConfig::default()).is_empty());
    }

    #[test]
    fn host_wall_clock_keys_must_stay_present() {
        let base = host_report();
        let fresh = Json::parse(
            r#"{
                "schema": "skelcl-bench-report/1",
                "name": "interp",
                "results": {
                    "fast_at_least_2x": true,
                    "host": {"lockstep_wall_ms": 310.0}
                }
            }"#,
        )
        .unwrap();
        let violations = diff_reports("interp", &base, &fresh, &GateConfig::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("fast_wall_ms"));
        assert!(violations[0].contains("missing"));
    }

    #[test]
    fn conclusions_outside_host_still_gate() {
        let base = host_report();
        let fresh = Json::parse(&base.to_json().replace("true", "false")).unwrap();
        let violations = diff_reports("interp", &base, &fresh, &GateConfig::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("fast_at_least_2x"));
    }

    #[test]
    fn extra_fresh_keys_are_not_regressions() {
        let base = report();
        let fresh = Json::parse(
            &base
                .to_json()
                .replace("\"speedup\"", "\"new_metric\": 1.0, \"speedup\""),
        )
        .unwrap();
        assert!(diff_reports("scaling", &base, &fresh, &GateConfig::default()).is_empty());
    }
}
