//! Sobel edge detection in the style of the NVIDIA SDK sample the paper
//! compares against (§4.2): the work-group cooperatively stages its pixel
//! footprint (16×16 core plus a 1-pixel apron) in **local memory** behind a
//! barrier, then computes the stencil from the fast scratchpad — the
//! optimisation that makes it several times faster than the AMD version in
//! Fig. 5. The paper notes this hand-tuned kernel is 208 lines; the
//! structure below mirrors it.

use std::time::Duration;

use skelcl_kernel::value::Value;
use vgpu::{DeviceSpec, KernelArg, LaunchConfig, NdRange, Platform};

use super::RunResult;

// BEGIN KERNEL
/// The NVIDIA-style tiled Sobel kernel.
pub const KERNEL_SRC: &str = r#"
uchar fetch_clamped(__global const uchar* img, int x, int y, int width, int height)
{
    int xc = clamp(x, 0, width - 1);
    int yc = clamp(y, 0, height - 1);
    return img[yc * width + xc];
}

__kernel void sobel_nvidia(__global const uchar* img, __global uchar* out,
                           int width, int height)
{
    __local uchar tile[18 * 18];
    int lx = (int)get_local_id(0);
    int ly = (int)get_local_id(1);
    int gx = (int)get_global_id(0);
    int gy = (int)get_global_id(1);
    int lsx = (int)get_local_size(0);
    int lsy = (int)get_local_size(1);
    int base_x = (int)get_group_id(0) * lsx - 1;
    int base_y = (int)get_group_id(1) * lsy - 1;

    for (int ty = ly; ty < 18; ty += lsy) {
        for (int tx = lx; tx < 18; tx += lsx) {
            int fx = base_x + tx;
            int fy = base_y + ty;
            tile[ty * 18 + tx] = fetch_clamped(img, fx, fy, width, height);
        }
    }
    barrier(CLK_LOCAL_MEM_FENCE);

    if (gx >= width || gy >= height)
        return;

    int cx = lx + 1;
    int cy = ly + 1;
    int ul = (int)tile[(cy - 1) * 18 + (cx - 1)];
    int um = (int)tile[(cy - 1) * 18 +  cx     ];
    int ur = (int)tile[(cy - 1) * 18 + (cx + 1)];
    int ml = (int)tile[ cy      * 18 + (cx - 1)];
    int mr = (int)tile[ cy      * 18 + (cx + 1)];
    int ll = (int)tile[(cy + 1) * 18 + (cx - 1)];
    int lm = (int)tile[(cy + 1) * 18 +  cx     ];
    int lr = (int)tile[(cy + 1) * 18 + (cx + 1)];

    int h = -ul + ur - 2 * ml + 2 * mr - ll + lr;
    int v = -ul - 2 * um - ur + ll + 2 * lm + lr;
    int mag = (int)sqrt((float)(h * h + v * v));
    out[gy * width + gx] = (uchar)(mag > 255 ? 255 : mag);
}
"#;
// END KERNEL

/// Runs the NVIDIA-style Sobel on a single virtual Tesla GPU.
///
/// # Errors
///
/// Propagates platform failures.
///
/// # Panics
///
/// Panics if the constant kernel fails to compile or the image shape is
/// wrong.
pub fn run(img: &[u8], width: usize, height: usize) -> vgpu::Result<RunResult<u8>> {
    assert_eq!(img.len(), width * height, "image shape mismatch");
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let program = skelcl_kernel::compile("sobel_nvidia.cl", KERNEL_SRC).expect("kernel compiles");
    let in_buffer = queue.create_buffer(img.len())?;
    let out_buffer = queue.create_buffer(img.len())?;
    let start_ns = platform.device(0).now_ns();
    queue.enqueue_write(&in_buffer, 0, img)?;
    let event = queue.launch_kernel(
        &program,
        "sobel_nvidia",
        &[
            KernelArg::Buffer(in_buffer),
            KernelArg::Buffer(out_buffer.clone()),
            KernelArg::Scalar(Value::I32(width as i32)),
            KernelArg::Scalar(Value::I32(height as i32)),
        ],
        NdRange::grid([width, height], [16, 16]),
        &LaunchConfig::default(),
    )?;
    let mut output = vec![0u8; img.len()];
    queue.enqueue_read(&out_buffer, 0, &mut output)?;
    let total = Duration::from_nanos(platform.device(0).now_ns() - start_ns);
    Ok(RunResult {
        output,
        total,
        kernel: event.duration(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{sobel_reference, synthetic_image};

    #[test]
    fn matches_host_reference() {
        let (w, h) = (48, 32);
        let img = synthetic_image(w, h);
        let r = run(&img, w, h).unwrap();
        assert_eq!(r.output, sobel_reference(&img, w, h));
    }

    #[test]
    fn beats_amd_version_via_local_memory() {
        // The Fig. 5 effect: tiled local-memory Sobel is much faster than
        // the global-memory AMD version.
        let (w, h) = (128, 128);
        let img = synthetic_image(w, h);
        let nv = run(&img, w, h).unwrap();
        let amd = super::super::sobel_amd::run(&img, w, h).unwrap();
        assert_eq!(nv.output, amd.output, "same result");
        let speedup = amd.kernel.as_secs_f64() / nv.kernel.as_secs_f64();
        assert!(
            speedup > 1.5,
            "local memory should win clearly, got {speedup:.2}x"
        );
    }
}
