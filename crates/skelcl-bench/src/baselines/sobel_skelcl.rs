//! Sobel edge detection with SkelCL (paper §4.2, Listing 1.5): the
//! MapOverlap skeleton with the matrix data type. No index calculations,
//! no boundary checks, no explicit memory management — and the generated
//! kernel still uses local memory, which is why the paper's Fig. 5 shows
//! it matching (slightly beating) the hand-tuned NVIDIA version.

// BEGIN PROGRAM
use std::time::Duration;

use skelcl::{BoundaryHandling, Context, MapOverlap, Matrix};

use super::RunResult;

// BEGIN KERNEL
/// The customizing function — the paper's Listing 1.5, with the nearest
/// boundary handling the SDK samples use.
pub const FUNC_SRC: &str = r#"
uchar func(const uchar* img)
{
    int h = -1 * (int)get(img, -1, -1) + 1 * (int)get(img, +1, -1)
            -2 * (int)get(img, -1,  0) + 2 * (int)get(img, +1,  0)
            -1 * (int)get(img, -1, +1) + 1 * (int)get(img, +1, +1);
    int v = -1 * (int)get(img, -1, -1) - 2 * (int)get(img, 0, -1) - 1 * (int)get(img, +1, -1)
            +1 * (int)get(img, -1, +1) + 2 * (int)get(img, 0, +1) + 1 * (int)get(img, +1, +1);
    int mag = (int)sqrt((float)(h * h + v * v));
    return (uchar)(mag > 255 ? 255 : mag);
}
"#;
// END KERNEL

/// Runs the SkelCL Sobel on `ctx`.
///
/// # Errors
///
/// Propagates SkelCL failures.
///
/// # Panics
///
/// Panics if the image shape is wrong.
pub fn run_on(
    ctx: &Context,
    img: &[u8],
    width: usize,
    height: usize,
) -> skelcl::Result<RunResult<u8>> {
    assert_eq!(img.len(), width * height, "image shape mismatch");
    let m: MapOverlap<u8, u8> = MapOverlap::new(ctx, FUNC_SRC, 1, BoundaryHandling::Nearest)?;
    let input = Matrix::from_vec(ctx, height, width, img.to_vec());
    let start: u64 = ctx
        .queues()
        .iter()
        .map(|q| q.device().now_ns())
        .max()
        .unwrap_or(0);
    let out_img = m.call(&input)?;
    let output = out_img.to_vec()?;
    let end: u64 = ctx
        .queues()
        .iter()
        .map(|q| q.device().now_ns())
        .max()
        .unwrap_or(0);
    Ok(RunResult {
        output,
        total: Duration::from_nanos(end - start),
        kernel: m.events().last_kernel_time(),
    })
}

// END PROGRAM

/// Single-GPU convenience wrapper.
///
/// # Errors
///
/// Propagates SkelCL failures.
pub fn run(img: &[u8], width: usize, height: usize) -> skelcl::Result<RunResult<u8>> {
    run_on(&Context::single_gpu(), img, width, height)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{sobel_reference, synthetic_image};
    use skelcl::DeviceSelection;
    use vgpu::{DeviceSpec, Platform};

    #[test]
    fn matches_host_reference() {
        let (w, h) = (48, 32);
        let img = synthetic_image(w, h);
        let r = run(&img, w, h).unwrap();
        assert_eq!(r.output, sobel_reference(&img, w, h));
    }

    #[test]
    fn all_three_variants_agree() {
        let (w, h) = (64, 64);
        let img = synthetic_image(w, h);
        let skel = run(&img, w, h).unwrap();
        let amd = super::super::sobel_amd::run(&img, w, h).unwrap();
        let nv = super::super::sobel_nvidia::run(&img, w, h).unwrap();
        assert_eq!(skel.output, amd.output);
        assert_eq!(skel.output, nv.output);
    }

    #[test]
    fn multi_gpu_matches_single() {
        let (w, h) = (64, 48);
        let img = synthetic_image(w, h);
        let single = run(&img, w, h).unwrap();
        let ctx = Context::init(
            Platform::new(3, DeviceSpec::tesla_t10()),
            DeviceSelection::All,
        );
        let multi = run_on(&ctx, &img, w, h).unwrap();
        assert_eq!(single.output, multi.output);
    }

    #[test]
    fn figure_5_ordering_holds() {
        // AMD slowest; SkelCL within ~±20% of NVIDIA (the paper shows it
        // slightly ahead).
        let (w, h) = (128, 128);
        let img = synthetic_image(w, h);
        let skel = run(&img, w, h).unwrap();
        let amd = super::super::sobel_amd::run(&img, w, h).unwrap();
        let nv = super::super::sobel_nvidia::run(&img, w, h).unwrap();
        assert!(amd.kernel > nv.kernel, "AMD slowest vs NVIDIA");
        assert!(amd.kernel > skel.kernel, "AMD slowest vs SkelCL");
        let ratio = skel.kernel.as_secs_f64() / nv.kernel.as_secs_f64();
        assert!(
            (0.7..1.3).contains(&ratio),
            "SkelCL ≈ NVIDIA expected, ratio {ratio:.3}"
        );
    }
}
