//! Dot product with SkelCL — the paper's Listing 1.1, almost verbatim:
//! a Zip customized with multiplication composed with a Reduce customized
//! with addition. Compare the handful of lines below with the hand-written
//! OpenCL version next door.

// BEGIN PROGRAM
use std::time::Duration;

use skelcl::{Context, Reduce, Vector, Zip};

use super::RunResult;

/// Computes the dot product of `a` and `b` with SkelCL on `ctx`.
///
/// # Errors
///
/// Propagates SkelCL failures.
pub fn run_on(ctx: &Context, a: &[f32], b: &[f32]) -> skelcl::Result<RunResult<f32>> {
    let start: u64 = ctx
        .queues()
        .iter()
        .map(|q| q.device().now_ns())
        .max()
        .unwrap_or(0);
    // BEGIN KERNEL
    let sum: Reduce<f32> = Reduce::new(ctx, "float sum(float x, float y){ return x + y; }")?;
    let mult: Zip<f32, f32, f32> = Zip::new(ctx, "float mult(float x, float y){ return x * y; }")?;
    let va = Vector::from_vec(ctx, a.to_vec());
    let vb = Vector::from_vec(ctx, b.to_vec());
    let c = sum.call(&mult.call(&va, &vb)?)?;
    // END KERNEL
    let end: u64 = ctx
        .queues()
        .iter()
        .map(|q| q.device().now_ns())
        .max()
        .unwrap_or(0);
    Ok(RunResult {
        output: vec![c.value()],
        total: Duration::from_nanos(end - start),
        kernel: mult.events().last_kernel_time() + c.kernel_time(),
    })
}

// END PROGRAM

/// Single-GPU convenience wrapper.
///
/// # Errors
///
/// Propagates SkelCL failures.
pub fn run(a: &[f32], b: &[f32]) -> skelcl::Result<RunResult<f32>> {
    run_on(&Context::single_gpu(), a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::random_f32_vector;
    use skelcl::DeviceSelection;
    use vgpu::{DeviceSpec, Platform};

    #[test]
    fn computes_dot_product() {
        let a = vec![1.0f32, 2.0, 3.0];
        let b = vec![4.0f32, 5.0, 6.0];
        assert_eq!(run(&a, &b).unwrap().output[0], 32.0);
    }

    #[test]
    fn agrees_with_raw_opencl_version() {
        let a = random_f32_vector(5000, 7);
        let b = random_f32_vector(5000, 8);
        let skel = run(&a, &b).unwrap().output[0];
        let raw = super::super::dot_opencl::run(&a, &b).unwrap().output[0];
        assert!(
            (skel - raw).abs() <= 1e-2 * raw.abs().max(1.0),
            "skelcl {skel} vs raw {raw}"
        );
    }

    #[test]
    fn multi_gpu_dot_product() {
        let ctx = Context::init(
            Platform::new(4, DeviceSpec::tesla_t10()),
            DeviceSelection::All,
        );
        let a = vec![1.0f32; 4096];
        let b = vec![2.0f32; 4096];
        assert_eq!(run_on(&ctx, &a, &b).unwrap().output[0], 8192.0);
    }
}
