//! Mandelbrot in the style of a hand-written OpenCL program (paper §4.1),
//! written against the `vgpu::cl` OpenCL-1.2-flavoured API: explicit
//! platform/device discovery, context and queue creation, program build
//! with log retrieval, buffer management, one `set_kernel_arg` call per
//! argument and an explicit 16×16 ND-range launch — everything SkelCL
//! hides. Every call's status is checked, as correct OpenCL code must.

use std::time::Duration;

use skelcl_kernel::value::Value;
use vgpu::cl;

use super::RunResult;

// BEGIN KERNEL
/// The Mandelbrot kernel, as an OpenCL programmer would write it.
pub const KERNEL_SRC: &str = r#"
__kernel void mandelbrot(__global uchar* out, int width, int height, int max_iter)
{
    int px = (int)get_global_id(0);
    int py = (int)get_global_id(1);
    if (px >= width || py >= height)
        return;
    float cr = 3.5f * (float)px / (float)width - 2.5f;
    float ci = 3.0f * (float)py / (float)height - 1.5f;
    float zr = 0.0f;
    float zi = 0.0f;
    int it = 0;
    while (zr * zr + zi * zi <= 4.0f && it < max_iter) {
        float t = zr * zr - zi * zi + cr;
        zi = 2.0f * zr * zi + ci;
        zr = t;
        it = it + 1;
    }
    out[py * width + px] = (uchar)(255 * it / max_iter);
}
"#;
// END KERNEL

/// Computes the fractal on a single virtual Tesla GPU, the OpenCL way.
///
/// # Errors
///
/// Returns the OpenCL-style status of the first failing call.
pub fn run(width: usize, height: usize, max_iter: i32) -> Result<RunResult<u8>, cl::Status> {
    let platforms = cl::get_platform_ids(Some(1), None);
    let platform = platforms.first().ok_or(cl::Status::DeviceNotFound)?;
    let devices = cl::get_device_ids(platform)?;
    let device = &devices[0];
    let context = cl::create_context(&devices)?;
    let queue = cl::create_command_queue(&context, device)?;

    let mut program = cl::create_program_with_source(&context, KERNEL_SRC);
    if cl::build_program(&mut program).is_err() {
        eprintln!("build log:\n{}", cl::get_program_build_info(&program));
        return Err(cl::Status::BuildProgramFailure);
    }
    let kernel = cl::create_kernel(&program, "mandelbrot")?;

    let n = width * height;
    let out_mem = cl::create_buffer(&queue, n)?;

    cl::set_kernel_arg(&kernel, 0, cl::ClArg::Mem(out_mem.clone()))?;
    cl::set_kernel_arg(&kernel, 1, cl::ClArg::Scalar(Value::I32(width as i32)))?;
    cl::set_kernel_arg(&kernel, 2, cl::ClArg::Scalar(Value::I32(height as i32)))?;
    cl::set_kernel_arg(&kernel, 3, cl::ClArg::Scalar(Value::I32(max_iter)))?;

    let local = [16usize, 16usize];
    let global = [
        width.div_ceil(local[0]) * local[0],
        height.div_ceil(local[1]) * local[1],
    ];
    let start_ns = cl::device_clock_ns(&queue);
    let event = cl::enqueue_nd_range_kernel(&queue, &kernel, 2, &global, &local)?;
    cl::finish(&queue);

    let mut output = vec![0u8; n];
    cl::enqueue_read_buffer(&queue, &out_mem, 0, &mut output)?;
    cl::finish(&queue);

    let total = Duration::from_nanos(cl::device_clock_ns(&queue) - start_ns);
    let kernel_time = Duration::from_nanos(
        cl::get_event_profiling(&event, cl::ProfilingInfo::CommandEnd)
            - cl::get_event_profiling(&event, cl::ProfilingInfo::CommandStart),
    );
    Ok(RunResult {
        output,
        total,
        kernel: kernel_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::mandelbrot_reference;

    #[test]
    fn matches_host_reference() {
        let (w, h, it) = (64, 48, 32);
        let r = run(w, h, it).unwrap();
        assert_eq!(r.output, mandelbrot_reference(w, h, it));
        assert!(r.kernel > Duration::ZERO);
        assert!(r.total >= r.kernel);
    }

    #[test]
    fn non_multiple_of_group_size_is_padded_correctly() {
        let (w, h, it) = (33, 17, 16);
        let r = run(w, h, it).unwrap();
        assert_eq!(r.output, mandelbrot_reference(w, h, it));
    }
}
