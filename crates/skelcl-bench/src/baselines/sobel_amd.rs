//! Sobel edge detection in the style of the AMD APP SDK sample the paper
//! compares against (§4.2, Listing 1.6): every pixel performs **nine
//! global-memory loads** with hand-written index arithmetic and boundary
//! clamping — no local memory, which is why it is the slowest variant in
//! the paper's Fig. 5.

use std::time::Duration;

use skelcl_kernel::value::Value;
use vgpu::{DeviceSpec, KernelArg, LaunchConfig, NdRange, Platform};

use super::RunResult;

// BEGIN KERNEL
/// The AMD-style Sobel kernel: global-memory gather, manual boundary
/// checks and index calculations.
pub const KERNEL_SRC: &str = r#"
__kernel void sobel_amd(__global const uchar* img, __global uchar* out,
                        int width, int height)
{
    int x = (int)get_global_id(0);
    int y = (int)get_global_id(1);
    if (x >= width || y >= height)
        return;
    int xm = x - 1 < 0 ? 0 : x - 1;
    int xp = x + 1 >= width ? width - 1 : x + 1;
    int ym = y - 1 < 0 ? 0 : y - 1;
    int yp = y + 1 >= height ? height - 1 : y + 1;
    int ul = (int)img[ym * width + xm];
    int um = (int)img[ym * width + x ];
    int ur = (int)img[ym * width + xp];
    int ml = (int)img[y  * width + xm];
    int mr = (int)img[y  * width + xp];
    int ll = (int)img[yp * width + xm];
    int lm = (int)img[yp * width + x ];
    int lr = (int)img[yp * width + xp];
    int h = -ul + ur - 2 * ml + 2 * mr - ll + lr;
    int v = -ul - 2 * um - ur + ll + 2 * lm + lr;
    int mag = (int)sqrt((float)(h * h + v * v));
    out[y * width + x] = (uchar)(mag > 255 ? 255 : mag);
}
"#;
// END KERNEL

/// Runs the AMD-style Sobel on a single virtual Tesla GPU.
///
/// # Errors
///
/// Propagates platform failures.
///
/// # Panics
///
/// Panics if the constant kernel fails to compile or the image size does
/// not match `width * height`.
pub fn run(img: &[u8], width: usize, height: usize) -> vgpu::Result<RunResult<u8>> {
    assert_eq!(img.len(), width * height, "image shape mismatch");
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let program = skelcl_kernel::compile("sobel_amd.cl", KERNEL_SRC).expect("kernel compiles");
    let in_buffer = queue.create_buffer(img.len())?;
    let out_buffer = queue.create_buffer(img.len())?;
    let start_ns = platform.device(0).now_ns();
    queue.enqueue_write(&in_buffer, 0, img)?;
    let event = queue.launch_kernel(
        &program,
        "sobel_amd",
        &[
            KernelArg::Buffer(in_buffer),
            KernelArg::Buffer(out_buffer.clone()),
            KernelArg::Scalar(Value::I32(width as i32)),
            KernelArg::Scalar(Value::I32(height as i32)),
        ],
        NdRange::grid([width, height], [16, 16]),
        &LaunchConfig::default(),
    )?;
    let mut output = vec![0u8; img.len()];
    queue.enqueue_read(&out_buffer, 0, &mut output)?;
    let total = Duration::from_nanos(platform.device(0).now_ns() - start_ns);
    Ok(RunResult {
        output,
        total,
        kernel: event.duration(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{sobel_reference, synthetic_image};

    #[test]
    fn matches_host_reference() {
        let (w, h) = (48, 32);
        let img = synthetic_image(w, h);
        let r = run(&img, w, h).unwrap();
        assert_eq!(r.output, sobel_reference(&img, w, h));
    }

    #[test]
    fn does_only_global_memory_accesses() {
        let (w, h) = (32, 32);
        let img = synthetic_image(w, h);
        let r = run(&img, w, h).unwrap();
        // Kernel-only: AMD style means zero local-memory traffic.
        assert!(r.kernel > Duration::ZERO);
    }
}
