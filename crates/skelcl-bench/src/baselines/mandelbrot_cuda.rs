//! Mandelbrot in the style of a CUDA program (paper §4.1): the same kernel
//! computation, launched "like an ordinary function" with a proprietary
//! work-group syntax and far less host boilerplate than OpenCL. The cost
//! model applies the device's CUDA toolchain factor (the paper observes
//! CUDA ≈ 31% faster than OpenCL for the same kernel, citing Kong et al.).

use std::time::Duration;

use skelcl_kernel::value::Value;
use vgpu::{DeviceSpec, KernelArg, LaunchConfig, NdRange, Platform};

use super::RunResult;

// BEGIN KERNEL
/// The Mandelbrot kernel, identical math to the OpenCL version (a CUDA
/// `__global__` function differs only in spelling).
pub const KERNEL_SRC: &str = r#"
__kernel void mandelbrot(__global uchar* out, int width, int height, int max_iter)
{
    int px = (int)get_global_id(0);
    int py = (int)get_global_id(1);
    if (px >= width || py >= height)
        return;
    float cr = 3.5f * (float)px / (float)width - 2.5f;
    float ci = 3.0f * (float)py / (float)height - 1.5f;
    float zr = 0.0f;
    float zi = 0.0f;
    int it = 0;
    while (zr * zr + zi * zi <= 4.0f && it < max_iter) {
        float t = zr * zr - zi * zi + cr;
        zi = 2.0f * zr * zi + ci;
        zr = t;
        it = it + 1;
    }
    out[py * width + px] = (uchar)(255 * it / max_iter);
}
"#;
// END KERNEL

/// Computes the fractal, CUDA-style: one-line init, `kernel<<<grid, block>>>`-like launch.
///
/// # Errors
///
/// Propagates platform failures.
///
/// # Panics
///
/// Panics if the constant kernel fails to compile.
pub fn run(width: usize, height: usize, max_iter: i32) -> vgpu::Result<RunResult<u8>> {
    let platform = Platform::single(DeviceSpec::tesla_t10()); // cudaSetDevice(0)
    let queue = platform.queue(0);
    let program = skelcl_kernel::compile("mandelbrot.cu", KERNEL_SRC).expect("kernel compiles");
    let n = width * height;
    let out_buffer = queue.create_buffer(n)?; // cudaMalloc
    let start_ns = platform.device(0).now_ns();
    // mandelbrot<<<dim3(w/16, h/16), dim3(16, 16)>>>(out, w, h, it);
    let event = queue.launch_kernel(
        &program,
        "mandelbrot",
        &[
            KernelArg::Buffer(out_buffer.clone()),
            KernelArg::Scalar(Value::I32(width as i32)),
            KernelArg::Scalar(Value::I32(height as i32)),
            KernelArg::Scalar(Value::I32(max_iter)),
        ],
        NdRange::grid([width, height], [16, 16]),
        &LaunchConfig::cuda(),
    )?;
    let mut output = vec![0u8; n]; // cudaMemcpy(DeviceToHost)
    queue.enqueue_read(&out_buffer, 0, &mut output)?;
    let total = Duration::from_nanos(platform.device(0).now_ns() - start_ns);
    Ok(RunResult {
        output,
        total,
        kernel: event.duration(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::mandelbrot_reference;

    #[test]
    fn matches_reference_and_beats_opencl() {
        let (w, h, it) = (64, 48, 32);
        let cuda = run(w, h, it).unwrap();
        assert_eq!(cuda.output, mandelbrot_reference(w, h, it));
        let ocl = super::super::mandelbrot_opencl::run(w, h, it).unwrap();
        assert!(
            cuda.kernel < ocl.kernel,
            "CUDA toolchain factor: {:?} < {:?}",
            cuda.kernel,
            ocl.kernel
        );
    }
}
