//! Mandelbrot with SkelCL (paper §4.1): the kernel becomes a customizing
//! function for the `Map` skeleton; buffers, transfers and launch geometry
//! (SkelCL's default work-group size of 256) are implicit.

// BEGIN PROGRAM
use std::time::Duration;

use skelcl::{Context, Map, Value, Vector};

use super::RunResult;

// BEGIN KERNEL
/// The customizing function: one pixel from its index.
pub const FUNC_SRC: &str = r#"
uchar func(int gid, int width, int height, int max_iter)
{
    int px = gid % width;
    int py = gid / width;
    float cr = 3.5f * (float)px / (float)width - 2.5f;
    float ci = 3.0f * (float)py / (float)height - 1.5f;
    float zr = 0.0f;
    float zi = 0.0f;
    int it = 0;
    while (zr * zr + zi * zi <= 4.0f && it < max_iter) {
        float t = zr * zr - zi * zi + cr;
        zi = 2.0f * zr * zi + ci;
        zr = t;
        it = it + 1;
    }
    return (uchar)(255 * it / max_iter);
}
"#;
// END KERNEL

/// Computes the fractal with the Map skeleton on `ctx` (single- or
/// multi-GPU).
///
/// # Errors
///
/// Propagates SkelCL failures.
pub fn run_on(
    ctx: &Context,
    width: usize,
    height: usize,
    max_iter: i32,
) -> skelcl::Result<RunResult<u8>> {
    let map: Map<i32, u8> = Map::new(ctx, FUNC_SRC)?;
    let pixels = Vector::from_fn(ctx, width * height, |i| i as i32);
    let start: u64 = ctx
        .queues()
        .iter()
        .map(|q| q.device().now_ns())
        .max()
        .unwrap_or(0);
    let image = map.call_with(
        &pixels,
        &[
            Value::I32(width as i32),
            Value::I32(height as i32),
            Value::I32(max_iter),
        ],
    )?;
    let output = image.to_vec()?;
    let end: u64 = ctx
        .queues()
        .iter()
        .map(|q| q.device().now_ns())
        .max()
        .unwrap_or(0);
    Ok(RunResult {
        output,
        total: Duration::from_nanos(end - start),
        kernel: map.events().last_kernel_time(),
    })
}

// END PROGRAM

/// Single-GPU convenience wrapper matching the baselines' signature.
///
/// # Errors
///
/// Propagates SkelCL failures.
pub fn run(width: usize, height: usize, max_iter: i32) -> skelcl::Result<RunResult<u8>> {
    run_on(&Context::single_gpu(), width, height, max_iter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::mandelbrot_reference;
    use skelcl::DeviceSelection;
    use vgpu::{DeviceSpec, Platform};

    #[test]
    fn matches_host_reference() {
        let (w, h, it) = (64, 48, 32);
        let r = run(w, h, it).unwrap();
        assert_eq!(r.output, mandelbrot_reference(w, h, it));
    }

    #[test]
    fn multi_gpu_matches_single() {
        let (w, h, it) = (64, 48, 16);
        let single = run(w, h, it).unwrap();
        let ctx = Context::init(
            Platform::new(4, DeviceSpec::tesla_t10()),
            DeviceSelection::All,
        );
        let multi = run_on(&ctx, w, h, it).unwrap();
        assert_eq!(single.output, multi.output);
    }

    #[test]
    fn overhead_vs_opencl_is_small() {
        // §4.1: "SkelCL introduces a tolerable overhead of less than 5%".
        // The paper's runs take ~25 s per frame, i.e. an extremely
        // compute-heavy regime; use a high iteration cap so per-pixel
        // compute dominates the Map skeleton's extra input-vector load, as
        // it does in the paper.
        let (w, h, it) = (64, 48, 2000);
        let skel = run(w, h, it).unwrap();
        let ocl = super::super::mandelbrot_opencl::run(w, h, it).unwrap();
        let ratio = skel.kernel.as_secs_f64() / ocl.kernel.as_secs_f64();
        assert!(
            ratio < 1.05 && ratio > 0.9,
            "SkelCL/OpenCL kernel-time ratio should be ~1.0x..1.05x, got {ratio:.3}"
        );
    }
}
