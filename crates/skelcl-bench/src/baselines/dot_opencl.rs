//! Dot product in the style of the NVIDIA SDK OpenCL sample the paper
//! cites (§3.3: "approximately 68 lines of code — kernel function: 9
//! lines, host program: 59 lines"), written against the `vgpu::cl` API:
//! an elementwise multiply kernel, a tree-reduction kernel, and all the
//! host code to discover devices, build the program, size the multi-pass
//! reduction and move data — by hand.

use std::time::Duration;

use skelcl_kernel::value::Value;
use vgpu::cl;

use super::RunResult;

// BEGIN KERNEL
/// The two kernels a hand-written OpenCL dot product needs.
pub const KERNEL_SRC: &str = r#"
__kernel void multiply(__global const float* a, __global const float* b,
                       __global float* c, int n)
{
    int i = (int)get_global_id(0);
    if (i < n)
        c[i] = a[i] * b[i];
}

__kernel void reduce_sum(__global const float* in, __global float* out, int n)
{
    __local float scratch[256];
    int lid = (int)get_local_id(0);
    int gid = (int)get_global_id(0);
    int gsize = (int)get_global_size(0);
    float acc = 0.0f;
    for (int i = gid; i < n; i += gsize)
        acc = acc + in[i];
    scratch[lid] = acc;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int stride = 128; stride > 0; stride >>= 1) {
        if (lid < stride)
            scratch[lid] = scratch[lid] + scratch[lid + stride];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0)
        out[get_group_id(0)] = scratch[0];
}
"#;
// END KERNEL

/// Computes the dot product of `a` and `b` the hand-written OpenCL way.
///
/// # Errors
///
/// Returns the OpenCL-style status of the first failing call.
///
/// # Panics
///
/// Panics if the input lengths differ.
pub fn run(a: &[f32], b: &[f32]) -> Result<RunResult<f32>, cl::Status> {
    assert_eq!(a.len(), b.len(), "vector lengths must match");
    let n = a.len();

    let platforms = cl::get_platform_ids(Some(1), None);
    let platform = platforms.first().ok_or(cl::Status::DeviceNotFound)?;
    let devices = cl::get_device_ids(platform)?;
    let context = cl::create_context(&devices)?;
    let queue = cl::create_command_queue(&context, &devices[0])?;

    let mut program = cl::create_program_with_source(&context, KERNEL_SRC);
    if cl::build_program(&mut program).is_err() {
        eprintln!("build log:\n{}", cl::get_program_build_info(&program));
        return Err(cl::Status::BuildProgramFailure);
    }
    let multiply = cl::create_kernel(&program, "multiply")?;
    let reduce = cl::create_kernel(&program, "reduce_sum")?;

    let bytes_a: Vec<u8> = a.iter().flat_map(|v| v.to_le_bytes()).collect();
    let bytes_b: Vec<u8> = b.iter().flat_map(|v| v.to_le_bytes()).collect();
    let mem_a = cl::create_buffer(&queue, 4 * n)?;
    let mem_b = cl::create_buffer(&queue, 4 * n)?;
    let mem_c = cl::create_buffer(&queue, 4 * n)?;
    let start_ns = cl::device_clock_ns(&queue);
    cl::enqueue_write_buffer(&queue, &mem_a, 0, &bytes_a)?;
    cl::enqueue_write_buffer(&queue, &mem_b, 0, &bytes_b)?;

    let mut kernel_ns = 0u64;
    cl::set_kernel_arg(&multiply, 0, cl::ClArg::Mem(mem_a))?;
    cl::set_kernel_arg(&multiply, 1, cl::ClArg::Mem(mem_b))?;
    cl::set_kernel_arg(&multiply, 2, cl::ClArg::Mem(mem_c.clone()))?;
    cl::set_kernel_arg(&multiply, 3, cl::ClArg::Scalar(Value::I32(n as i32)))?;
    let global = n.div_ceil(256) * 256;
    let event = cl::enqueue_nd_range_kernel(&queue, &multiply, 1, &[global], &[256])?;
    kernel_ns += cl::get_event_profiling(&event, cl::ProfilingInfo::CommandEnd)
        - cl::get_event_profiling(&event, cl::ProfilingInfo::CommandStart);

    // Multi-pass tree reduction, sized and chained by hand.
    let mut current = mem_c;
    let mut remaining = n;
    while remaining > 1 {
        let groups = remaining.div_ceil(256).min(64);
        let partial = cl::create_buffer(&queue, 4 * groups)?;
        cl::set_kernel_arg(&reduce, 0, cl::ClArg::Mem(current))?;
        cl::set_kernel_arg(&reduce, 1, cl::ClArg::Mem(partial.clone()))?;
        cl::set_kernel_arg(&reduce, 2, cl::ClArg::Scalar(Value::I32(remaining as i32)))?;
        let event = cl::enqueue_nd_range_kernel(&queue, &reduce, 1, &[groups * 256], &[256])?;
        kernel_ns += cl::get_event_profiling(&event, cl::ProfilingInfo::CommandEnd)
            - cl::get_event_profiling(&event, cl::ProfilingInfo::CommandStart);
        current = partial;
        remaining = groups;
    }

    let mut result_bytes = [0u8; 4];
    cl::enqueue_read_buffer(&queue, &current, 0, &mut result_bytes)?;
    cl::finish(&queue);
    let total = Duration::from_nanos(cl::device_clock_ns(&queue) - start_ns);
    Ok(RunResult {
        output: vec![f32::from_le_bytes(result_bytes)],
        total,
        kernel: Duration::from_nanos(kernel_ns),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::random_f32_vector;

    #[test]
    fn computes_dot_product() {
        let a = vec![1.0f32, 2.0, 3.0];
        let b = vec![4.0f32, 5.0, 6.0];
        let r = run(&a, &b).unwrap();
        assert_eq!(r.output[0], 32.0);
    }

    #[test]
    fn matches_host_within_float_tolerance() {
        let a = random_f32_vector(10_000, 1);
        let b = random_f32_vector(10_000, 2);
        let host: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let gpu = run(&a, &b).unwrap().output[0];
        assert!(
            (host - gpu).abs() <= 1e-2 * host.abs().max(1.0),
            "host {host} vs gpu {gpu}"
        );
    }

    #[test]
    fn zero_padded_reduction_is_exact_on_integral_values() {
        let a = vec![1.0f32; 1000];
        let b = vec![1.0f32; 1000];
        assert_eq!(run(&a, &b).unwrap().output[0], 1000.0);
    }
}
