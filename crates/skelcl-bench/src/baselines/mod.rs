//! Baseline implementations of the paper's applications.
//!
//! Each variant lives in its own self-contained source file so that the
//! lines-of-code comparisons (Fig. 4, §3.3, §4.2) count *this repository's
//! own implementations* the same way the paper counts SDK samples. Kernel
//! source strings are delimited by `// BEGIN KERNEL` / `// END KERNEL`
//! markers for the kernel/host split.

pub mod dot_opencl;
pub mod dot_skelcl;
pub mod mandelbrot_cuda;
pub mod mandelbrot_opencl;
pub mod mandelbrot_skelcl;
pub mod sobel_amd;
pub mod sobel_nvidia;
pub mod sobel_skelcl;

use std::time::Duration;

/// Result of one application run on the virtual platform.
#[derive(Debug, Clone)]
pub struct RunResult<T> {
    /// The computed output.
    pub output: Vec<T>,
    /// Total simulated time on the device timeline (transfers + kernels).
    pub total: Duration,
    /// Simulated kernel-only time (what the OpenCL profiling API reports,
    /// used for Fig. 5).
    pub kernel: Duration,
}

/// Embedded sources of every variant, for LoC accounting.
pub mod sources {
    /// CUDA-style Mandelbrot implementation source.
    pub const MANDELBROT_CUDA: &str = include_str!("mandelbrot_cuda.rs");
    /// OpenCL-style Mandelbrot implementation source.
    pub const MANDELBROT_OPENCL: &str = include_str!("mandelbrot_opencl.rs");
    /// SkelCL Mandelbrot implementation source.
    pub const MANDELBROT_SKELCL: &str = include_str!("mandelbrot_skelcl.rs");
    /// AMD-SDK-style Sobel implementation source.
    pub const SOBEL_AMD: &str = include_str!("sobel_amd.rs");
    /// NVIDIA-SDK-style Sobel implementation source.
    pub const SOBEL_NVIDIA: &str = include_str!("sobel_nvidia.rs");
    /// SkelCL Sobel implementation source.
    pub const SOBEL_SKELCL: &str = include_str!("sobel_skelcl.rs");
    /// Raw OpenCL-style dot-product implementation source.
    pub const DOT_OPENCL: &str = include_str!("dot_opencl.rs");
    /// SkelCL dot-product implementation source.
    pub const DOT_SKELCL: &str = include_str!("dot_skelcl.rs");
}
