//! Reproduces the paper's **Figure 5**: Sobel edge detection kernel
//! runtimes on a 512×512 image — the AMD-SDK-style kernel (no local
//! memory) vs the NVIDIA-SDK-style kernel (local memory) vs SkelCL's
//! MapOverlap (local memory, generated).
//!
//! Usage: `cargo run --release -p skelcl-bench --bin fig5_sobel [--runs N]`
//!
//! As in the paper, only kernel runtimes are reported (transfer times are
//! identical across variants) and the mean of several runs is taken.

use skelcl_bench::baselines::{sobel_amd, sobel_nvidia, sobel_skelcl};
use skelcl_bench::loc::paper;
use skelcl_bench::report::{profiled_ctx, write_report};
use skelcl_bench::workloads::{sobel_reference, synthetic_image, SOBEL_FULL};
use skelcl_profile::json::Json;
use skelcl_profile::report::bench_report;

fn main() {
    let runs: usize = std::env::args()
        .skip_while(|a| a != "--runs")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(6); // the paper takes the mean of six runs
    let (width, height) = SOBEL_FULL;
    let img = synthetic_image(width, height);
    let reference = sobel_reference(&img, width, height);

    println!("== Figure 5: Sobel kernel runtime, {width}x{height}, mean of {runs} runs ==\n");

    let mut means = Vec::new();
    type Runner = fn(&[u8], usize, usize) -> Result<skelcl_bench::baselines::RunResult<u8>, String>;
    let variants: [(&str, Runner); 3] = [
        ("OpenCL (AMD)", |i, w, h| {
            sobel_amd::run(i, w, h).map_err(|e| e.to_string())
        }),
        ("OpenCL (NVIDIA)", |i, w, h| {
            sobel_nvidia::run(i, w, h).map_err(|e| e.to_string())
        }),
        ("SkelCL", |i, w, h| {
            sobel_skelcl::run(i, w, h).map_err(|e| e.to_string())
        }),
    ];
    println!(
        "{:<17} {:>14} {:>12}",
        "variant", "measured (ms)", "paper (ms)"
    );
    for ((name, runner), (_, paper_ms)) in variants.iter().zip(paper::SOBEL_MS.iter()) {
        let mut total = 0.0;
        for run in 0..runs {
            let r = runner(&img, width, height).expect("sobel run");
            if run == 0 {
                assert_eq!(r.output, reference, "{name} output matches reference");
            }
            total += r.kernel.as_secs_f64() * 1e3;
        }
        let mean = total / runs as f64;
        println!("{name:<17} {mean:>14.4} {paper_ms:>12.3}");
        means.push(mean);
    }

    let amd_over_nvidia = means[0] / means[1];
    let skel_vs_nvidia = means[2] / means[1];
    println!(
        "\nshape check: AMD/NVIDIA ratio = {:.2}x (paper: ~{:.1}x)",
        amd_over_nvidia,
        0.23 / 0.07
    );
    println!(
        "shape check: SkelCL/NVIDIA ratio = {:.2}x (paper: ~{:.2}x, slightly ahead)",
        skel_vs_nvidia,
        0.066 / 0.07
    );
    let ok = amd_over_nvidia > 2.0 && (0.7..1.3).contains(&skel_vs_nvidia);
    println!(
        "\nresult: {}",
        if ok {
            "SHAPE REPRODUCED"
        } else {
            "SHAPE MISMATCH"
        }
    );

    // Machine-readable report with the profiler's view of an instrumented
    // SkelCL run (transfer bytes, compile cache, per-device busy-ns).
    let profiled = profiled_ctx(1);
    sobel_skelcl::run_on(&profiled, &img, width, height).expect("profiled skelcl run");
    let metrics = profiled
        .profiler()
        .metrics_snapshot()
        .expect("profiler enabled");
    let report = bench_report(
        "fig5_sobel",
        &[
            ("width", (width as u64).into()),
            ("height", (height as u64).into()),
            ("runs", (runs as u64).into()),
        ],
        Json::obj([
            ("amd_kernel_ms", Json::Num(means[0])),
            ("nvidia_kernel_ms", Json::Num(means[1])),
            ("skelcl_kernel_ms", Json::Num(means[2])),
            ("amd_over_nvidia", Json::Num(amd_over_nvidia)),
            ("skelcl_vs_nvidia", Json::Num(skel_vs_nvidia)),
            ("shape_reproduced", Json::Bool(ok)),
        ]),
        Some(&metrics),
    );
    let path = write_report("fig5_sobel", &report).expect("write report");
    println!("report: {}", path.display());
    std::process::exit(i32::from(!ok));
}
