//! Multi-GPU scaling of the SkelCL applications (paper §3.2's motivation:
//! "an automatic data (re)distribution mechanism … ensures scalability when
//! using multiple GPUs"). Not a numbered figure in the paper; this is the
//! EXT-SCALE experiment from DESIGN.md.
//!
//! Usage: `cargo run --release -p skelcl-bench --bin scaling`

use skelcl::{
    BoundaryHandling, Context, Map, MapOverlapVec, Reduce, SchedulePolicy, Value, Vector, Zip,
};
use skelcl_bench::baselines::{dot_skelcl, mandelbrot_skelcl, sobel_skelcl};
use skelcl_bench::overlap::overlap_stats;
use skelcl_bench::report::{profiled_ctx, write_report};
use skelcl_bench::workloads::{random_f32_vector, synthetic_image};
use skelcl_profile::json::Json;
use skelcl_profile::report::bench_report;

fn ctx(devices: usize) -> Context {
    // Profiling is host-side only: simulated device timelines (the numbers
    // below) are unaffected, and the 4-GPU metrics feed the JSON report.
    profiled_ctx(devices)
}

fn main() {
    println!("== Multi-GPU scaling on virtual Tesla S1070 GPUs (simulated kernel makespan) ==\n");

    let (mw, mh, it) = (512usize, 384usize, 200);
    let (sw, sh) = (512usize, 512usize);
    let img = synthetic_image(sw, sh);
    let a = random_f32_vector(1 << 20, 11);
    let b = random_f32_vector(1 << 20, 12);

    println!(
        "{:<6} {:>18} {:>18} {:>18}",
        "GPUs", "mandelbrot (ms)", "sobel (ms)", "dot product (ms)"
    );

    let mut baseline: Option<[f64; 3]> = None;
    let mut speedups_at_4 = [0.0f64; 3];
    let mut rows = Vec::new();
    let mut mandel_metrics_at_4 = None;
    for devices in 1..=4usize {
        let c = ctx(devices);
        let mandel = mandelbrot_skelcl::run_on(&c, mw, mh, it).expect("mandelbrot");
        if devices == 4 {
            mandel_metrics_at_4 = c.profiler().metrics_snapshot();
        }
        let c = ctx(devices);
        let sobel = sobel_skelcl::run_on(&c, &img, sw, sh).expect("sobel");
        let c = ctx(devices);
        let dot = dot_skelcl::run_on(&c, &a, &b).expect("dot");

        let ms = [
            mandel.kernel.as_secs_f64() * 1e3,
            sobel.kernel.as_secs_f64() * 1e3,
            dot.kernel.as_secs_f64() * 1e3,
        ];
        rows.push(Json::obj([
            ("devices", (devices as u64).into()),
            ("mandelbrot_kernel_ms", Json::Num(ms[0])),
            ("sobel_kernel_ms", Json::Num(ms[1])),
            ("dot_kernel_ms", Json::Num(ms[2])),
        ]));
        let base = *baseline.get_or_insert(ms);
        let sp: Vec<String> = ms
            .iter()
            .zip(base)
            .map(|(m, b)| format!("{m:>10.4} ({:>4.2}x)", b / m))
            .collect();
        println!("{devices:<6} {:>18} {:>18} {:>18}", sp[0], sp[1], sp[2]);
        if devices == 4 {
            for (s, (m, b)) in speedups_at_4.iter_mut().zip(ms.iter().zip(base)) {
                *s = b / m;
            }
        }
    }

    println!(
        "\nshape check: 4-GPU speedups = mandelbrot {:.2}x, sobel {:.2}x, dot {:.2}x",
        speedups_at_4[0], speedups_at_4[1], speedups_at_4[2]
    );
    println!(
        "note: mandelbrot scales sub-linearly because the block distribution is\n\
         load-imbalanced — pixels inside the set (thousands of iterations)\n\
         cluster in a few chunks, and the makespan is the slowest GPU's time.\n\
         Sobel and dot product have uniform per-element work and scale linearly."
    );
    // Uniform-work kernels scale near-linearly; mandelbrot is bounded by
    // its heaviest chunk; the reduction has a small serial combine tail.
    let shape_ok = speedups_at_4[0] > 2.0 && speedups_at_4[1] > 3.0 && speedups_at_4[2] > 2.0;

    // The adaptive scheduler attacks exactly that imbalance: one even
    // calibration frame seeds the per-device throughput model, then the
    // next frame's block boundaries follow the measured busy times.
    println!("\n== Adaptive block scheduling (SKELCL_SCHEDULE=adaptive), 4 GPUs ==\n");
    let c = ctx(4);
    let map: Map<i32, u8> = Map::new(&c, mandelbrot_skelcl::FUNC_SRC).expect("compile mandelbrot");
    c.scheduler().set_policy(SchedulePolicy::Adaptive);
    let frame = || {
        let pixels = Vector::from_fn(&c, mw * mh, |i| i as i32);
        let image = map
            .call_with(
                &pixels,
                &[Value::I32(mw as i32), Value::I32(mh as i32), Value::I32(it)],
            )
            .expect("mandelbrot frame");
        let out = image.to_vec().expect("gather");
        let events = map.events();
        (
            events.load_imbalance(),
            events.last_kernel_time().as_secs_f64() * 1e3,
            out,
        )
    };
    let (even_imb, even_ms, even_out) = c.scheduler().calibrate(frame);
    let (adaptive_imb, adaptive_ms, adaptive_out) = frame();
    assert_eq!(even_out, adaptive_out, "scheduling must not change pixels");
    println!(
        "{:<10} {:>22} {:>18}",
        "schedule", "imbalance (max/mean)", "makespan (ms)"
    );
    println!("{:<10} {even_imb:>22.3} {even_ms:>18.4}", "even");
    println!(
        "{:<10} {adaptive_imb:>22.3} {adaptive_ms:>18.4}",
        "adaptive"
    );
    let adaptive_ok = adaptive_imb <= 1.10 && adaptive_imb < even_imb && adaptive_ms < even_ms;
    println!(
        "\nadaptive: {}",
        if adaptive_ok {
            "BALANCED (one calibration frame)"
        } else {
            "NOT BALANCED"
        }
    );

    // Transfer/compute overlap: the async queues let one device's
    // downloads proceed while other devices are still computing. The
    // load-imbalanced mandelbrot shows it best — edge blocks escape the
    // set quickly, so those devices' result downloads run well before the
    // middle devices' kernels finish. Quantified as the interval
    // intersection of each device's transfer spans with the union of every
    // *other* device's kernel spans.
    println!("\n== Transfer/compute overlap (async queues), 4-GPU mandelbrot ==\n");
    let c = ctx(4);
    mandelbrot_skelcl::run_on(&c, mw, mh, it).expect("mandelbrot overlap run");
    c.finish().expect("drain queues");
    let ov = overlap_stats(&c.profiler().spans());
    println!(
        "{:<8} {:>18} {:>18}",
        "device", "transfer (ns)", "hidden (ns)"
    );
    let mut overlap_rows = Vec::new();
    for (d, (&total, &hidden)) in ov
        .transfer_ns
        .iter()
        .zip(&ov.hidden_transfer_ns)
        .enumerate()
    {
        println!("{d:<8} {total:>18} {hidden:>18}");
        overlap_rows.push(Json::obj([
            ("device", (d as u64).into()),
            ("transfer_ns", total.into()),
            ("hidden_transfer_ns", hidden.into()),
        ]));
    }
    let overlapped = ov.total_hidden_ns() > 0;
    println!(
        "\noverlap: {} ns of {} transfer ns hidden behind other devices' kernels — {}",
        ov.total_hidden_ns(),
        ov.total_transfer_ns(),
        if overlapped { "OVERLAPPED" } else { "EXPOSED" }
    );

    // Elementwise kernel fusion: the dot product (paper Listing 1.1) as a
    // single zip-mul + tree-reduce pass per device. The unfused pipeline
    // launches the zip kernel, writes the product vector to device memory,
    // and reads it back in the reduce's first pass; the fused pipeline
    // welds the multiply into the reduction's load and skips the
    // intermediate buffer entirely.
    println!("\n== Elementwise kernel fusion (dot = zip \u{2218} reduce), 4 GPUs ==\n");
    let c = ctx(4);
    let sum: Reduce<f32> =
        Reduce::new(&c, "float sum(float x, float y){ return x + y; }").expect("compile sum");
    let mult: Zip<f32, f32, f32> =
        Zip::new(&c, "float mult(float x, float y){ return x * y; }").expect("compile mult");
    let va = Vector::from_vec(&c, a.clone());
    let vb = Vector::from_vec(&c, b.clone());

    let product = mult.call(&va, &vb).expect("unfused zip");
    let unfused_dot = sum.call(&product).expect("unfused reduce");
    let mut unfused_by_dev = mult.events().kernel_launches_by_device();
    for (d, n) in sum.events().kernel_launches_by_device() {
        *unfused_by_dev.entry(d).or_default() += n;
    }

    let expr = mult
        .lazy(&va.expr(), &vb.expr())
        .expect("build fused expression");
    let stats = expr.stats().expect("fusion stats");
    let fused_dot = sum.call_fused(&expr).expect("fused dot");
    let fused_by_dev = sum.events().kernel_launches_by_device();

    let unfused_launches: u64 = unfused_by_dev.values().sum();
    let fused_launches: u64 = fused_by_dev.values().sum();
    let saves_launch_per_device = unfused_by_dev
        .iter()
        .all(|(d, n)| n.saturating_sub(*fused_by_dev.get(d).unwrap_or(&0)) >= 1);
    let results_identical = fused_dot.value().to_bits() == unfused_dot.value().to_bits();
    println!(
        "{:<10} {:>16} {:>22} {:>16}",
        "pipeline", "kernel launches", "intermediate (bytes)", "dot"
    );
    println!(
        "{:<10} {unfused_launches:>16} {:>22} {:>16.3}",
        "unfused",
        stats.unfused_stage_bytes,
        unfused_dot.value()
    );
    println!(
        "{:<10} {fused_launches:>16} {:>22} {:>16.3}",
        "fused",
        0,
        fused_dot.value()
    );
    let fusion_ok =
        results_identical && saves_launch_per_device && fused_launches < unfused_launches;
    println!(
        "\nfusion: {} launches saved ({} per device), {} intermediate-buffer bytes avoided — {}",
        unfused_launches - fused_launches,
        if saves_launch_per_device {
            "\u{2265}1"
        } else {
            "<1"
        },
        stats.unfused_stage_bytes,
        if results_identical {
            "BIT-IDENTICAL"
        } else {
            "RESULTS DIVERGE"
        }
    );

    // Plan rewrite rules: the same welding generalised to whole pipelines.
    // The same 1M-element vector through map → stencil(d=1) → reduce on 4
    // GPUs, lowered fully staged (SKELCL_PLAN=0: one kernel and one
    // intermediate buffer per stage) and rewritten (SKELCL_PLAN=1: the map
    // is recomputed inside the stencil's halo loads and the stencil output
    // is welded into the reduction's first pass). Launches and intermediate
    // bytes come from the profiler's kernel histogram and the
    // `plan.intermediate_bytes` counter on a fresh context per run.
    println!("\n== Plan rewrite rules (map \u{2218} stencil \u{2218} reduce), 4 GPUs ==\n");
    let plan_run = |spec: &str| {
        std::env::set_var("SKELCL_PLAN", spec);
        let c = ctx(4);
        let scale: Map<f32, f32> =
            Map::new(&c, "float scale(float x){ return x * 0.5f; }").expect("compile scale");
        let blur: MapOverlapVec<f32, f32> = MapOverlapVec::new(
            &c,
            "float blur(const float* v){ return (get(v,-1) + get(v,0) + get(v,1)) / 3.0f; }",
            1,
            BoundaryHandling::Neutral(0.0),
        )
        .expect("compile blur");
        let psum: Reduce<f32> =
            Reduce::new(&c, "float sum(float x, float y){ return x + y; }").expect("compile sum");
        let v = Vector::from_vec(&c, a.clone());
        let total = psum
            .call_fused(
                &blur
                    .lazy(&scale.lazy(&v.expr()).expect("lazy map"))
                    .expect("lazy stencil"),
            )
            .expect("plan pipeline")
            .value();
        let m = c.profiler().metrics_snapshot().expect("profiled context");
        std::env::remove_var("SKELCL_PLAN");
        (
            m.histograms[skelcl_profile::metrics::HIST_KERNEL_NS].count,
            m.counters
                .get(skelcl_profile::metrics::PLAN_INTERMEDIATE_BYTES)
                .copied()
                .unwrap_or(0),
            m.counters
                .get(skelcl_profile::metrics::PLAN_RULES_FIRED)
                .copied()
                .unwrap_or(0),
            m.counters
                .get(skelcl_profile::metrics::PLAN_NODES_FUSED)
                .copied()
                .unwrap_or(0),
            total.to_bits(),
        )
    };
    let (staged_launches, staged_bytes, _, _, staged_bits) = plan_run("0");
    let (plan_launches, plan_bytes, plan_rules, plan_nodes, plan_bits) = plan_run("1");
    let plan_identical = plan_bits == staged_bits;
    println!(
        "{:<10} {:>16} {:>22} {:>16}",
        "plan", "kernel launches", "intermediate (bytes)", "result"
    );
    println!(
        "{:<10} {staged_launches:>16} {staged_bytes:>22} {:>16.3}",
        "staged",
        f32::from_bits(staged_bits)
    );
    println!(
        "{:<10} {plan_launches:>16} {plan_bytes:>22} {:>16.3}",
        "rewritten",
        f32::from_bits(plan_bits)
    );
    let plan_ok = plan_identical && plan_launches < staged_launches && plan_bytes < staged_bytes;
    println!(
        "\nplan: {} launches and {} intermediate bytes saved, {plan_rules} rules fired, {plan_nodes} nodes fused — {}",
        staged_launches.saturating_sub(plan_launches),
        staged_bytes.saturating_sub(plan_bytes),
        if plan_identical {
            "BIT-IDENTICAL"
        } else {
            "RESULTS DIVERGE"
        }
    );

    // Out-of-core streaming: a 1M-element map → stencil → reduce pipeline
    // with SKELCL_DEVICE_BUDGET capping per-device residency far below
    // each device's ~1 MiB share. The streaming executor splits every
    // lowered region into halo-aware chunks driven through a depth-2 ring
    // of staging buffers; peak residency stays under the budget while
    // chunk uploads hide behind kernels. Device queues are in-order, so
    // hiding is cross-device — the map's value-dependent trip count over a
    // ramped input makes the upper devices' chunk kernels long enough to
    // cover the lower devices' chunk stagings (the same imbalance
    // mechanism as the mandelbrot overlap section). SKELCL_STREAM=0
    // re-runs the identical pipeline as the non-streamed oracle (whose
    // peak residency shows the budget is really exceeded without
    // chunking).
    println!("\n== Out-of-core streaming (SKELCL_STREAM), 4 GPUs ==\n");
    const STREAM_BUDGET: usize = 256 * 1024;
    const STREAM_N: usize = 1 << 20;
    let stream_run = |stream: &str| {
        std::env::set_var("SKELCL_DEVICE_BUDGET", STREAM_BUDGET.to_string());
        std::env::set_var("SKELCL_STREAM", stream);
        let c = ctx(4);
        let heat: Map<f32, f32> = Map::new(
            &c,
            "float heat(float x){\n\
                 float acc = 0.0f;\n\
                 for (int i = 0; i < (int)x; i++) { acc += 1.0f / (float)(i + 1); }\n\
                 return acc;\n\
             }",
        )
        .expect("compile heat");
        let blur: MapOverlapVec<f32, f32> = MapOverlapVec::new(
            &c,
            "float blur(const float* v){ return (get(v,-1) + get(v,0) + get(v,1)) / 3.0f; }",
            1,
            BoundaryHandling::Neutral(0.0),
        )
        .expect("compile blur");
        let psum: Reduce<f32> =
            Reduce::new(&c, "float sum(float x, float y){ return x + y; }").expect("compile sum");
        // Trip counts ramp 0..63 across the vector, so device 3's quarter
        // costs ~7x device 0's.
        let v = Vector::from_fn(&c, STREAM_N, |i| (i / (STREAM_N / 64)) as f32);
        for d in 0..4 {
            c.platform().device(d).reset_peak();
        }
        let total = psum
            .call_fused(
                &blur
                    .lazy(&heat.lazy(&v.expr()).expect("lazy map"))
                    .expect("lazy stencil"),
            )
            .expect("stream pipeline")
            .value();
        c.finish().expect("drain queues");
        let ov = overlap_stats(&c.profiler().spans());
        let m = c.profiler().metrics_snapshot().expect("profiled context");
        std::env::remove_var("SKELCL_STREAM");
        std::env::remove_var("SKELCL_DEVICE_BUDGET");
        let counter = |key| m.counters.get(key).copied().unwrap_or(0);
        let peak = (0..4)
            .map(|d| c.platform().device(d).peak_allocated_bytes())
            .max()
            .unwrap_or(0);
        (
            total.to_bits(),
            peak,
            counter(skelcl_profile::metrics::STREAM_REGIONS),
            counter(skelcl_profile::metrics::STREAM_CHUNKS),
            counter(skelcl_profile::metrics::STREAM_BYTES_STAGED),
            ov,
        )
    };
    let (stream_oracle_bits, stream_oracle_peak, _, _, _, _) = stream_run("0");
    let (stream_bits, stream_peak, stream_regions, stream_chunks, stream_staged, stream_ov) =
        stream_run("2");
    let stream_identical = stream_bits == stream_oracle_bits;
    let stream_under_budget = stream_peak <= STREAM_BUDGET;
    let stream_hidden_fraction = if stream_ov.total_transfer_ns() == 0 {
        0.0
    } else {
        stream_ov.total_hidden_ns() as f64 / stream_ov.total_transfer_ns() as f64
    };
    println!(
        "{:<10} {:>20} {:>10} {:>16}",
        "mode", "peak resident (B)", "chunks", "result"
    );
    println!(
        "{:<10} {stream_oracle_peak:>20} {:>10} {:>16.3}",
        "oracle",
        "-",
        f32::from_bits(stream_oracle_bits)
    );
    println!(
        "{:<10} {stream_peak:>20} {stream_chunks:>10} {:>16.3}",
        "streamed",
        f32::from_bits(stream_bits)
    );
    let stream_ok = stream_identical
        && stream_under_budget
        && stream_oracle_peak > STREAM_BUDGET
        && stream_regions >= 2
        && stream_hidden_fraction > 0.0;
    println!(
        "\nstream: {stream_regions} regions chunked ({stream_staged} bytes staged), {:.1}% of \
         transfer ns hidden behind\nother devices' kernels, peak {stream_peak} B within the \
         {STREAM_BUDGET} B budget (oracle needed {stream_oracle_peak} B) — {}",
        stream_hidden_fraction * 100.0,
        if stream_identical {
            "BIT-IDENTICAL"
        } else {
            "RESULTS DIVERGE"
        }
    );

    // Host wall-clock delta between the two vgpu execution engines on the
    // same 4-GPU mandelbrot frames — the skeleton-level companion to the
    // EXT-INTERP A/B (`interp` binary). Real build-machine time, not
    // simulated nanoseconds, so all three numbers live under a `host` key:
    // the bench gate checks they stay present but never compares values
    // (the >= 2x conclusion is gated in BENCH_interp.json, on controlled
    // per-engine platforms).
    println!("\n== Execution engines, host wall-clock (4-GPU mandelbrot) ==\n");
    let engine_wall_ms = |engine: &str| {
        std::env::set_var("SKELCL_VGPU_EXEC", engine);
        let c = ctx(4);
        mandelbrot_skelcl::run_on(&c, mw, mh, it).expect("engine warm-up");
        let t = std::time::Instant::now();
        for _ in 0..2 {
            mandelbrot_skelcl::run_on(&c, mw, mh, it).expect("engine run");
        }
        t.elapsed().as_secs_f64() * 1e3 / 2.0
    };
    let lockstep_wall_ms = engine_wall_ms("lockstep");
    let fast_wall_ms = engine_wall_ms("fast");
    std::env::remove_var("SKELCL_VGPU_EXEC");
    println!("{:<10} {:>18}", "engine", "wall-clock (ms)");
    println!("{:<10} {lockstep_wall_ms:>18.1}", "lockstep");
    println!("{:<10} {fast_wall_ms:>18.1}", "fast");
    println!(
        "\nengines: fast completes the frame in {:.2}x less wall-clock than lockstep",
        lockstep_wall_ms / fast_wall_ms
    );

    let ok = shape_ok && adaptive_ok && overlapped && fusion_ok && plan_ok && stream_ok;
    println!(
        "\nresult: {}",
        if ok {
            "SHAPE REPRODUCED"
        } else {
            "SHAPE MISMATCH"
        }
    );

    // Machine-readable report; the attached metrics are the 4-GPU
    // mandelbrot run's, whose load_imbalance explains the sub-linear row.
    let report = bench_report(
        "scaling",
        &[
            ("mandelbrot", Json::from(format!("{mw}x{mh} max_iter {it}"))),
            ("sobel", Json::from(format!("{sw}x{sh}"))),
            ("dot", (1u64 << 20).into()),
        ],
        Json::obj([
            ("per_device_count", Json::Arr(rows)),
            (
                "speedups_at_4",
                Json::obj([
                    ("mandelbrot", Json::Num(speedups_at_4[0])),
                    ("sobel", Json::Num(speedups_at_4[1])),
                    ("dot", Json::Num(speedups_at_4[2])),
                ]),
            ),
            (
                "adaptive",
                Json::obj([
                    ("even_imbalance", Json::Num(even_imb)),
                    ("adaptive_imbalance", Json::Num(adaptive_imb)),
                    ("even_kernel_ms", Json::Num(even_ms)),
                    ("adaptive_kernel_ms", Json::Num(adaptive_ms)),
                    ("balanced", Json::Bool(adaptive_ok)),
                ]),
            ),
            (
                "fusion",
                Json::obj([
                    ("unfused_kernel_launches", unfused_launches.into()),
                    ("fused_kernel_launches", fused_launches.into()),
                    ("launches_saved", (unfused_launches - fused_launches).into()),
                    (
                        "intermediate_bytes_unfused",
                        stats.unfused_stage_bytes.into(),
                    ),
                    ("intermediate_bytes_fused", 0u64.into()),
                    ("fused_stages", (stats.stages as u64).into()),
                    (
                        "saves_launch_per_device",
                        Json::Bool(saves_launch_per_device),
                    ),
                    ("results_identical", Json::Bool(results_identical)),
                ]),
            ),
            (
                "plan",
                Json::obj([
                    ("staged_kernel_launches", staged_launches.into()),
                    ("rewritten_kernel_launches", plan_launches.into()),
                    ("staged_intermediate_bytes", staged_bytes.into()),
                    ("rewritten_intermediate_bytes", plan_bytes.into()),
                    ("rules_fired", plan_rules.into()),
                    ("nodes_fused", plan_nodes.into()),
                    (
                        "fewer_launches",
                        Json::Bool(plan_launches < staged_launches),
                    ),
                    (
                        "fewer_intermediate_bytes",
                        Json::Bool(plan_bytes < staged_bytes),
                    ),
                    ("bit_identical", Json::Bool(plan_identical)),
                ]),
            ),
            (
                "stream",
                Json::obj([
                    ("budget_bytes", (STREAM_BUDGET as u64).into()),
                    (
                        "oracle_peak_resident_bytes",
                        (stream_oracle_peak as u64).into(),
                    ),
                    ("peak_resident_bytes", (stream_peak as u64).into()),
                    ("under_budget", Json::Bool(stream_under_budget)),
                    (
                        "oracle_exceeds_budget",
                        Json::Bool(stream_oracle_peak > STREAM_BUDGET),
                    ),
                    ("regions", stream_regions.into()),
                    ("chunks", stream_chunks.into()),
                    ("bytes_staged", stream_staged.into()),
                    ("transfer_ns", stream_ov.total_transfer_ns().into()),
                    ("hidden_transfer_ns", stream_ov.total_hidden_ns().into()),
                    (
                        "hidden_transfer_fraction",
                        Json::Num(stream_hidden_fraction),
                    ),
                    ("transfer_hidden", Json::Bool(stream_hidden_fraction > 0.0)),
                    ("bit_identical", Json::Bool(stream_identical)),
                ]),
            ),
            (
                "engine",
                Json::obj([(
                    "host",
                    Json::obj([
                        ("lockstep_wall_ms", Json::Num(lockstep_wall_ms)),
                        ("fast_wall_ms", Json::Num(fast_wall_ms)),
                        ("fast_speedup", Json::Num(lockstep_wall_ms / fast_wall_ms)),
                    ]),
                )]),
            ),
            (
                "overlap",
                Json::obj([
                    ("per_device", Json::Arr(overlap_rows)),
                    ("total_transfer_ns", ov.total_transfer_ns().into()),
                    ("total_hidden_transfer_ns", ov.total_hidden_ns().into()),
                    ("overlapped", Json::Bool(overlapped)),
                ]),
            ),
            ("shape_reproduced", Json::Bool(ok)),
        ]),
        mandel_metrics_at_4.as_ref(),
    );
    let path = write_report("scaling", &report).expect("write report");
    println!("report: {}", path.display());
    std::process::exit(i32::from(!ok));
}
