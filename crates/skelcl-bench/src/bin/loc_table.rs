//! Reproduces the paper's programming-effort comparisons in prose:
//! §3.3 (dot product: ~68 lines of OpenCL vs a handful of SkelCL lines)
//! and §4.2 (Sobel kernels: AMD 37 lines, NVIDIA 208 lines, SkelCL "the
//! few lines of Listing 1.5").
//!
//! Usage: `cargo run -p skelcl-bench --bin loc_table`

use skelcl_bench::baselines::sources;
use skelcl_bench::loc::{count_loc, paper, split_kernel_host};

fn kernel_loc(source_file: &str) -> usize {
    split_kernel_host(source_file).kernel
}

fn main() {
    println!("== Dot product, lines of code (paper section 3.3) ==\n");
    let dot_raw = split_kernel_host(sources::DOT_OPENCL);
    let dot_skel = split_kernel_host(sources::DOT_SKELCL);
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>22}",
        "variant", "kernel", "host", "total", "paper (kernel/host)"
    );
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>18}/{}",
        "OpenCL (hand-written)",
        dot_raw.kernel,
        dot_raw.host,
        dot_raw.total(),
        paper::DOT_OPENCL.kernel,
        paper::DOT_OPENCL.host,
    );
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>22}",
        "SkelCL",
        dot_skel.kernel,
        dot_skel.host,
        dot_skel.total(),
        "\"a few lines\""
    );

    println!("\n== Sobel kernels, lines of code (paper section 4.2) ==\n");
    let amd = kernel_loc(sources::SOBEL_AMD);
    let nvidia = kernel_loc(sources::SOBEL_NVIDIA);
    let skel = kernel_loc(sources::SOBEL_SKELCL);
    println!("{:<22} {:>8} {:>12}", "variant", "kernel", "paper");
    println!(
        "{:<22} {:>8} {:>12}",
        "OpenCL (AMD style)",
        amd,
        paper::SOBEL_KERNEL_AMD
    );
    println!(
        "{:<22} {:>8} {:>12}",
        "OpenCL (NVIDIA style)",
        nvidia,
        paper::SOBEL_KERNEL_NVIDIA
    );
    println!(
        "{:<22} {:>8} {:>12}",
        "SkelCL (Listing 1.5)", skel, "\"few lines\""
    );

    println!("\n== Mandelbrot, lines of code (Figure 4a) ==\n");
    for (name, src, p) in [
        ("CUDA", sources::MANDELBROT_CUDA, paper::MANDELBROT_CUDA),
        (
            "OpenCL",
            sources::MANDELBROT_OPENCL,
            paper::MANDELBROT_OPENCL,
        ),
        (
            "SkelCL",
            sources::MANDELBROT_SKELCL,
            paper::MANDELBROT_SKELCL,
        ),
    ] {
        let s = split_kernel_host(src);
        println!(
            "{:<10} kernel {:>3}  host {:>3}  total {:>3}   (paper: {:>2}/{:>2}/{:>3})",
            name,
            s.kernel,
            s.host,
            s.total(),
            p.kernel,
            p.host,
            p.total()
        );
    }

    // Shape checks mirroring the paper's claims.
    let dot_ratio = dot_raw.total() as f64 / dot_skel.total() as f64;
    let sobel_skel_smallest = skel < amd && skel < nvidia;
    println!(
        "\nshape check: raw OpenCL dot product is {:.1}x the SkelCL size (paper: 68 vs ~10)",
        dot_ratio
    );
    println!(
        "shape check: SkelCL Sobel kernel is the smallest of the three: {}",
        sobel_skel_smallest
    );
    let _ = count_loc("");
    let ok = dot_ratio > 1.5 && sobel_skel_smallest && nvidia > amd;
    println!(
        "\nresult: {}",
        if ok {
            "SHAPE REPRODUCED"
        } else {
            "SHAPE MISMATCH"
        }
    );
    std::process::exit(i32::from(!ok));
}
