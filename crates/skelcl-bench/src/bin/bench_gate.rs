//! Regression gate over benchmark reports: compares every committed
//! `BENCH_*.json` baseline against a freshly generated counterpart and
//! exits non-zero on any regression (see `skelcl_bench::gate` for the
//! rules).
//!
//! Usage: `bench_gate <baseline_dir> <fresh_dir> [--tolerance 0.10]`

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use skelcl_bench::gate::{diff_reports, GateConfig};
use skelcl_profile::json::Json;

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = GateConfig::default();
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            let v = it.next().and_then(|t| t.parse().ok());
            match v {
                Some(t) => cfg.rel_tolerance = t,
                None => {
                    eprintln!("--tolerance needs a number");
                    return ExitCode::from(2);
                }
            }
        } else {
            dirs.push(PathBuf::from(a));
        }
    }
    let [baseline_dir, fresh_dir] = dirs.as_slice() else {
        eprintln!("usage: bench_gate <baseline_dir> <fresh_dir> [--tolerance 0.10]");
        return ExitCode::from(2);
    };

    let mut baselines: Vec<PathBuf> = match std::fs::read_dir(baseline_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e}", baseline_dir.display());
            return ExitCode::from(2);
        }
    };
    baselines.sort();
    if baselines.is_empty() {
        eprintln!("no BENCH_*.json baselines in {}", baseline_dir.display());
        return ExitCode::from(2);
    }

    let mut failures = 0usize;
    for base_path in &baselines {
        let name = base_path.file_name().unwrap().to_string_lossy().to_string();
        let fresh_path = fresh_dir.join(&name);
        let result = load(base_path).and_then(|baseline| {
            let fresh = load(&fresh_path)?;
            Ok(diff_reports(
                name.trim_start_matches("BENCH_").trim_end_matches(".json"),
                &baseline,
                &fresh,
                &cfg,
            ))
        });
        match result {
            Ok(violations) if violations.is_empty() => println!("PASS {name}"),
            Ok(violations) => {
                println!("FAIL {name}");
                for v in &violations {
                    println!("  {v}");
                }
                failures += 1;
            }
            Err(e) => {
                println!("FAIL {name}");
                println!("  {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        println!(
            "\nbench gate: {failures} of {} reports regressed",
            baselines.len()
        );
        ExitCode::FAILURE
    } else {
        println!(
            "\nbench gate: all {} reports within tolerance",
            baselines.len()
        );
        ExitCode::SUCCESS
    }
}
