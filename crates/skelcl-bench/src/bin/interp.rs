//! A/B benchmark of the two vgpu execution engines (EXT-INTERP from
//! DESIGN.md §5g): the pooled fast engine ([`vgpu::ExecStrategy::Fast`] —
//! persistent per-device worker pools, barrier-free work-item reuse,
//! zero-clone dispatch loop) against the legacy lockstep engine
//! ([`vgpu::ExecStrategy::Lockstep`] — per-launch scoped threads, fresh
//! per-item `WorkItem`s, reference interpreter), on three barrier-free
//! shapes: dot-product (elementwise zip-multiply), mandelbrot (iteration-
//! heavy) and gaussian blur (5x5 stencil).
//!
//! Host wall-clock here is *real* time on the build machine, not simulated
//! nanoseconds, so the report nests all measured numbers under `host` keys
//! (the bench gate checks their presence, never their values). The gated
//! conclusions are the booleans: the fast engine is at least 2x the legacy
//! engine on dot-product and mandelbrot, pooled launches spawn zero
//! threads, and both engines produce bit-identical buffers and counters.
//!
//! Usage: `cargo run --release -p skelcl-bench --bin interp`

use std::time::{Duration, Instant};

use skelcl_bench::report::write_report;
use skelcl_kernel::program::Program;
use skelcl_kernel::value::Value;
use skelcl_kernel::vm::CostCounters;
use skelcl_profile::json::Json;
use skelcl_profile::report::bench_report;
use skelcl_profile::{FlightRecorder, Profiler};
use vgpu::{DeviceSpec, ExecStats, ExecStrategy, KernelArg, LaunchConfig, NdRange, Platform};

const DEVICES: usize = 4;

/// One benchmark shape: a barrier-free kernel plus its inputs, split
/// across the platform's devices in contiguous chunks (each device
/// receives the full input buffers and an `off` scalar selecting its
/// chunk, like SkelCL's block distribution).
struct Shape {
    name: &'static str,
    program: Program,
    kernel: &'static str,
    /// Input buffer contents, uploaded to every device.
    inputs: Vec<Vec<u8>>,
    /// Scalar args appended after `off` (the per-device chunk offset).
    scalars: Vec<Value>,
    /// Total work-items across all devices.
    items: usize,
    out_bytes_per_item: usize,
    /// Timed repetitions (after one warm-up launch per device).
    reps: usize,
}

/// One engine's run of a shape: wall-clock over the timed reps, the
/// gathered output, per-device launch counters and the platform's
/// execution statistics.
struct EngineRun {
    wall: Duration,
    out: Vec<u8>,
    counters: Vec<CostCounters>,
    stats: ExecStats,
}

/// Optional observability attachments for one engine run. The two knobs
/// measure different things, so they sit on opposite sides of the timer:
/// an enabled [`Profiler`] has the run's events recorded *after* the
/// timed loop (filling the duration/size histograms for the report
/// without perturbing the A/B walls), while a [`FlightRecorder`] rides
/// the queue observers *inside* the timed loop, which is exactly the
/// overhead the `flight_overhead` acceptance check quantifies.
#[derive(Clone, Copy, Default)]
struct Observe<'a> {
    profiler: Option<&'a Profiler>,
    flight: Option<&'a FlightRecorder>,
}

fn run_shape(shape: &Shape, strategy: ExecStrategy, observe: Observe<'_>) -> EngineRun {
    // A fresh platform per engine keeps `ExecStats` attributable.
    let platform = Platform::new(DEVICES, DeviceSpec::tesla_t10());
    let config = LaunchConfig {
        strategy,
        ..LaunchConfig::default()
    };
    let chunk = shape.items.div_ceil(DEVICES);
    let out_bytes = shape.items * shape.out_bytes_per_item;

    let off = Profiler::disabled();
    let mut queues = Vec::new();
    let mut args = Vec::new();
    let mut outs = Vec::new();
    let mut uploads = Vec::new();
    for d in 0..DEVICES {
        let queue = platform.queue(d);
        if let Some(flight) = observe.flight {
            flight.attach_queue(&off, &queue);
        }
        let mut a = Vec::new();
        for input in &shape.inputs {
            let buf = queue.create_buffer(input.len().max(1)).expect("in buffer");
            uploads.push(queue.enqueue_write(&buf, 0, input).expect("upload"));
            a.push(KernelArg::Buffer(buf));
        }
        let out = queue.create_buffer(out_bytes.max(1)).expect("out buffer");
        a.push(KernelArg::Buffer(out.clone()));
        a.push(KernelArg::Scalar(Value::I32((d * chunk) as i32)));
        a.extend(shape.scalars.iter().map(|s| KernelArg::Scalar(*s)));
        queues.push(queue);
        args.push(a);
        outs.push(out);
    }

    let launch_all = || -> Vec<vgpu::Event> {
        let events: Vec<vgpu::Event> = (0..DEVICES)
            .filter(|d| d * chunk < shape.items)
            .map(|d| {
                let len = chunk.min(shape.items - d * chunk);
                queues[d]
                    .launch_kernel(
                        &shape.program,
                        shape.kernel,
                        &args[d],
                        NdRange::linear_default(len),
                        &config,
                    )
                    .expect("launch")
            })
            .collect();
        for e in &events {
            e.wait().expect("kernel completes");
        }
        events
    };

    launch_all(); // warm-up: pool creation, buffer residency
    let t = Instant::now();
    let mut last = Vec::new();
    for _ in 0..shape.reps {
        last = launch_all();
    }
    let wall = t.elapsed();

    let counters = last
        .iter()
        .map(|e| e.counters().expect("kernel events carry counters"))
        .collect();
    let mut out = vec![0u8; out_bytes];
    let mut gathers = Vec::new();
    for d in 0..DEVICES {
        let start = (d * chunk).min(shape.items) * shape.out_bytes_per_item;
        let end = ((d + 1) * chunk).min(shape.items) * shape.out_bytes_per_item;
        if start < end {
            gathers.push(
                queues[d]
                    .enqueue_read(&outs[d], start, &mut out[start..end])
                    .expect("gather"),
            );
        }
    }
    if let Some(profiler) = observe.profiler {
        for e in uploads.iter().chain(&last).chain(&gathers) {
            profiler.record_event(e);
        }
    }
    EngineRun {
        wall,
        out,
        counters,
        stats: platform.exec_stats(),
    }
}

fn f32s(vals: impl Iterator<Item = f32>) -> Vec<u8> {
    vals.flat_map(|v| v.to_le_bytes()).collect()
}

fn dot_product() -> Shape {
    let n = 1usize << 20;
    let program = skelcl_kernel::compile(
        "dotmul.cl",
        "__kernel void dotmul(__global const float* a, __global const float* b,
                              __global float* out, int off, int n){
             int i = (int)get_global_id(0) + off;
             if (i < n) out[i] = a[i] * b[i];
         }",
    )
    .expect("compile dotmul");
    Shape {
        name: "dot_product",
        program,
        kernel: "dotmul",
        inputs: vec![
            f32s((0..n).map(|i| (i % 1000) as f32 * 0.25)),
            f32s((0..n).map(|i| (i % 773) as f32 * 0.5 - 100.0)),
        ],
        scalars: vec![Value::I32(n as i32)],
        items: n,
        out_bytes_per_item: 4,
        reps: 3,
    }
}

fn mandelbrot() -> Shape {
    let (w, h, max_iter) = (384usize, 288usize, 120i32);
    let program = skelcl_kernel::compile(
        "mandel.cl",
        "__kernel void mandel(__global int* out, int off, int w, int h, int max_iter){
             int gid = (int)get_global_id(0) + off;
             if (gid >= w * h) return;
             float x0 = (float)(gid % w) / (float)w * 3.5f - 2.5f;
             float y0 = (float)(gid / w) / (float)h * 2.0f - 1.0f;
             float x = 0.0f;
             float y = 0.0f;
             int it = 0;
             while (x * x + y * y <= 4.0f && it < max_iter) {
                 float xt = x * x - y * y + x0;
                 y = 2.0f * x * y + y0;
                 x = xt;
                 it = it + 1;
             }
             out[gid] = it;
         }",
    )
    .expect("compile mandel");
    Shape {
        name: "mandelbrot",
        program,
        kernel: "mandel",
        inputs: vec![],
        scalars: vec![
            Value::I32(w as i32),
            Value::I32(h as i32),
            Value::I32(max_iter),
        ],
        items: w * h,
        out_bytes_per_item: 4,
        reps: 2,
    }
}

fn gaussian_blur() -> Shape {
    let (w, h) = (320usize, 320usize);
    let program = skelcl_kernel::compile(
        "blur.cl",
        "float coef(int d){
             int a = d < 0 ? -d : d;
             return a == 0 ? 6.0f : (a == 1 ? 4.0f : 1.0f);
         }
         __kernel void blur(__global const float* in, __global float* out,
                            int off, int w, int h){
             int gid = (int)get_global_id(0) + off;
             if (gid >= w * h) return;
             int x = gid % w;
             int y = gid / w;
             float acc = 0.0f;
             float norm = 0.0f;
             for (int dy = -2; dy <= 2; dy++) {
                 for (int dx = -2; dx <= 2; dx++) {
                     int sx = x + dx;
                     int sy = y + dy;
                     if (sx < 0) sx = 0;
                     if (sx >= w) sx = w - 1;
                     if (sy < 0) sy = 0;
                     if (sy >= h) sy = h - 1;
                     float wgt = coef(dx) * coef(dy);
                     acc += in[sy * w + sx] * wgt;
                     norm += wgt;
                 }
             }
             out[gid] = acc / norm;
         }",
    )
    .expect("compile blur");
    Shape {
        name: "gaussian_blur",
        program,
        kernel: "blur",
        inputs: vec![f32s(
            (0..w * h).map(|i| ((i * 2654435761) % 255) as f32 / 255.0),
        )],
        scalars: vec![Value::I32(w as i32), Value::I32(h as i32)],
        items: w * h,
        out_bytes_per_item: 4,
        reps: 2,
    }
}

fn main() {
    println!(
        "== Interpreter A/B: pooled fast engine vs legacy lockstep engine, {DEVICES} virtual GPUs ==\n"
    );
    println!(
        "{:<14} {:>10} {:>14} {:>14} {:>12} {:>8} {:>8}",
        "shape", "items", "fast (ms)", "lockstep (ms)", "speedup", "bytes", "ctrs"
    );

    let shapes = [dot_product(), mandelbrot(), gaussian_blur()];
    // Histograms for the report come from the fast-engine runs only, so
    // the p50/p90/p99 quantiles describe the engine under test.
    let profiler = Profiler::enabled();
    let mut rows = Vec::new();
    let mut all_identical = true;
    let mut speedups = Vec::new();
    let mut fast_stats = ExecStats::default();
    let mut lockstep_stats = ExecStats::default();
    for shape in &shapes {
        assert_eq!(
            shape
                .program
                .kernel(shape.kernel)
                .expect("kernel")
                .barrier_count,
            0,
            "{}: A/B shapes are barrier-free (the fast path under test)",
            shape.name
        );
        let fast = run_shape(
            shape,
            ExecStrategy::Fast,
            Observe {
                profiler: Some(&profiler),
                flight: None,
            },
        );
        let lockstep = run_shape(shape, ExecStrategy::Lockstep, Observe::default());
        let outputs_identical = fast.out == lockstep.out;
        let counters_identical = fast.counters == lockstep.counters;
        all_identical &= outputs_identical && counters_identical;
        fast_stats.merge(&fast.stats);
        lockstep_stats.merge(&lockstep.stats);

        let total_items = (shape.items * shape.reps) as f64;
        let fast_ms = fast.wall.as_secs_f64() * 1e3;
        let lockstep_ms = lockstep.wall.as_secs_f64() * 1e3;
        let speedup = lockstep.wall.as_secs_f64() / fast.wall.as_secs_f64();
        speedups.push(speedup);
        println!(
            "{:<14} {:>10} {:>14.2} {:>14.2} {:>11.2}x {:>8} {:>8}",
            shape.name,
            shape.items,
            fast_ms,
            lockstep_ms,
            speedup,
            if outputs_identical { "same" } else { "DIFF" },
            if counters_identical { "same" } else { "DIFF" },
        );
        rows.push((
            shape.name,
            Json::obj([
                ("items", (shape.items as u64).into()),
                ("reps", (shape.reps as u64).into()),
                ("outputs_identical", Json::Bool(outputs_identical)),
                ("counters_identical", Json::Bool(counters_identical)),
                (
                    "host",
                    Json::obj([
                        ("fast_wall_ms", Json::Num(fast_ms)),
                        ("lockstep_wall_ms", Json::Num(lockstep_ms)),
                        (
                            "fast_items_per_sec",
                            Json::Num(total_items / fast.wall.as_secs_f64()),
                        ),
                        (
                            "lockstep_items_per_sec",
                            Json::Num(total_items / lockstep.wall.as_secs_f64()),
                        ),
                        ("speedup", Json::Num(speedup)),
                    ]),
                ),
            ]),
        ));
    }

    // Acceptance: >=2x on the compute shapes, zero per-launch spawns on the
    // pooled engine, per-launch spawns on every legacy launch.
    let dot_2x = speedups[0] >= 2.0;
    let mandel_2x = speedups[1] >= 2.0;
    let zero_spawns = fast_stats.per_launch_thread_spawns == 0
        && fast_stats.pooled_launches == fast_stats.launches
        && fast_stats.launches > 0;
    let legacy_spawns = lockstep_stats.per_launch_thread_spawns >= lockstep_stats.legacy_launches;
    println!(
        "\nthread spawns: fast engine {} per-launch spawns over {} pooled launches \
         ({} persistent pool threads); legacy engine {} spawns over {} launches",
        fast_stats.per_launch_thread_spawns,
        fast_stats.pooled_launches,
        fast_stats.pool_threads,
        lockstep_stats.per_launch_thread_spawns,
        lockstep_stats.legacy_launches,
    );
    println!(
        "shape check: dot-product speedup {:.2}x (>=2x: {dot_2x}), mandelbrot {:.2}x (>=2x: {mandel_2x}), gaussian blur {:.2}x",
        speedups[0], speedups[1], speedups[2]
    );

    // Flight-recorder overhead on the dot-product workload: the recorder
    // rides the queue observer inside the timed loop, so the wall delta is
    // its real cost. Plain and instrumented runs are interleaved (min of
    // three each) so both see the same machine conditions.
    let flight = FlightRecorder::with_capacity(4_096);
    let mut plain_wall = Duration::MAX;
    let mut flight_wall = Duration::MAX;
    for _ in 0..3 {
        plain_wall =
            plain_wall.min(run_shape(&shapes[0], ExecStrategy::Fast, Observe::default()).wall);
        flight_wall = flight_wall.min(
            run_shape(
                &shapes[0],
                ExecStrategy::Fast,
                Observe {
                    profiler: None,
                    flight: Some(&flight),
                },
            )
            .wall,
        );
    }
    let flight_overhead = flight_wall.as_secs_f64() / plain_wall.as_secs_f64() - 1.0;
    let flight_under_5pct = flight_overhead < 0.05;
    assert!(
        flight.recorded() > 0,
        "instrumented runs must feed the recorder"
    );
    println!(
        "flight recorder: dot-product wall {:.2} ms plain vs {:.2} ms recorded ({:+.2}% overhead, <5%: {flight_under_5pct})",
        plain_wall.as_secs_f64() * 1e3,
        flight_wall.as_secs_f64() * 1e3,
        flight_overhead * 1e2,
    );

    let ok =
        dot_2x && mandel_2x && zero_spawns && legacy_spawns && all_identical && flight_under_5pct;
    println!(
        "\nresult: {}",
        if ok {
            "SHAPE REPRODUCED"
        } else {
            "SHAPE MISMATCH"
        }
    );

    let shape_objs: Vec<(&str, Json)> = rows;
    let report = bench_report(
        "interp",
        &[
            ("devices", (DEVICES as u64).into()),
            ("engines", Json::from("fast vs lockstep")),
        ],
        Json::obj(
            shape_objs
                .into_iter()
                .chain([
                    (
                        "flight_overhead",
                        Json::obj([
                            ("under_5pct", Json::Bool(flight_under_5pct)),
                            ("events_recorded", flight.recorded().into()),
                            (
                                "host",
                                Json::obj([
                                    ("plain_wall_ms", Json::Num(plain_wall.as_secs_f64() * 1e3)),
                                    ("flight_wall_ms", Json::Num(flight_wall.as_secs_f64() * 1e3)),
                                    ("overhead_pct", Json::Num(flight_overhead * 1e2)),
                                ]),
                            ),
                        ]),
                    ),
                    (
                        "acceptance",
                        Json::obj([
                            ("dot_product_fast_at_least_2x", Json::Bool(dot_2x)),
                            ("mandelbrot_fast_at_least_2x", Json::Bool(mandel_2x)),
                            ("zero_spawns_on_fast_path", Json::Bool(zero_spawns)),
                            ("legacy_spawns_per_launch", Json::Bool(legacy_spawns)),
                            (
                                "host",
                                Json::obj([
                                    ("fast_pool_threads", fast_stats.pool_threads.into()),
                                    (
                                        "legacy_thread_spawns",
                                        lockstep_stats.per_launch_thread_spawns.into(),
                                    ),
                                ]),
                            ),
                        ]),
                    ),
                    ("shape_reproduced", Json::Bool(ok)),
                ])
                .collect::<Vec<_>>(),
        ),
        profiler.metrics_snapshot().as_ref(),
    );
    let path = write_report("interp", &report).expect("write report");
    println!("report: {}", path.display());
    std::process::exit(i32::from(!ok));
}
