//! A/B benchmark of the two vgpu execution engines (EXT-INTERP from
//! DESIGN.md §5g): the pooled fast engine ([`vgpu::ExecStrategy::Fast`] —
//! persistent per-device worker pools, barrier-free work-item reuse,
//! zero-clone dispatch loop) against the legacy lockstep engine
//! ([`vgpu::ExecStrategy::Lockstep`] — per-launch scoped threads, fresh
//! per-item `WorkItem`s, reference interpreter), on four barrier-free
//! shapes: dot-product (elementwise zip-multiply), mandelbrot (iteration-
//! heavy), gaussian blur (5x5 stencil) and a strided reduction
//! (loop-dominated partial sums).
//!
//! A second section (EXT-IR from DESIGN.md §5h) A/Bs the two *compile*
//! pipelines on the same engine: the legacy HIR → stack-codegen path
//! (`SKELCL_KERNEL_OPT=0`) against the MIR optimization pipeline, per
//! pass and end-to-end. Instruction and dispatch counts there are
//! deterministic and gated; walls stay under `host` keys.
//!
//! Host wall-clock here is *real* time on the build machine, not simulated
//! nanoseconds, so the report nests all measured numbers under `host` keys
//! (the bench gate checks their presence, never their values). The gated
//! conclusions are the booleans: the fast engine is at least 2x the legacy
//! engine on dot-product and mandelbrot, pooled launches spawn zero
//! threads, both engines produce bit-identical buffers and counters, and
//! the optimized compile pipeline executes strictly fewer source ops and
//! dispatch-loop iterations than the legacy pipeline on blur and reduce.
//!
//! Usage: `cargo run --release -p skelcl-bench --bin interp`

use std::time::{Duration, Instant};

use skelcl_bench::report::write_report;
use skelcl_kernel::program::Program;
use skelcl_kernel::types::AddressSpace;
use skelcl_kernel::value::{Ptr, Value};
use skelcl_kernel::vm::{CostCounters, HostMemory, ItemGeometry, WorkItem};
use skelcl_kernel::{compile_with_config, OptConfig};
use skelcl_profile::json::Json;
use skelcl_profile::report::bench_report;
use skelcl_profile::{FlightRecorder, Profiler};
use vgpu::{DeviceSpec, ExecStats, ExecStrategy, KernelArg, LaunchConfig, NdRange, Platform};

const DEVICES: usize = 4;

/// One benchmark shape: a barrier-free kernel plus its inputs, split
/// across the platform's devices in contiguous chunks (each device
/// receives the full input buffers and an `off` scalar selecting its
/// chunk, like SkelCL's block distribution).
struct Shape {
    name: &'static str,
    /// Kernel source, kept so the EXT-IR section can recompile the shape
    /// under each `SKELCL_KERNEL_OPT` configuration.
    source: &'static str,
    program: Program,
    kernel: &'static str,
    /// Input buffer contents, uploaded to every device.
    inputs: Vec<Vec<u8>>,
    /// Scalar args appended after `off` (the per-device chunk offset).
    scalars: Vec<Value>,
    /// Total work-items across all devices.
    items: usize,
    out_bytes_per_item: usize,
    /// Timed repetitions (after one warm-up launch per device).
    reps: usize,
}

/// One engine's run of a shape: wall-clock over the timed reps, the
/// gathered output, per-device launch counters and the platform's
/// execution statistics.
struct EngineRun {
    wall: Duration,
    out: Vec<u8>,
    counters: Vec<CostCounters>,
    stats: ExecStats,
}

/// Optional observability attachments for one engine run. The two knobs
/// measure different things, so they sit on opposite sides of the timer:
/// an enabled [`Profiler`] has the run's events recorded *after* the
/// timed loop (filling the duration/size histograms for the report
/// without perturbing the A/B walls), while a [`FlightRecorder`] rides
/// the queue observers *inside* the timed loop, which is exactly the
/// overhead the `flight_overhead` acceptance check quantifies.
#[derive(Clone, Copy, Default)]
struct Observe<'a> {
    profiler: Option<&'a Profiler>,
    flight: Option<&'a FlightRecorder>,
}

fn run_shape(
    shape: &Shape,
    program: &Program,
    strategy: ExecStrategy,
    observe: Observe<'_>,
) -> EngineRun {
    // A fresh platform per engine keeps `ExecStats` attributable.
    let platform = Platform::new(DEVICES, DeviceSpec::tesla_t10());
    let config = LaunchConfig {
        strategy,
        ..LaunchConfig::default()
    };
    let chunk = shape.items.div_ceil(DEVICES);
    let out_bytes = shape.items * shape.out_bytes_per_item;

    let off = Profiler::disabled();
    let mut queues = Vec::new();
    let mut args = Vec::new();
    let mut outs = Vec::new();
    let mut uploads = Vec::new();
    for d in 0..DEVICES {
        let queue = platform.queue(d);
        if let Some(flight) = observe.flight {
            flight.attach_queue(&off, &queue);
        }
        let mut a = Vec::new();
        for input in &shape.inputs {
            let buf = queue.create_buffer(input.len().max(1)).expect("in buffer");
            uploads.push(queue.enqueue_write(&buf, 0, input).expect("upload"));
            a.push(KernelArg::Buffer(buf));
        }
        let out = queue.create_buffer(out_bytes.max(1)).expect("out buffer");
        a.push(KernelArg::Buffer(out.clone()));
        a.push(KernelArg::Scalar(Value::I32((d * chunk) as i32)));
        a.extend(shape.scalars.iter().map(|s| KernelArg::Scalar(*s)));
        queues.push(queue);
        args.push(a);
        outs.push(out);
    }

    let launch_all = || -> Vec<vgpu::Event> {
        let events: Vec<vgpu::Event> = (0..DEVICES)
            .filter(|d| d * chunk < shape.items)
            .map(|d| {
                let len = chunk.min(shape.items - d * chunk);
                queues[d]
                    .launch_kernel(
                        program,
                        shape.kernel,
                        &args[d],
                        NdRange::linear_default(len),
                        &config,
                    )
                    .expect("launch")
            })
            .collect();
        for e in &events {
            e.wait().expect("kernel completes");
        }
        events
    };

    launch_all(); // warm-up: pool creation, buffer residency
    let t = Instant::now();
    let mut last = Vec::new();
    for _ in 0..shape.reps {
        last = launch_all();
    }
    let wall = t.elapsed();

    let counters = last
        .iter()
        .map(|e| e.counters().expect("kernel events carry counters"))
        .collect();
    let mut out = vec![0u8; out_bytes];
    let mut gathers = Vec::new();
    for d in 0..DEVICES {
        let start = (d * chunk).min(shape.items) * shape.out_bytes_per_item;
        let end = ((d + 1) * chunk).min(shape.items) * shape.out_bytes_per_item;
        if start < end {
            gathers.push(
                queues[d]
                    .enqueue_read(&outs[d], start, &mut out[start..end])
                    .expect("gather"),
            );
        }
    }
    if let Some(profiler) = observe.profiler {
        for e in uploads.iter().chain(&last).chain(&gathers) {
            profiler.record_event(e);
        }
    }
    EngineRun {
        wall,
        out,
        counters,
        stats: platform.exec_stats(),
    }
}

fn f32s(vals: impl Iterator<Item = f32>) -> Vec<u8> {
    vals.flat_map(|v| v.to_le_bytes()).collect()
}

/// Specs for the EXT-IR per-pass sweep: the legacy stack pipeline, the
/// MIR pipeline with every pass off, each pass in isolation, and the
/// full default pipeline.
const IR_SPECS: [&str; 8] = [
    "0",
    "none",
    "const-prop",
    "cse",
    "dce",
    "licm",
    "unroll",
    "1",
];

/// Static and executed cost of one compile configuration on a small IR
/// case. Measured with a direct single-threaded [`WorkItem`] sweep — no
/// engine, no pools — so every number is exact and deterministic, which
/// lets the bench gate compare them without tolerance.
struct IrRun {
    static_ops: usize,
    static_dispatches: usize,
    executed: CostCounters,
    executed_dispatches: u64,
    out: Vec<u8>,
}

fn run_ir_case(
    name: &str,
    src: &str,
    kernel: &str,
    buffers: &[Vec<u8>],
    scalars: &[Value],
    items: u64,
    spec: &str,
) -> IrRun {
    let program = compile_with_config(name, src, &OptConfig::from_str_spec(spec))
        .unwrap_or_else(|e| panic!("compile {name} under spec {spec}: {e}"));
    let k = program.kernel(kernel).expect("kernel exists");
    let (static_ops, static_dispatches) = program.decode_stats(k.func as usize);

    let mut mem = HostMemory::new();
    let mut args = Vec::new();
    let mut out_buf = 0;
    for bytes in buffers {
        out_buf = mem.add_buffer(bytes.clone()); // last buffer is the output
        args.push(Value::Ptr(Ptr {
            space: AddressSpace::Global,
            buffer: out_buf,
            byte_offset: 0,
        }));
    }
    args.push(Value::I32(0)); // off
    args.extend_from_slice(scalars);

    let mut executed = CostCounters::default();
    let mut executed_dispatches = 0u64;
    for gid in 0..items {
        let geo = ItemGeometry {
            work_dim: 1,
            global_id: [gid, 0, 0],
            local_id: [gid, 0, 0],
            group_id: [0, 0, 0],
            global_size: [items, 1, 1],
            local_size: [items, 1, 1],
            num_groups: [1, 1, 1],
        };
        let mut item = WorkItem::new(&program, k.func, &args, geo);
        item.run(&mem, &mut []).expect("work-item completes");
        executed.merge(&item.counters);
        executed_dispatches += item.dispatches;
    }
    IrRun {
        static_ops,
        static_dispatches,
        executed,
        executed_dispatches,
        out: mem.bytes(out_buf),
    }
}

const DOTMUL_SRC: &str = "__kernel void dotmul(__global const float* a, __global const float* b,
                      __global float* out, int off, int n){
     int i = (int)get_global_id(0) + off;
     if (i < n) out[i] = a[i] * b[i];
 }";

const MANDEL_SRC: &str =
    "__kernel void mandel(__global int* out, int off, int w, int h, int max_iter){
     int gid = (int)get_global_id(0) + off;
     if (gid >= w * h) return;
     float x0 = (float)(gid % w) / (float)w * 3.5f - 2.5f;
     float y0 = (float)(gid / w) / (float)h * 2.0f - 1.0f;
     float x = 0.0f;
     float y = 0.0f;
     int it = 0;
     while (x * x + y * y <= 4.0f && it < max_iter) {
         float xt = x * x - y * y + x0;
         y = 2.0f * x * y + y0;
         x = xt;
         it = it + 1;
     }
     out[gid] = it;
 }";

const BLUR_SRC: &str = "float coef(int d){
     int a = d < 0 ? -d : d;
     return a == 0 ? 6.0f : (a == 1 ? 4.0f : 1.0f);
 }
 __kernel void blur(__global const float* in, __global float* out,
                    int off, int w, int h){
     int gid = (int)get_global_id(0) + off;
     if (gid >= w * h) return;
     int x = gid % w;
     int y = gid / w;
     float acc = 0.0f;
     float norm = 0.0f;
     for (int dy = -2; dy <= 2; dy++) {
         for (int dx = -2; dx <= 2; dx++) {
             int sx = x + dx;
             int sy = y + dy;
             if (sx < 0) sx = 0;
             if (sx >= w) sx = w - 1;
             if (sy < 0) sy = 0;
             if (sy >= h) sy = h - 1;
             float wgt = coef(dx) * coef(dy);
             acc += in[sy * w + sx] * wgt;
             norm += wgt;
         }
     }
     out[gid] = acc / norm;
 }";

const REDUCE_SRC: &str = "__kernel void reduce(__global const float* in, __global float* out,
                      int off, int n, int stride){
     int gid = (int)get_global_id(0) + off;
     float acc = 0.0f;
     for (int i = gid; i < n; i += stride) acc += in[i];
     out[gid] = acc;
 }";

fn dot_product() -> Shape {
    let n = 1usize << 20;
    let program = skelcl_kernel::compile("dotmul.cl", DOTMUL_SRC).expect("compile dotmul");
    Shape {
        name: "dot_product",
        source: DOTMUL_SRC,
        program,
        kernel: "dotmul",
        inputs: vec![
            f32s((0..n).map(|i| (i % 1000) as f32 * 0.25)),
            f32s((0..n).map(|i| (i % 773) as f32 * 0.5 - 100.0)),
        ],
        scalars: vec![Value::I32(n as i32)],
        items: n,
        out_bytes_per_item: 4,
        reps: 3,
    }
}

fn mandelbrot() -> Shape {
    let (w, h, max_iter) = (384usize, 288usize, 120i32);
    let program = skelcl_kernel::compile("mandel.cl", MANDEL_SRC).expect("compile mandel");
    Shape {
        name: "mandelbrot",
        source: MANDEL_SRC,
        program,
        kernel: "mandel",
        inputs: vec![],
        scalars: vec![
            Value::I32(w as i32),
            Value::I32(h as i32),
            Value::I32(max_iter),
        ],
        items: w * h,
        out_bytes_per_item: 4,
        reps: 2,
    }
}

fn gaussian_blur() -> Shape {
    let (w, h) = (320usize, 320usize);
    let program = skelcl_kernel::compile("blur.cl", BLUR_SRC).expect("compile blur");
    Shape {
        name: "gaussian_blur",
        source: BLUR_SRC,
        program,
        kernel: "blur",
        inputs: vec![f32s(
            (0..w * h).map(|i| ((i * 2654435761) % 255) as f32 / 255.0),
        )],
        scalars: vec![Value::I32(w as i32), Value::I32(h as i32)],
        items: w * h,
        out_bytes_per_item: 4,
        reps: 2,
    }
}

fn strided_reduce() -> Shape {
    // 4096 partial sums over 2^20 elements: each work-item walks the
    // input with a stride of the *total* item count (SkelCL's partial
    // reduction layout), so the kernel is loop-dominated — the shape the
    // MIR pipeline's preamble/exit wins matter least and dispatch-loop
    // savings matter most.
    let n = 1usize << 20;
    let items = 4096usize;
    let program = skelcl_kernel::compile("reduce.cl", REDUCE_SRC).expect("compile reduce");
    Shape {
        name: "strided_reduce",
        source: REDUCE_SRC,
        program,
        kernel: "reduce",
        inputs: vec![f32s((0..n).map(|i| ((i % 641) as f32) * 0.125 - 40.0))],
        scalars: vec![Value::I32(n as i32), Value::I32(items as i32)],
        items,
        out_bytes_per_item: 4,
        reps: 3,
    }
}

fn main() {
    println!(
        "== Interpreter A/B: pooled fast engine vs legacy lockstep engine, {DEVICES} virtual GPUs ==\n"
    );
    println!(
        "{:<14} {:>10} {:>14} {:>14} {:>12} {:>8} {:>8}",
        "shape", "items", "fast (ms)", "lockstep (ms)", "speedup", "bytes", "ctrs"
    );

    let shapes = [
        dot_product(),
        mandelbrot(),
        gaussian_blur(),
        strided_reduce(),
    ];
    // Histograms for the report come from the fast-engine runs only, so
    // the p50/p90/p99 quantiles describe the engine under test.
    let profiler = Profiler::enabled();
    let mut rows = Vec::new();
    let mut all_identical = true;
    let mut speedups = Vec::new();
    let mut fast_stats = ExecStats::default();
    let mut lockstep_stats = ExecStats::default();
    for shape in &shapes {
        assert_eq!(
            shape
                .program
                .kernel(shape.kernel)
                .expect("kernel")
                .barrier_count,
            0,
            "{}: A/B shapes are barrier-free (the fast path under test)",
            shape.name
        );
        let fast = run_shape(
            shape,
            &shape.program,
            ExecStrategy::Fast,
            Observe {
                profiler: Some(&profiler),
                flight: None,
            },
        );
        let lockstep = run_shape(
            shape,
            &shape.program,
            ExecStrategy::Lockstep,
            Observe::default(),
        );
        let outputs_identical = fast.out == lockstep.out;
        let counters_identical = fast.counters == lockstep.counters;
        all_identical &= outputs_identical && counters_identical;
        fast_stats.merge(&fast.stats);
        lockstep_stats.merge(&lockstep.stats);

        let total_items = (shape.items * shape.reps) as f64;
        let fast_ms = fast.wall.as_secs_f64() * 1e3;
        let lockstep_ms = lockstep.wall.as_secs_f64() * 1e3;
        let speedup = lockstep.wall.as_secs_f64() / fast.wall.as_secs_f64();
        speedups.push(speedup);
        println!(
            "{:<14} {:>10} {:>14.2} {:>14.2} {:>11.2}x {:>8} {:>8}",
            shape.name,
            shape.items,
            fast_ms,
            lockstep_ms,
            speedup,
            if outputs_identical { "same" } else { "DIFF" },
            if counters_identical { "same" } else { "DIFF" },
        );
        rows.push((
            shape.name,
            Json::obj([
                ("items", (shape.items as u64).into()),
                ("reps", (shape.reps as u64).into()),
                ("outputs_identical", Json::Bool(outputs_identical)),
                ("counters_identical", Json::Bool(counters_identical)),
                (
                    "host",
                    Json::obj([
                        ("fast_wall_ms", Json::Num(fast_ms)),
                        ("lockstep_wall_ms", Json::Num(lockstep_ms)),
                        (
                            "fast_items_per_sec",
                            Json::Num(total_items / fast.wall.as_secs_f64()),
                        ),
                        (
                            "lockstep_items_per_sec",
                            Json::Num(total_items / lockstep.wall.as_secs_f64()),
                        ),
                        ("speedup", Json::Num(speedup)),
                    ]),
                ),
            ]),
        ));
    }

    // Acceptance: >=2x on the compute shapes, zero per-launch spawns on the
    // pooled engine, per-launch spawns on every legacy launch.
    let dot_2x = speedups[0] >= 2.0;
    let mandel_2x = speedups[1] >= 2.0;
    let zero_spawns = fast_stats.per_launch_thread_spawns == 0
        && fast_stats.pooled_launches == fast_stats.launches
        && fast_stats.launches > 0;
    let legacy_spawns = lockstep_stats.per_launch_thread_spawns >= lockstep_stats.legacy_launches;
    println!(
        "\nthread spawns: fast engine {} per-launch spawns over {} pooled launches \
         ({} persistent pool threads); legacy engine {} spawns over {} launches",
        fast_stats.per_launch_thread_spawns,
        fast_stats.pooled_launches,
        fast_stats.pool_threads,
        lockstep_stats.per_launch_thread_spawns,
        lockstep_stats.legacy_launches,
    );
    println!(
        "shape check: dot-product speedup {:.2}x (>=2x: {dot_2x}), mandelbrot {:.2}x (>=2x: {mandel_2x}), gaussian blur {:.2}x, strided reduce {:.2}x",
        speedups[0], speedups[1], speedups[2], speedups[3]
    );

    // Flight-recorder overhead on the dot-product workload: the recorder
    // rides the queue observer inside the timed loop, so the wall delta is
    // its real cost. Plain and instrumented runs are interleaved (min of
    // three each) so both see the same machine conditions.
    let flight = FlightRecorder::with_capacity(4_096);
    let mut plain_wall = Duration::MAX;
    let mut flight_wall = Duration::MAX;
    for _ in 0..3 {
        plain_wall = plain_wall.min(
            run_shape(
                &shapes[0],
                &shapes[0].program,
                ExecStrategy::Fast,
                Observe::default(),
            )
            .wall,
        );
        flight_wall = flight_wall.min(
            run_shape(
                &shapes[0],
                &shapes[0].program,
                ExecStrategy::Fast,
                Observe {
                    profiler: None,
                    flight: Some(&flight),
                },
            )
            .wall,
        );
    }
    let flight_overhead = flight_wall.as_secs_f64() / plain_wall.as_secs_f64() - 1.0;
    let flight_under_5pct = flight_overhead < 0.05;
    assert!(
        flight.recorded() > 0,
        "instrumented runs must feed the recorder"
    );
    println!(
        "flight recorder: dot-product wall {:.2} ms plain vs {:.2} ms recorded ({:+.2}% overhead, <5%: {flight_under_5pct})",
        plain_wall.as_secs_f64() * 1e3,
        flight_wall.as_secs_f64() * 1e3,
        flight_overhead * 1e2,
    );

    // EXT-IR: A/B of the two compile pipelines. First the per-pass sweep
    // on small variants of the two loop-heavy shapes, measured exactly
    // with direct work-item sweeps (deterministic counts: these gate);
    // then legacy-vs-optimized wall clock on the fast engine with the
    // full-size shapes (host keys: presence-checked only).
    println!("\n== IR pipeline A/B: legacy stack codegen vs MIR passes (SKELCL_KERNEL_OPT) ==\n");
    let (bw, bh) = (64usize, 64usize);
    let (rn, ritems) = (16384usize, 256u64);
    let ir_cases = [
        (
            "blur",
            BLUR_SRC,
            "blur",
            vec![
                f32s((0..bw * bh).map(|i| ((i * 2654435761) % 255) as f32 / 255.0)),
                vec![0u8; bw * bh * 4],
            ],
            vec![Value::I32(bw as i32), Value::I32(bh as i32)],
            (bw * bh) as u64,
        ),
        (
            "reduce",
            REDUCE_SRC,
            "reduce",
            vec![
                f32s((0..rn).map(|i| (i as f32) * 0.25)),
                vec![0u8; ritems as usize * 4],
            ],
            vec![Value::I32(rn as i32), Value::I32(ritems as i32)],
            ritems,
        ),
    ];
    let mut ir_objs: Vec<(&str, Json)> = Vec::new();
    let mut ir_ok = true;
    for (name, src, kernel, buffers, scalars, items) in &ir_cases {
        println!("{name} ({items} items):");
        println!(
            "{:>12} {:>11} {:>12} {:>13} {:>14}",
            "spec", "static_ops", "static_disp", "executed_ops", "executed_disp"
        );
        let runs: Vec<IrRun> = IR_SPECS
            .iter()
            .map(|spec| {
                let r = run_ir_case(name, src, kernel, buffers, scalars, *items, spec);
                println!(
                    "{:>12} {:>11} {:>12} {:>13} {:>14}",
                    spec, r.static_ops, r.static_dispatches, r.executed.ops, r.executed_dispatches
                );
                r
            })
            .collect();
        let legacy = &runs[0];
        let full = runs.last().expect("spec list is non-empty");
        let outputs_identical = runs.iter().all(|r| r.out == legacy.out);
        let fewer_ops = full.executed.ops < legacy.executed.ops;
        let fewer_dispatches = full.executed_dispatches < legacy.executed_dispatches;
        ir_ok &= outputs_identical && fewer_ops && fewer_dispatches;
        let ops_saved = legacy.executed.ops.saturating_sub(full.executed.ops);
        let dispatches_saved = legacy
            .executed_dispatches
            .saturating_sub(full.executed_dispatches);
        println!(
            "  ops_saved={ops_saved} dispatches_saved={dispatches_saved} \
             (fewer ops: {fewer_ops}, fewer dispatches: {fewer_dispatches}, \
             outputs identical: {outputs_identical})\n"
        );
        let spec_objs: Vec<(&str, Json)> = IR_SPECS
            .iter()
            .zip(&runs)
            .map(|(spec, r)| {
                (
                    *spec,
                    Json::obj([
                        ("static_ops", (r.static_ops as u64).into()),
                        ("static_dispatches", (r.static_dispatches as u64).into()),
                        ("executed_ops", r.executed.ops.into()),
                        ("executed_dispatches", r.executed_dispatches.into()),
                    ]),
                )
            })
            .collect();
        ir_objs.push((
            name,
            Json::obj([
                ("items", (*items).into()),
                (
                    "outputs_identical_across_specs",
                    Json::Bool(outputs_identical),
                ),
                ("opt_executes_fewer_ops", Json::Bool(fewer_ops)),
                (
                    "opt_executes_fewer_dispatches",
                    Json::Bool(fewer_dispatches),
                ),
                (
                    "counters",
                    Json::obj([
                        ("ops_saved", ops_saved.into()),
                        ("dispatches_saved", dispatches_saved.into()),
                    ]),
                ),
                ("specs", Json::obj(spec_objs)),
            ]),
        ));
    }

    // End-to-end on the engine: recompile the loop shapes with the legacy
    // pipeline and race both programs on the fast engine (min of three,
    // interleaved so both see the same machine conditions).
    for shape in [&shapes[2], &shapes[3]] {
        let legacy_prog =
            compile_with_config(shape.name, shape.source, &OptConfig::from_str_spec("0"))
                .expect("legacy compile");
        let mut legacy_wall = Duration::MAX;
        let mut opt_wall = Duration::MAX;
        let mut outputs_identical = true;
        for _ in 0..3 {
            let legacy = run_shape(shape, &legacy_prog, ExecStrategy::Fast, Observe::default());
            let opt = run_shape(
                shape,
                &shape.program,
                ExecStrategy::Fast,
                Observe::default(),
            );
            outputs_identical &= legacy.out == opt.out;
            legacy_wall = legacy_wall.min(legacy.wall);
            opt_wall = opt_wall.min(opt.wall);
        }
        let ir_speedup = legacy_wall.as_secs_f64() / opt_wall.as_secs_f64();
        ir_ok &= outputs_identical;
        println!(
            "{}: legacy compile {:.2} ms vs optimized {:.2} ms on the fast engine \
             ({:.2}x, outputs {})",
            shape.name,
            legacy_wall.as_secs_f64() * 1e3,
            opt_wall.as_secs_f64() * 1e3,
            ir_speedup,
            if outputs_identical { "same" } else { "DIFF" },
        );
        ir_objs.push((
            shape.name,
            Json::obj([
                ("outputs_identical", Json::Bool(outputs_identical)),
                (
                    "host",
                    Json::obj([
                        ("legacy_wall_ms", Json::Num(legacy_wall.as_secs_f64() * 1e3)),
                        ("opt_wall_ms", Json::Num(opt_wall.as_secs_f64() * 1e3)),
                        ("speedup", Json::Num(ir_speedup)),
                    ]),
                ),
            ]),
        ));
    }
    println!("ir pipeline check: optimized compile strictly cheaper and bit-identical: {ir_ok}");

    let ok = dot_2x
        && mandel_2x
        && zero_spawns
        && legacy_spawns
        && all_identical
        && flight_under_5pct
        && ir_ok;
    println!(
        "\nresult: {}",
        if ok {
            "SHAPE REPRODUCED"
        } else {
            "SHAPE MISMATCH"
        }
    );

    let shape_objs: Vec<(&str, Json)> = rows;
    let report = bench_report(
        "interp",
        &[
            ("devices", (DEVICES as u64).into()),
            ("engines", Json::from("fast vs lockstep")),
        ],
        Json::obj(
            shape_objs
                .into_iter()
                .chain([
                    ("ir", Json::obj(ir_objs)),
                    (
                        "flight_overhead",
                        Json::obj([
                            ("under_5pct", Json::Bool(flight_under_5pct)),
                            ("events_recorded", flight.recorded().into()),
                            (
                                "host",
                                Json::obj([
                                    ("plain_wall_ms", Json::Num(plain_wall.as_secs_f64() * 1e3)),
                                    ("flight_wall_ms", Json::Num(flight_wall.as_secs_f64() * 1e3)),
                                    ("overhead_pct", Json::Num(flight_overhead * 1e2)),
                                ]),
                            ),
                        ]),
                    ),
                    (
                        "acceptance",
                        Json::obj([
                            ("dot_product_fast_at_least_2x", Json::Bool(dot_2x)),
                            ("mandelbrot_fast_at_least_2x", Json::Bool(mandel_2x)),
                            ("zero_spawns_on_fast_path", Json::Bool(zero_spawns)),
                            ("legacy_spawns_per_launch", Json::Bool(legacy_spawns)),
                            (
                                "host",
                                Json::obj([
                                    ("fast_pool_threads", fast_stats.pool_threads.into()),
                                    (
                                        "legacy_thread_spawns",
                                        lockstep_stats.per_launch_thread_spawns.into(),
                                    ),
                                ]),
                            ),
                        ]),
                    ),
                    ("shape_reproduced", Json::Bool(ok)),
                ])
                .collect::<Vec<_>>(),
        ),
        profiler.metrics_snapshot().as_ref(),
    );
    let path = write_report("interp", &report).expect("write report");
    println!("report: {}", path.display());
    std::process::exit(i32::from(!ok));
}
