//! Reproduces the paper's **Figure 4**: program size (LoC) and runtime of
//! the Mandelbrot application in CUDA, OpenCL and SkelCL.
//!
//! Usage: `cargo run --release -p skelcl-bench --bin fig4_mandelbrot [--full]`
//!
//! `--full` runs the paper's 4096×3072 configuration (slow under the
//! interpreter); the default is a proportionally scaled-down frame. Shapes
//! to check against the paper: CUDA fastest (~31% over OpenCL), SkelCL
//! within ~5% of OpenCL, and the OpenCL program more than twice the size
//! of the CUDA and SkelCL programs.

use skelcl_bench::baselines::{mandelbrot_cuda, mandelbrot_opencl, mandelbrot_skelcl, sources};
use skelcl_bench::loc::{paper, split_kernel_host};
use skelcl_bench::report::{ms, profiled_ctx, write_report};
use skelcl_profile::json::Json;
use skelcl_profile::report::bench_report;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    // The paper's runs take ~25 s per frame on the Tesla, i.e. thousands
    // of iterations per pixel: a strongly compute-dominated regime. The
    // default scales the frame down but keeps the high iteration cap so
    // the per-variant ratios (the figure's shape) are preserved.
    let (width, height, max_iter) = if full {
        (4096, 3072, 3000)
    } else {
        (256, 192, 3000)
    };

    println!("== Figure 4 (a): Mandelbrot program size, lines of code ==\n");
    println!(
        "{:<10} {:>28} {:>28}",
        "variant", "this repo (kernel/host/total)", "paper (kernel/host/total)"
    );
    let rows = [
        (
            "CUDA",
            split_kernel_host(sources::MANDELBROT_CUDA),
            paper::MANDELBROT_CUDA,
        ),
        (
            "OpenCL",
            split_kernel_host(sources::MANDELBROT_OPENCL),
            paper::MANDELBROT_OPENCL,
        ),
        (
            "SkelCL",
            split_kernel_host(sources::MANDELBROT_SKELCL),
            paper::MANDELBROT_SKELCL,
        ),
    ];
    for (name, ours, theirs) in rows {
        println!(
            "{:<10} {:>12}/{:>4}/{:>5} {:>16}/{:>4}/{:>5}",
            name,
            ours.kernel,
            ours.host,
            ours.total(),
            theirs.kernel,
            theirs.host,
            theirs.total()
        );
    }
    let ocl = split_kernel_host(sources::MANDELBROT_OPENCL).total() as f64;
    let cuda = split_kernel_host(sources::MANDELBROT_CUDA).total() as f64;
    let skel = split_kernel_host(sources::MANDELBROT_SKELCL).total() as f64;
    println!(
        "\nshape check: OpenCL/CUDA size ratio = {:.2} (paper: {:.2}), OpenCL/SkelCL = {:.2} (paper: {:.2})",
        ocl / cuda,
        118.0 / 49.0,
        ocl / skel,
        118.0 / 57.0
    );

    println!(
        "\n== Figure 4 (b): Mandelbrot runtime, {width}x{height}, max_iter {max_iter}, 1 GPU =="
    );
    println!("(simulated seconds on one virtual Tesla T10; paper seconds for 4096x3072)\n");
    let cuda_run = mandelbrot_cuda::run(width, height, max_iter).expect("cuda run");
    let ocl_run = mandelbrot_opencl::run(width, height, max_iter).expect("opencl run");
    let skel_run = mandelbrot_skelcl::run(width, height, max_iter).expect("skelcl run");
    assert_eq!(cuda_run.output, ocl_run.output, "variants agree");
    assert_eq!(skel_run.output, ocl_run.output, "variants agree");

    println!(
        "{:<10} {:>16} {:>14}",
        "variant", "measured (s)", "paper (s)"
    );
    for ((name, paper_s), run) in paper::MANDELBROT_SECONDS
        .iter()
        .zip([&cuda_run, &ocl_run, &skel_run])
    {
        println!(
            "{:<10} {:>16.4} {:>14.1}",
            name,
            run.total.as_secs_f64(),
            paper_s
        );
    }

    let cuda_speedup = ocl_run.kernel.as_secs_f64() / cuda_run.kernel.as_secs_f64();
    let skel_overhead = skel_run.kernel.as_secs_f64() / ocl_run.kernel.as_secs_f64();
    println!(
        "\nshape check: CUDA speedup over OpenCL = {:.2}x (paper: {:.2}x)",
        cuda_speedup,
        25.0 / 18.0
    );
    println!(
        "shape check: SkelCL kernel overhead over OpenCL = {:+.1}% (paper: ~+4% total)",
        (skel_overhead - 1.0) * 100.0
    );
    let ok = cuda_speedup > 1.2 && skel_overhead < 1.10;
    println!(
        "\nresult: {}",
        if ok {
            "SHAPE REPRODUCED"
        } else {
            "SHAPE MISMATCH"
        }
    );

    // Machine-readable report: the table above, plus the profiler's view of
    // an instrumented SkelCL run (transfer bytes, compile cache, busy-ns).
    let profiled = profiled_ctx(1);
    let prof_run =
        mandelbrot_skelcl::run_on(&profiled, width, height, max_iter).expect("profiled skelcl run");
    let metrics = profiled
        .profiler()
        .metrics_snapshot()
        .expect("profiler enabled");
    let report = bench_report(
        "fig4_mandelbrot",
        &[
            ("width", (width as u64).into()),
            ("height", (height as u64).into()),
            ("max_iter", (max_iter as u64).into()),
            ("full", Json::Bool(full)),
        ],
        Json::obj([
            ("cuda_total_ms", ms(cuda_run.total)),
            ("opencl_total_ms", ms(ocl_run.total)),
            ("skelcl_total_ms", ms(skel_run.total)),
            ("cuda_kernel_ms", ms(cuda_run.kernel)),
            ("opencl_kernel_ms", ms(ocl_run.kernel)),
            ("skelcl_kernel_ms", ms(skel_run.kernel)),
            ("profiled_skelcl_kernel_ms", ms(prof_run.kernel)),
            ("cuda_speedup_over_opencl", Json::Num(cuda_speedup)),
            ("skelcl_kernel_overhead", Json::Num(skel_overhead)),
            ("shape_reproduced", Json::Bool(ok)),
        ]),
        Some(&metrics),
    );
    let path = write_report("fig4_mandelbrot", &report).expect("write report");
    println!("report: {}", path.display());
    std::process::exit(i32::from(!ok));
}
