//! Reproduces the paper's **Figure 4**: program size (LoC) and runtime of
//! the Mandelbrot application in CUDA, OpenCL and SkelCL.
//!
//! Usage: `cargo run --release -p skelcl-bench --bin fig4_mandelbrot [--full]`
//!
//! `--full` runs the paper's 4096×3072 configuration (slow under the
//! interpreter); the default is a proportionally scaled-down frame. Shapes
//! to check against the paper: CUDA fastest (~31% over OpenCL), SkelCL
//! within ~5% of OpenCL, and the OpenCL program more than twice the size
//! of the CUDA and SkelCL programs.

use skelcl_bench::baselines::{
    mandelbrot_cuda, mandelbrot_opencl, mandelbrot_skelcl, sources,
};
use skelcl_bench::loc::{paper, split_kernel_host};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    // The paper's runs take ~25 s per frame on the Tesla, i.e. thousands
    // of iterations per pixel: a strongly compute-dominated regime. The
    // default scales the frame down but keeps the high iteration cap so
    // the per-variant ratios (the figure's shape) are preserved.
    let (width, height, max_iter) =
        if full { (4096, 3072, 3000) } else { (256, 192, 3000) };

    println!("== Figure 4 (a): Mandelbrot program size, lines of code ==\n");
    println!(
        "{:<10} {:>28} {:>28}",
        "variant", "this repo (kernel/host/total)", "paper (kernel/host/total)"
    );
    let rows = [
        ("CUDA", split_kernel_host(sources::MANDELBROT_CUDA), paper::MANDELBROT_CUDA),
        ("OpenCL", split_kernel_host(sources::MANDELBROT_OPENCL), paper::MANDELBROT_OPENCL),
        ("SkelCL", split_kernel_host(sources::MANDELBROT_SKELCL), paper::MANDELBROT_SKELCL),
    ];
    for (name, ours, theirs) in rows {
        println!(
            "{:<10} {:>12}/{:>4}/{:>5} {:>16}/{:>4}/{:>5}",
            name,
            ours.kernel,
            ours.host,
            ours.total(),
            theirs.kernel,
            theirs.host,
            theirs.total()
        );
    }
    let ocl = split_kernel_host(sources::MANDELBROT_OPENCL).total() as f64;
    let cuda = split_kernel_host(sources::MANDELBROT_CUDA).total() as f64;
    let skel = split_kernel_host(sources::MANDELBROT_SKELCL).total() as f64;
    println!(
        "\nshape check: OpenCL/CUDA size ratio = {:.2} (paper: {:.2}), OpenCL/SkelCL = {:.2} (paper: {:.2})",
        ocl / cuda,
        118.0 / 49.0,
        ocl / skel,
        118.0 / 57.0
    );

    println!(
        "\n== Figure 4 (b): Mandelbrot runtime, {width}x{height}, max_iter {max_iter}, 1 GPU =="
    );
    println!("(simulated seconds on one virtual Tesla T10; paper seconds for 4096x3072)\n");
    let cuda_run = mandelbrot_cuda::run(width, height, max_iter).expect("cuda run");
    let ocl_run = mandelbrot_opencl::run(width, height, max_iter).expect("opencl run");
    let skel_run = mandelbrot_skelcl::run(width, height, max_iter).expect("skelcl run");
    assert_eq!(cuda_run.output, ocl_run.output, "variants agree");
    assert_eq!(skel_run.output, ocl_run.output, "variants agree");

    println!("{:<10} {:>16} {:>14}", "variant", "measured (s)", "paper (s)");
    for ((name, paper_s), run) in paper::MANDELBROT_SECONDS
        .iter()
        .zip([&cuda_run, &ocl_run, &skel_run])
    {
        println!("{:<10} {:>16.4} {:>14.1}", name, run.total.as_secs_f64(), paper_s);
    }

    let cuda_speedup = ocl_run.kernel.as_secs_f64() / cuda_run.kernel.as_secs_f64();
    let skel_overhead = skel_run.kernel.as_secs_f64() / ocl_run.kernel.as_secs_f64();
    println!(
        "\nshape check: CUDA speedup over OpenCL = {:.2}x (paper: {:.2}x)",
        cuda_speedup,
        25.0 / 18.0
    );
    println!(
        "shape check: SkelCL kernel overhead over OpenCL = {:+.1}% (paper: ~+4% total)",
        (skel_overhead - 1.0) * 100.0
    );
    let ok = cuda_speedup > 1.2 && skel_overhead < 1.10;
    println!("\nresult: {}", if ok { "SHAPE REPRODUCED" } else { "SHAPE MISMATCH" });
    std::process::exit(i32::from(!ok));
}
