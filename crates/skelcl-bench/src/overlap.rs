//! Transfer/compute overlap analysis over profiler spans.
//!
//! The async queue engine lets one device's uploads and downloads proceed
//! while other devices are still computing. This module quantifies that:
//! for every device, how many of its transfer nanoseconds were *hidden*
//! behind some other device's kernel time — the interval intersection of
//! the device's transfer spans with the union of every other device's
//! kernel spans. All device timelines share the simulated epoch (platform
//! creation = 0 ns), so cross-device comparison is exact.

use skelcl_profile::{Lane, SpanKind, SpanRecord};

/// Per-device transfer/compute overlap totals, indexed by device id.
#[derive(Debug, Clone, Default)]
pub struct OverlapStats {
    /// Transfer ns on this device that coincided with kernel execution on
    /// at least one *other* device.
    pub hidden_transfer_ns: Vec<u64>,
    /// Total transfer ns on this device (upload + download + copy).
    pub transfer_ns: Vec<u64>,
}

impl OverlapStats {
    /// Hidden transfer ns summed across devices.
    pub fn total_hidden_ns(&self) -> u64 {
        self.hidden_transfer_ns.iter().sum()
    }

    /// Total transfer ns summed across devices.
    pub fn total_transfer_ns(&self) -> u64 {
        self.transfer_ns.iter().sum()
    }
}

/// Computes per-device hidden-transfer time from recorded spans.
///
/// Host-lane spans are ignored; only device-lane transfer spans
/// ([`SpanKind::Upload`], [`SpanKind::Download`], [`SpanKind::Copy`]) and
/// kernel spans participate.
pub fn overlap_stats(spans: &[SpanRecord]) -> OverlapStats {
    let devices = spans
        .iter()
        .filter_map(|s| match s.lane {
            Lane::Device(d) => Some(d + 1),
            Lane::Host => None,
        })
        .max()
        .unwrap_or(0);
    let mut kernels: Vec<Vec<(u64, u64)>> = vec![Vec::new(); devices];
    let mut transfers: Vec<Vec<(u64, u64)>> = vec![Vec::new(); devices];
    for s in spans {
        let Lane::Device(d) = s.lane else { continue };
        match s.kind {
            SpanKind::Kernel => kernels[d].push((s.start_ns, s.end_ns)),
            SpanKind::Upload | SpanKind::Download | SpanKind::Copy => {
                transfers[d].push((s.start_ns, s.end_ns));
            }
            _ => {}
        }
    }
    let mut stats = OverlapStats::default();
    for (d, device_transfers) in transfers.into_iter().enumerate() {
        let mine = merge(device_transfers);
        let others = merge(
            kernels
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != d)
                .flat_map(|(_, iv)| iv.iter().copied())
                .collect(),
        );
        stats
            .hidden_transfer_ns
            .push(intersection_ns(&mine, &others));
        stats
            .transfer_ns
            .push(mine.iter().map(|&(s, e)| e - s).sum());
    }
    stats
}

/// Sorts and merges overlapping/adjacent intervals into a disjoint list.
fn merge(mut intervals: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    intervals.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (start, end) in intervals {
        match out.last_mut() {
            Some(last) if start <= last.1 => last.1 = last.1.max(end),
            _ => out.push((start, end)),
        }
    }
    out
}

/// Total length of the intersection of two disjoint sorted interval lists.
fn intersection_ns(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        let start = a[i].0.max(b[j].0);
        let end = a[i].1.min(b[j].1);
        if end > start {
            total += end - start;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(device: usize, kind: SpanKind, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id: 1,
            parent: 0,
            name: String::new(),
            kind,
            lane: Lane::Device(device),
            queued_ns: None,
            start_ns: start,
            end_ns: end,
            bytes: None,
            nd_range: None,
            counters: None,
            extras: Vec::new(),
        }
    }

    #[test]
    fn merge_coalesces_overlaps() {
        assert_eq!(
            merge(vec![(5, 10), (0, 3), (9, 12), (3, 4)]),
            vec![(0, 4), (5, 12)]
        );
    }

    #[test]
    fn intersection_sums_pairwise_overlap() {
        let a = [(0, 10), (20, 30)];
        let b = [(5, 25)];
        // [5,10) + [20,25)
        assert_eq!(intersection_ns(&a, &b), 10);
    }

    #[test]
    fn transfer_behind_other_devices_kernel_is_hidden() {
        let spans = vec![
            // Device 0 uploads [0,100), then computes [100,300).
            span(0, SpanKind::Upload, 0, 100),
            span(0, SpanKind::Kernel, 100, 300),
            // Device 1 uploads [0,150) — the tail [100,150) is hidden
            // behind device 0's kernel — then downloads [400,500), fully
            // exposed (nothing else is computing).
            span(1, SpanKind::Upload, 0, 150),
            span(1, SpanKind::Download, 400, 500),
        ];
        let stats = overlap_stats(&spans);
        assert_eq!(stats.hidden_transfer_ns, vec![0, 50]);
        assert_eq!(stats.transfer_ns, vec![100, 250]);
        assert_eq!(stats.total_hidden_ns(), 50);
    }

    #[test]
    fn own_kernels_do_not_hide_own_transfers() {
        // An in-order queue cannot overlap with itself: a single device's
        // kernels must not count.
        let spans = vec![
            span(0, SpanKind::Upload, 0, 100),
            span(0, SpanKind::Kernel, 50, 300),
        ];
        let stats = overlap_stats(&spans);
        assert_eq!(stats.hidden_transfer_ns, vec![0]);
    }

    #[test]
    fn empty_spans_yield_empty_stats() {
        let stats = overlap_stats(&[]);
        assert!(stats.hidden_transfer_ns.is_empty());
        assert_eq!(stats.total_hidden_ns(), 0);
    }
}
