//! Lines-of-code accounting for the programming-effort comparisons
//! (paper Fig. 4 and §3.3/§4.2), applied to this reproduction's own
//! implementation sources exactly as the paper applies it to SDK samples.

/// Counts non-blank, non-comment lines (`//` lines and `/* */` blocks are
/// excluded; code sharing a line with a trailing comment counts).
pub fn count_loc(source: &str) -> usize {
    let mut in_block_comment = false;
    let mut count = 0;
    for line in source.lines() {
        let mut code = false;
        let mut rest = line.trim();
        while !rest.is_empty() {
            if in_block_comment {
                match rest.find("*/") {
                    Some(i) => {
                        in_block_comment = false;
                        rest = rest[i + 2..].trim_start();
                    }
                    None => break,
                }
            } else if let Some(i) = rest.find("/*") {
                if rest[..i].find("//").is_some() {
                    // Line comment precedes the block start.
                    if !rest[..rest.find("//").unwrap()].trim().is_empty() {
                        code = true;
                    }
                    break;
                }
                if !rest[..i].trim().is_empty() {
                    code = true;
                }
                in_block_comment = true;
                rest = rest[i + 2..].trim_start();
            } else if let Some(i) = rest.find("//") {
                if !rest[..i].trim().is_empty() {
                    code = true;
                }
                break;
            } else {
                code = true;
                break;
            }
        }
        if code {
            count += 1;
        }
    }
    count
}

/// One implementation's size, split like the paper's Fig. 4 bars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramSize {
    /// Kernel-function lines.
    pub kernel: usize,
    /// Host-program lines.
    pub host: usize,
}

impl ProgramSize {
    /// Total lines.
    pub fn total(&self) -> usize {
        self.kernel + self.host
    }
}

/// The paper's reported program sizes for the Mandelbrot application
/// (Fig. 4): `(kernel, host)` lines.
pub mod paper {
    use super::ProgramSize;

    /// CUDA Mandelbrot: 49 total (28 kernel, 21 host).
    pub const MANDELBROT_CUDA: ProgramSize = ProgramSize {
        kernel: 28,
        host: 21,
    };
    /// OpenCL Mandelbrot: 118 total (28 kernel, 90 host).
    pub const MANDELBROT_OPENCL: ProgramSize = ProgramSize {
        kernel: 28,
        host: 90,
    };
    /// SkelCL Mandelbrot: 57 total (26 kernel, 31 host).
    pub const MANDELBROT_SKELCL: ProgramSize = ProgramSize {
        kernel: 26,
        host: 31,
    };

    /// NVIDIA SDK dot product (§3.3): 68 total (9 kernel, 59 host).
    pub const DOT_OPENCL: ProgramSize = ProgramSize {
        kernel: 9,
        host: 59,
    };

    /// Sobel kernel sizes (§4.2): AMD 37 lines, NVIDIA 208 lines.
    pub const SOBEL_KERNEL_AMD: usize = 37;
    /// NVIDIA SDK Sobel kernel lines.
    pub const SOBEL_KERNEL_NVIDIA: usize = 208;

    /// Paper runtimes for Mandelbrot on one Tesla GPU (Fig. 4), seconds.
    pub const MANDELBROT_SECONDS: [(&str, f64); 3] =
        [("CUDA", 18.0), ("OpenCL", 25.0), ("SkelCL", 26.0)];

    /// Paper kernel runtimes for Sobel on 512×512 (Fig. 5), milliseconds
    /// (read off the figure).
    pub const SOBEL_MS: [(&str, f64); 3] = [
        ("OpenCL (AMD)", 0.23),
        ("OpenCL (NVIDIA)", 0.07),
        ("SkelCL", 0.066),
    ];
}

/// Splits an implementation source file into kernel and host LoC.
///
/// * The kernel part is everything between `// BEGIN KERNEL` /
///   `// END KERNEL` markers (the markers themselves do not count).
/// * If the file contains `// BEGIN PROGRAM` / `// END PROGRAM` markers,
///   only those regions are counted at all — this excludes test modules
///   and benchmarking wrappers, so the comparison covers the *application
///   program*, like the paper's standalone samples.
/// * Without program markers, everything before the first `#[cfg(test)]`
///   counts.
pub fn split_kernel_host(source: &str) -> ProgramSize {
    let mut kernel_text = String::new();
    let mut host_text = String::new();
    let mut in_kernel = false;
    let has_program_markers = source.contains("// BEGIN PROGRAM");
    let mut in_program = !has_program_markers;
    for line in source.lines() {
        let t = line.trim();
        if t.starts_with("// BEGIN PROGRAM") {
            in_program = true;
            continue;
        }
        if t.starts_with("// END PROGRAM") {
            in_program = false;
            continue;
        }
        if !has_program_markers && t.starts_with("#[cfg(test)]") {
            break;
        }
        if t.starts_with("// BEGIN KERNEL") {
            in_kernel = true;
            continue;
        }
        if t.starts_with("// END KERNEL") {
            in_kernel = false;
            continue;
        }
        if !in_program {
            continue;
        }
        if in_kernel {
            kernel_text.push_str(line);
            kernel_text.push('\n');
        } else {
            host_text.push_str(line);
            host_text.push('\n');
        }
    }
    ProgramSize {
        kernel: count_loc(&kernel_text),
        host: count_loc(&host_text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_code_not_comments() {
        let src = "\
// a comment
int x = 1; // trailing
/* block
   comment */
int y = 2;

/* inline */ int z = 3;
";
        assert_eq!(count_loc(src), 3);
    }

    #[test]
    fn empty_and_whitespace() {
        assert_eq!(count_loc(""), 0);
        assert_eq!(count_loc("\n\n   \n"), 0);
        assert_eq!(count_loc("x"), 1);
    }

    #[test]
    fn block_comment_spanning_code() {
        let src = "a /* start\n middle \n end */ b\nc";
        assert_eq!(count_loc(src), 3); // `a`, `b`, `c` lines have code
    }

    #[test]
    fn kernel_host_split() {
        let src = "\
host line 1
// BEGIN KERNEL
kernel line 1
kernel line 2
// END KERNEL
host line 2
";
        let s = split_kernel_host(src);
        assert_eq!(s, ProgramSize { kernel: 2, host: 2 });
        assert_eq!(s.total(), 4);
    }

    #[test]
    fn paper_constants_match_text() {
        assert_eq!(paper::MANDELBROT_CUDA.total(), 49);
        assert_eq!(paper::MANDELBROT_OPENCL.total(), 118);
        assert_eq!(paper::MANDELBROT_SKELCL.total(), 57);
        assert_eq!(paper::DOT_OPENCL.total(), 68);
    }
}
