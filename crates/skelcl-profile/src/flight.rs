//! The flight recorder: an always-cheap, bounded ring buffer of compact
//! structured events for postmortem debugging.
//!
//! Where the [`Profiler`](crate::Profiler) records *everything* (and is
//! therefore off by default), the flight recorder keeps only the last `N`
//! events — launch begin/end, transfers, redistributions, plan-node
//! completions, pool dispatches — in a fixed-size ring that never grows.
//! Recording an event is a sequence-number increment plus one short
//! critical section writing a `Copy` struct into a preallocated slot; the
//! disabled recorder (the default) is a single `Option` check with no heap
//! or lock, exactly like the disabled profiler.
//!
//! The payoff is the crash story: when a command fails with
//! [`vgpu::Error::DeviceLost`] (a kernel panic on a worker), the recorder
//! dumps its ring to stderr *once*, giving the chronology that led into
//! the crash — the postmortem the profiler cannot provide because it is
//! usually disabled in production runs. `Context::dump_flight()` produces
//! the same dump on demand.
//!
//! Enable with `SKELCL_FLIGHT=<capacity>` (e.g. `SKELCL_FLIGHT=256`).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use vgpu::{CommandClass, CommandQueue, QueueNotice, QueuePhase};

use crate::metrics;
use crate::Profiler;

/// What a [`FlightEvent`] records. The `a`/`b` payload fields are
/// kind-specific (documented per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A kernel command was enqueued towards the execution engine
    /// (`a` = queue depth after the enqueue).
    PoolDispatch,
    /// A kernel began executing (`a` = queue depth).
    LaunchBegin,
    /// A kernel finished (`a` = queue depth after it).
    LaunchEnd,
    /// A transfer command finished (`a` = bytes moved).
    Transfer,
    /// A container redistribution / rebalance step (`a` = bytes moved,
    /// `b` = 1 for a boundary-only delta move, 0 for a full gather).
    Redistribution,
    /// A `LaunchPlan` node completed (`a` = node index, `b` = profiler
    /// span id, 0 when profiling is disabled).
    PlanNode,
    /// A command failed (`a` = bytes, `b` = 1 when the device was lost).
    Failure,
    /// The streaming executor leased a staging-ring slot for a chunk
    /// (`a` = per-device chunk sequence number, `b` = ring occupancy —
    /// chunks leased but not yet retired — after the acquire).
    ChunkAcquire,
    /// A chunk's commands were submitted to the engine (`a` = chunk
    /// sequence number, `b` = staged input bytes).
    ChunkSubmit,
    /// A chunk fully retired — its last command completed and its ring
    /// slot became reusable (`a` = chunk sequence number, `b` = ring
    /// occupancy after the retire).
    ChunkRetire,
}

impl FlightKind {
    /// A static label for dumps.
    pub fn label(self) -> &'static str {
        match self {
            FlightKind::PoolDispatch => "pool_dispatch",
            FlightKind::LaunchBegin => "launch_begin",
            FlightKind::LaunchEnd => "launch_end",
            FlightKind::Transfer => "transfer",
            FlightKind::Redistribution => "redistribution",
            FlightKind::PlanNode => "plan_node",
            FlightKind::Failure => "failure",
            FlightKind::ChunkAcquire => "chunk_acquire",
            FlightKind::ChunkSubmit => "chunk_submit",
            FlightKind::ChunkRetire => "chunk_retire",
        }
    }
}

/// One ring slot: fixed-size, `Copy`, no owned strings (labels are
/// `&'static str`), so recording never allocates.
#[derive(Debug, Clone, Copy)]
pub struct FlightEvent {
    /// Monotone sequence number (global across the ring; gaps mean the
    /// ring wrapped and older events were overwritten).
    pub seq: u64,
    /// Host nanoseconds since the recorder was created.
    pub t_host_ns: u64,
    /// The device's simulated clock at the event (0 when not applicable).
    pub t_dev_ns: u64,
    /// Device index (`usize::MAX` for host-side events).
    pub device: usize,
    /// What happened.
    pub kind: FlightKind,
    /// A static detail label (e.g. the command class or skeleton name).
    pub label: &'static str,
    /// Kind-specific payload (see [`FlightKind`]).
    pub a: u64,
    /// Kind-specific payload (see [`FlightKind`]).
    pub b: u64,
}

/// Device index used for host-side events.
pub const HOST_DEVICE: usize = usize::MAX;

struct Ring {
    slots: Vec<FlightEvent>,
    /// Index the next event overwrites once the ring is full.
    next: usize,
}

struct FlightInner {
    epoch: Instant,
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<Ring>,
    dumped: AtomicBool,
}

/// The flight recorder handle. Cheap to clone; all clones share one ring.
/// Disabled (the default) it records nothing, allocates nothing and takes
/// no lock.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<FlightInner>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .finish()
    }
}

impl FlightRecorder {
    /// A no-op recorder: every method returns immediately.
    pub fn disabled() -> Self {
        FlightRecorder { inner: None }
    }

    /// A recorder keeping the last `capacity` events (0 disables it).
    pub fn with_capacity(capacity: usize) -> Self {
        if capacity == 0 {
            return FlightRecorder::disabled();
        }
        FlightRecorder {
            inner: Some(Arc::new(FlightInner {
                epoch: Instant::now(),
                capacity,
                seq: AtomicU64::new(0),
                ring: Mutex::new(Ring {
                    slots: Vec::with_capacity(capacity),
                    next: 0,
                }),
                dumped: AtomicBool::new(false),
            })),
        }
    }

    /// Reads `SKELCL_FLIGHT=<capacity>`; unset, empty, `0` or unparsable
    /// values mean disabled.
    pub fn from_env() -> Self {
        match std::env::var("SKELCL_FLIGHT") {
            Ok(v) => FlightRecorder::with_capacity(v.trim().parse().unwrap_or(0)),
            Err(_) => FlightRecorder::disabled(),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.capacity)
    }

    /// Records one event (no-op when disabled).
    pub fn record(
        &self,
        kind: FlightKind,
        device: usize,
        label: &'static str,
        t_dev_ns: u64,
        a: u64,
        b: u64,
    ) {
        let Some(inner) = &self.inner else { return };
        let event = FlightEvent {
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            t_host_ns: inner.epoch.elapsed().as_nanos() as u64,
            t_dev_ns,
            device,
            kind,
            label,
            a,
            b,
        };
        let mut ring = inner.ring.lock();
        if ring.slots.len() < inner.capacity {
            ring.slots.push(event);
        } else {
            let next = ring.next;
            ring.slots[next] = event;
            ring.next = (next + 1) % inner.capacity;
        }
    }

    /// Total events recorded so far (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.seq.load(Ordering::Relaxed))
    }

    /// Events that fell off the ring.
    pub fn dropped(&self) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let len = inner.ring.lock().slots.len() as u64;
        inner.seq.load(Ordering::Relaxed).saturating_sub(len)
    }

    /// The ring's events, oldest first (empty when disabled).
    pub fn events(&self) -> Vec<FlightEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let ring = inner.ring.lock();
        let mut out = Vec::with_capacity(ring.slots.len());
        out.extend_from_slice(&ring.slots[ring.next..]);
        out.extend_from_slice(&ring.slots[..ring.next]);
        out
    }

    /// Renders the ring as an aligned text table; `None` when disabled.
    pub fn dump(&self) -> Option<String> {
        let inner = self.inner.as_ref()?;
        let events = self.events();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== skelcl flight recorder: {} events (capacity {}, {} dropped) ==",
            events.len(),
            inner.capacity,
            self.dropped()
        );
        let _ = writeln!(
            out,
            "  {:>6} {:>12} {:>12} {:>6} {:<14} {:<12} {:>12} {:>6}",
            "seq", "t_host_us", "t_dev_us", "dev", "kind", "label", "a", "b"
        );
        for e in &events {
            let dev = if e.device == HOST_DEVICE {
                "host".to_string()
            } else {
                format!("{}", e.device)
            };
            let _ = writeln!(
                out,
                "  {:>6} {:>12} {:>12} {:>6} {:<14} {:<12} {:>12} {:>6}",
                e.seq,
                e.t_host_ns / 1_000,
                e.t_dev_ns / 1_000,
                dev,
                e.kind.label(),
                e.label,
                e.a,
                e.b
            );
        }
        Some(out)
    }

    /// Whether the automatic crash dump has fired.
    pub fn dumped(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.dumped.load(Ordering::Relaxed))
    }

    /// Dumps the ring to stderr exactly once per recorder (the automatic
    /// postmortem on `DeviceLost`). Returns `true` if this call dumped.
    pub fn dump_once(&self, reason: &str) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.dumped.swap(true, Ordering::Relaxed) {
            return false;
        }
        if let Some(dump) = self.dump() {
            eprintln!("skelcl: {reason} — dumping flight recorder");
            eprintln!("{dump}");
        }
        true
    }

    /// Installs a telemetry observer on `queue` that feeds this recorder
    /// (kernel begin/end, transfers, failures — with an automatic
    /// [`FlightRecorder::dump_once`] on `DeviceLost`) and, when `profiler`
    /// is enabled, per-device queue-depth counter samples for the Chrome
    /// trace. A no-op when both handles are disabled.
    pub fn attach_queue(&self, profiler: &Profiler, queue: &CommandQueue) {
        if !self.is_enabled() && !profiler.is_enabled() {
            return;
        }
        let flight = self.clone();
        let profiler = profiler.clone();
        queue.set_observer(Arc::new(move |notice: &QueueNotice| {
            observe(&flight, &profiler, notice);
        }));
    }
}

/// Maps one queue notice to flight events and counter samples.
fn observe(flight: &FlightRecorder, profiler: &Profiler, notice: &QueueNotice) {
    if notice.class != CommandClass::Marker {
        profiler.record_counter_sample(
            metrics::QUEUE_DEPTH,
            notice.device,
            notice.t_ns,
            notice.depth as f64,
        );
    }
    let label = notice.class.label();
    let dev = notice.device;
    let t = notice.t_ns;
    match (notice.phase, notice.class) {
        (QueuePhase::Enqueued, CommandClass::Kernel) => flight.record(
            FlightKind::PoolDispatch,
            dev,
            label,
            t,
            notice.depth as u64,
            0,
        ),
        (QueuePhase::Started, CommandClass::Kernel) => flight.record(
            FlightKind::LaunchBegin,
            dev,
            label,
            t,
            notice.depth as u64,
            0,
        ),
        (QueuePhase::Finished, _) if notice.failed => {
            flight.record(
                FlightKind::Failure,
                dev,
                label,
                t,
                notice.bytes as u64,
                notice.device_lost as u64,
            );
            if notice.device_lost {
                flight.dump_once("device lost (worker crash)");
            }
        }
        (QueuePhase::Finished, CommandClass::Kernel) => {
            flight.record(FlightKind::LaunchEnd, dev, label, t, notice.depth as u64, 0)
        }
        (QueuePhase::Finished, CommandClass::Write | CommandClass::Read | CommandClass::Copy) => {
            flight.record(FlightKind::Transfer, dev, label, t, notice.bytes as u64, 0)
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let f = FlightRecorder::disabled();
        assert!(!f.is_enabled());
        f.record(FlightKind::Transfer, 0, "write", 0, 4096, 0);
        assert!(f.events().is_empty());
        assert_eq!(f.recorded(), 0);
        assert!(f.dump().is_none());
        assert!(!f.dump_once("test"));
        assert!(!f.dumped());
    }

    #[test]
    fn zero_capacity_disables() {
        assert!(!FlightRecorder::with_capacity(0).is_enabled());
    }

    #[test]
    fn ring_keeps_newest_events_in_order() {
        let f = FlightRecorder::with_capacity(4);
        for i in 0..10u64 {
            f.record(FlightKind::Transfer, 0, "write", i, i, 0);
        }
        let events = f.events();
        assert_eq!(events.len(), 4);
        // The last 4 of 10, oldest first.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(f.recorded(), 10);
        assert_eq!(f.dropped(), 6);
    }

    #[test]
    fn dump_mentions_events_and_capacity() {
        let f = FlightRecorder::with_capacity(8);
        f.record(FlightKind::LaunchBegin, 1, "kernel", 500_000, 2, 0);
        f.record(FlightKind::Failure, 1, "kernel", 600_000, 0, 1);
        let dump = f.dump().unwrap();
        assert!(dump.contains("capacity 8"));
        assert!(dump.contains("launch_begin"));
        assert!(dump.contains("failure"));
        // dump_once fires exactly once.
        assert!(f.dump_once("test crash"));
        assert!(!f.dump_once("test crash"));
        assert!(f.dumped());
    }

    #[test]
    fn clones_share_the_ring() {
        let f = FlightRecorder::with_capacity(8);
        let g = f.clone();
        g.record(FlightKind::PlanNode, HOST_DEVICE, "map", 0, 3, 0);
        assert_eq!(f.events().len(), 1);
        assert_eq!(f.events()[0].device, HOST_DEVICE);
    }
}
