//! The span model: what one traced operation looks like.
//!
//! Every skeleton call opens a **host** span; the work it triggers —
//! code generation and compilation, uploads, per-device kernel executions,
//! downloads — appears as child spans. Device-side spans are populated from
//! `vgpu` [`Event`]s and live on their device's simulated timeline; host
//! spans are wall-clock relative to the profiler's epoch.

use skelcl_kernel::vm::CostCounters;
use vgpu::{CommandKind, Event};

/// Which timeline a span lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Host wall-clock time (ns since the profiler was created).
    Host,
    /// A device's simulated timeline (ns since platform creation).
    Device(usize),
}

/// The kind of operation a span covers (the Chrome trace category).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A whole skeleton call (`Map.call`, `Reduce.call`, …).
    Skeleton,
    /// Kernel source generation + compilation.
    Compile,
    /// Host → device transfer.
    Upload,
    /// Device → host transfer.
    Download,
    /// Device → device copy.
    Copy,
    /// A kernel execution.
    Kernel,
    /// Anything else (host-side bookkeeping).
    Other,
}

impl SpanKind {
    /// Short category label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Skeleton => "skeleton",
            SpanKind::Compile => "compile",
            SpanKind::Upload => "upload",
            SpanKind::Download => "download",
            SpanKind::Copy => "copy",
            SpanKind::Kernel => "kernel",
            SpanKind::Other => "other",
        }
    }
}

/// A causal edge between two recorded spans: the span `to` could not start
/// before `from` finished (a `LaunchPlan` wait-list dependency). Exported
/// as a Chrome-trace flow event pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEdge {
    /// Span id of the dependency (the earlier span).
    pub from: u64,
    /// Span id of the dependent (the later span).
    pub to: u64,
}

/// One sample of a per-device counter track (queue depth, pool
/// utilization…), exported as a Chrome-trace `"C"` event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterSample {
    /// Track name (e.g. [`crate::metrics::QUEUE_DEPTH`]).
    pub name: &'static str,
    /// Device index the sample belongs to.
    pub device: usize,
    /// Timestamp on the device's simulated timeline, in nanoseconds.
    pub t_ns: u64,
    /// The sampled value.
    pub value: f64,
}

/// One recorded span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (never 0).
    pub id: u64,
    /// Id of the enclosing span, or 0 for roots.
    pub parent: u64,
    /// Display name (skeleton name, kernel name, `upload`, …).
    pub name: String,
    /// Operation category.
    pub kind: SpanKind,
    /// Timeline the timestamps belong to.
    pub lane: Lane,
    /// When the command was enqueued (device spans only).
    pub queued_ns: Option<u64>,
    /// Start timestamp on [`SpanRecord::lane`]'s timeline.
    pub start_ns: u64,
    /// End timestamp.
    pub end_ns: u64,
    /// Bytes moved (transfer spans).
    pub bytes: Option<u64>,
    /// Launch geometry, e.g. `1024/256` (kernel spans).
    pub nd_range: Option<String>,
    /// Aggregate execution counters (kernel spans).
    pub counters: Option<CostCounters>,
    /// Free-form key/value annotations attached while the span was open
    /// (e.g. which plan rewrite rules fired), exported as Chrome-trace
    /// args.
    pub extras: Vec<(String, String)>,
}

impl SpanRecord {
    /// Duration on the span's own timeline, saturating at zero.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Builds a device span from a `vgpu` profiling event.
    pub fn from_event(id: u64, parent: u64, event: &Event, nd_range: Option<String>) -> Self {
        let (kind, name, bytes) = match event.kind() {
            CommandKind::WriteBuffer { bytes } => (
                SpanKind::Upload,
                "write_buffer".to_string(),
                Some(*bytes as u64),
            ),
            CommandKind::ReadBuffer { bytes } => (
                SpanKind::Download,
                "read_buffer".to_string(),
                Some(*bytes as u64),
            ),
            CommandKind::CopyBuffer { bytes } => (
                SpanKind::Copy,
                "copy_buffer".to_string(),
                Some(*bytes as u64),
            ),
            CommandKind::Kernel { name } => (SpanKind::Kernel, name.clone(), None),
            CommandKind::Marker => (SpanKind::Other, "marker".to_string(), None),
        };
        SpanRecord {
            id,
            parent,
            name,
            kind,
            lane: Lane::Device(event.device().0),
            queued_ns: Some(event.queued_ns()),
            start_ns: event.started_ns(),
            end_ns: event.ended_ns(),
            bytes,
            nd_range,
            counters: event.counters(),
            extras: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu::DeviceId;

    #[test]
    fn from_kernel_event() {
        let e = Event::new(
            DeviceId(2),
            CommandKind::Kernel {
                name: "skelcl_map".into(),
            },
            5,
            10,
            110,
            Some(CostCounters::default()),
        );
        let s = SpanRecord::from_event(7, 3, &e, Some("1024/256".into()));
        assert_eq!(s.kind, SpanKind::Kernel);
        assert_eq!(s.lane, Lane::Device(2));
        assert_eq!(s.duration_ns(), 100);
        assert_eq!(s.queued_ns, Some(5));
        assert_eq!(s.parent, 3);
        assert!(s.counters.is_some());
        assert_eq!(s.bytes, None);
    }

    #[test]
    fn from_transfer_event() {
        let e = Event::new(
            DeviceId(0),
            CommandKind::WriteBuffer { bytes: 4096 },
            0,
            0,
            50,
            None,
        );
        let s = SpanRecord::from_event(1, 0, &e, None);
        assert_eq!(s.kind, SpanKind::Upload);
        assert_eq!(s.bytes, Some(4096));
        assert_eq!(s.name, "write_buffer");
    }
}
