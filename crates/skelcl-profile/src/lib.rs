//! # skelcl-profile — tracing and metrics for the SkelCL reproduction
//!
//! A zero-cost-when-disabled observability layer. The [`Profiler`] is a
//! handle that is either **disabled** (the default — every method is a
//! no-op that touches no heap and takes no lock) or **enabled**, in which
//! case it records:
//!
//! * **Spans** — every skeleton call opens a host span; code generation /
//!   compilation, uploads, per-device kernel executions and downloads
//!   appear as child spans populated from `vgpu` [`vgpu::Event`]s (see
//!   [`span::SpanRecord`]);
//! * **Metrics** — named counters and histograms (bytes moved per
//!   direction, transfer cache hits vs forced copies, redistribution
//!   events, compile-cache hits/misses) and per-device busy nanoseconds
//!   for utilization / load-imbalance analysis (see [`metrics`]);
//! * **Exports** — a `chrome://tracing`-compatible JSON trace with one
//!   lane per device plus a host lane ([`chrome`]), a human-readable
//!   summary table and machine-readable JSON reports ([`report`]).

#![warn(missing_docs)]

pub mod chrome;
pub mod flight;
pub mod json;
pub mod live;
pub mod metrics;
pub mod report;
pub mod span;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

pub use flight::{FlightEvent, FlightKind, FlightRecorder};
pub use json::Json;
pub use live::StatsReporter;
pub use metrics::{DeviceBusy, Histogram, Metrics, MetricsSnapshot};
pub use span::{CounterSample, FlowEdge, Lane, SpanKind, SpanRecord};

use vgpu::{CommandKind, Event};

struct Inner {
    epoch: Instant,
    next_id: AtomicU64,
    /// Id of the innermost open host span (0 = none): device spans recorded
    /// while a skeleton span is open become its children. A single cell
    /// (not a per-thread stack) — skeleton calls from concurrent host
    /// threads may interleave parents, which only affects trace nesting,
    /// never timing or metrics.
    current_parent: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    /// Causal edges between spans (LaunchPlan wait-list dependencies).
    flows: Mutex<Vec<FlowEdge>>,
    /// Per-device counter-track samples (queue depth, …).
    counter_samples: Mutex<Vec<CounterSample>>,
    metrics: Metrics,
}

/// The profiler handle. Cheap to clone; all clones share the same state.
#[derive(Clone)]
pub struct Profiler {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::disabled()
    }
}

impl Profiler {
    /// A no-op profiler: every method returns immediately.
    pub fn disabled() -> Self {
        Profiler { inner: None }
    }

    /// A recording profiler.
    pub fn enabled() -> Self {
        Profiler {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                current_parent: AtomicU64::new(0),
                spans: Mutex::new(Vec::new()),
                flows: Mutex::new(Vec::new()),
                counter_samples: Mutex::new(Vec::new()),
                metrics: Metrics::default(),
            })),
        }
    }

    /// Enabled iff the environment variable `SKELCL_PROFILE` is set to
    /// anything but `0`/empty (so any example can be profiled without code
    /// changes).
    pub fn from_env() -> Self {
        match std::env::var("SKELCL_PROFILE") {
            Ok(v) if !v.is_empty() && v != "0" => Profiler::enabled(),
            _ => Profiler::disabled(),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since the profiler was created (host lane clock).
    fn host_now_ns(inner: &Inner) -> u64 {
        inner.epoch.elapsed().as_nanos() as u64
    }

    /// Opens a host-lane span; it closes (and is recorded) when the
    /// returned guard drops. Disabled profilers return an inert guard
    /// without copying `name`.
    pub fn host_span(&self, kind: SpanKind, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { state: None };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = inner.current_parent.swap(id, Ordering::Relaxed);
        SpanGuard {
            state: Some(GuardState {
                inner: Arc::clone(inner),
                id,
                parent,
                name: name.to_string(),
                kind,
                start_ns: Self::host_now_ns(inner),
                extras: Vec::new(),
            }),
        }
    }

    /// Records a device-side span from a `vgpu` profiling event, updating
    /// byte counters, transfer/kernel histograms and per-device busy time.
    /// The span's parent is the currently open host span, if any.
    pub fn record_event(&self, event: &Event) {
        self.record_event_with(event, None);
    }

    /// Like [`Profiler::record_event`], with explicit launch geometry for
    /// kernel spans (e.g. `"4096/256"`). Returns the recorded span's id
    /// (for [`Profiler::record_flow`] edges); 0 when disabled or for
    /// markers, which record no span.
    pub fn record_event_with(&self, event: &Event, nd_range: Option<String>) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let dur = event.ended_ns().saturating_sub(event.started_ns());
        let device = event.device().0;
        match event.kind() {
            CommandKind::WriteBuffer { bytes } => {
                inner.metrics.add(metrics::BYTES_H2D, *bytes as u64);
                inner
                    .metrics
                    .record(metrics::HIST_TRANSFER_BYTES, *bytes as u64);
                inner.metrics.add_transfer_ns(device, dur);
            }
            CommandKind::ReadBuffer { bytes } => {
                inner.metrics.add(metrics::BYTES_D2H, *bytes as u64);
                inner
                    .metrics
                    .record(metrics::HIST_TRANSFER_BYTES, *bytes as u64);
                inner.metrics.add_transfer_ns(device, dur);
            }
            CommandKind::CopyBuffer { bytes } => {
                inner.metrics.add(metrics::BYTES_D2D, *bytes as u64);
                inner
                    .metrics
                    .record(metrics::HIST_TRANSFER_BYTES, *bytes as u64);
                inner.metrics.add_transfer_ns(device, dur);
            }
            CommandKind::Kernel { .. } => {
                inner.metrics.record(metrics::HIST_KERNEL_NS, dur);
                inner.metrics.add_kernel_ns(device, dur);
            }
            // Barrier markers carry no payload and occupy no timeline.
            CommandKind::Marker => return 0,
        }
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = inner.current_parent.load(Ordering::Relaxed);
        let record = SpanRecord::from_event(id, parent, event, nd_range);
        inner.spans.lock().push(record);
        id
    }

    /// Records a causal edge between two recorded spans (a `LaunchPlan`
    /// wait-list dependency), exported as a Chrome flow event. No-op when
    /// disabled or when either id is 0 (an unrecorded span).
    pub fn record_flow(&self, from_span: u64, to_span: u64) {
        let Some(inner) = &self.inner else { return };
        if from_span == 0 || to_span == 0 || from_span == to_span {
            return;
        }
        inner.flows.lock().push(FlowEdge {
            from: from_span,
            to: to_span,
        });
    }

    /// Records one sample of the per-device counter track `name` at
    /// device-time `t_ns` (exported as a Chrome `"C"` event). No-op when
    /// disabled.
    pub fn record_counter_sample(&self, name: &'static str, device: usize, t_ns: u64, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner.counter_samples.lock().push(CounterSample {
            name,
            device,
            t_ns,
            value,
        });
    }

    /// Copies of all recorded flow edges (empty when disabled).
    pub fn flows(&self) -> Vec<FlowEdge> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.flows.lock().clone())
    }

    /// Copies of all recorded counter samples (empty when disabled).
    pub fn counter_samples(&self) -> Vec<CounterSample> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.counter_samples.lock().clone())
    }

    /// Adds `delta` to counter `name` (no-op when disabled).
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.add(name, delta);
        }
    }

    /// Records `value` into histogram `name` (no-op when disabled).
    pub fn record_value(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.record(name, value);
        }
    }

    /// Sets per-device gauge `name` to `value` (no-op when disabled).
    pub fn set_device_gauge(&self, name: &'static str, device: usize, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.set_device_gauge(name, device, value);
        }
    }

    /// Current value of a counter; 0 when disabled.
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.metrics.counter(name))
    }

    /// Copies of all recorded spans (empty when disabled).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.spans.lock().clone())
    }

    /// A point-in-time copy of the metrics registry; `None` when disabled.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|i| i.metrics.snapshot())
    }

    /// The Chrome-trace JSON of everything recorded so far — spans, flow
    /// edges and counter tracks; `None` when disabled. Load the result in
    /// `chrome://tracing` or Perfetto.
    pub fn chrome_trace_json(&self) -> Option<String> {
        self.inner.as_ref().map(|i| {
            chrome::chrome_trace(&i.spans.lock(), &i.flows.lock(), &i.counter_samples.lock())
                .to_json()
        })
    }

    /// The human-readable summary table; `None` when disabled.
    pub fn summary(&self) -> Option<String> {
        self.inner
            .as_ref()
            .map(|i| report::summary_table(&i.spans.lock(), &i.metrics.snapshot()))
    }
}

struct GuardState {
    inner: Arc<Inner>,
    id: u64,
    parent: u64,
    name: String,
    kind: SpanKind,
    start_ns: u64,
    extras: Vec<(String, String)>,
}

/// Closes its span when dropped. Inert (and allocation-free) when the
/// profiler is disabled.
pub struct SpanGuard {
    state: Option<GuardState>,
}

impl SpanGuard {
    /// The span's id; 0 when profiling is disabled.
    pub fn id(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.id)
    }

    /// Attaches a key/value annotation to the span, recorded when the
    /// guard drops and exported as a Chrome-trace arg. Allocation-free
    /// no-op when the profiler is disabled.
    pub fn attach(&mut self, key: impl Into<String>, value: impl Into<String>) {
        if let Some(s) = &mut self.state {
            s.extras.push((key.into(), value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(s) = self.state.take() else { return };
        let end_ns = Profiler::host_now_ns(&s.inner);
        s.inner.current_parent.store(s.parent, Ordering::Relaxed);
        s.inner.spans.lock().push(SpanRecord {
            id: s.id,
            parent: s.parent,
            name: s.name,
            kind: s.kind,
            lane: Lane::Host,
            queued_ns: None,
            start_ns: s.start_ns,
            end_ns,
            bytes: None,
            nd_range: None,
            counters: None,
            extras: s.extras,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu::DeviceId;

    fn kernel_event(device: usize, start: u64, end: u64) -> Event {
        Event::new(
            DeviceId(device),
            CommandKind::Kernel { name: "k".into() },
            start,
            start,
            end,
            None,
        )
    }

    #[test]
    fn disabled_profiler_is_inert() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        {
            let g = p.host_span(SpanKind::Skeleton, "Map.call");
            assert_eq!(g.id(), 0);
            p.record_event(&kernel_event(0, 0, 100));
            p.add(metrics::SKELETON_CALLS, 1);
            p.record_value(metrics::HIST_KERNEL_NS, 5);
        }
        assert!(p.spans().is_empty());
        assert!(p.metrics_snapshot().is_none());
        assert!(p.chrome_trace_json().is_none());
        assert!(p.summary().is_none());
        assert_eq!(p.counter(metrics::SKELETON_CALLS), 0);
    }

    #[test]
    fn span_nesting_and_parenting() {
        let p = Profiler::enabled();
        let outer_id;
        {
            let outer = p.host_span(SpanKind::Skeleton, "Reduce.call");
            outer_id = outer.id();
            {
                let _inner = p.host_span(SpanKind::Compile, "codegen");
            }
            p.record_event(&kernel_event(1, 10, 60));
        }
        p.record_event(&kernel_event(0, 0, 5)); // outside any span
        let spans = p.spans();
        assert_eq!(spans.len(), 4);
        let compile = spans.iter().find(|s| s.kind == SpanKind::Compile).unwrap();
        assert_eq!(compile.parent, outer_id);
        let kernel_in = spans.iter().find(|s| s.lane == Lane::Device(1)).unwrap();
        assert_eq!(kernel_in.parent, outer_id);
        let kernel_out = spans.iter().find(|s| s.lane == Lane::Device(0)).unwrap();
        assert_eq!(kernel_out.parent, 0);
        let outer = spans.iter().find(|s| s.id == outer_id).unwrap();
        assert_eq!(outer.parent, 0);
        assert!(outer.end_ns >= outer.start_ns);
    }

    #[test]
    fn events_drive_metrics() {
        let p = Profiler::enabled();
        p.record_event(&Event::new(
            DeviceId(0),
            CommandKind::WriteBuffer { bytes: 1000 },
            0,
            0,
            40,
            None,
        ));
        p.record_event(&Event::new(
            DeviceId(1),
            CommandKind::ReadBuffer { bytes: 500 },
            0,
            0,
            20,
            None,
        ));
        p.record_event(&kernel_event(0, 40, 140));
        let m = p.metrics_snapshot().unwrap();
        assert_eq!(m.counters[metrics::BYTES_H2D], 1000);
        assert_eq!(m.counters[metrics::BYTES_D2H], 500);
        assert_eq!(m.devices[&0].kernel_ns, 100);
        assert_eq!(m.devices[&0].transfer_ns, 40);
        assert_eq!(m.devices[&1].transfer_ns, 20);
        assert_eq!(m.histograms[metrics::HIST_TRANSFER_BYTES].count, 2);
    }

    #[test]
    fn span_guard_attaches_extras() {
        let p = Profiler::enabled();
        {
            let mut g = p.host_span(SpanKind::Skeleton, "plan.lower");
            g.attach("plan.rules", "chain,reduce-weld");
            g.attach("plan.decision", "fused");
        }
        let spans = p.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(
            spans[0].extras,
            vec![
                ("plan.rules".to_string(), "chain,reduce-weld".to_string()),
                ("plan.decision".to_string(), "fused".to_string()),
            ]
        );
        // Disabled guards accept attachments without recording anything.
        let d = Profiler::disabled();
        let mut g = d.host_span(SpanKind::Skeleton, "plan.lower");
        g.attach("k", "v");
    }

    #[test]
    fn clones_share_state() {
        let p = Profiler::enabled();
        let q = p.clone();
        q.add(metrics::SKELETON_CALLS, 2);
        assert_eq!(p.counter(metrics::SKELETON_CALLS), 2);
    }
}
