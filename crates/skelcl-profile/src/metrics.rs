//! The metrics registry: named counters, histograms, and per-device busy
//! time.
//!
//! Metric names are `&'static str` constants so the hot paths never build
//! strings. The registry is shared behind the profiler's `Arc`; when
//! profiling is disabled no registry exists at all.

use std::collections::BTreeMap;

use parking_lot::Mutex;

/// Host → device bytes.
pub const BYTES_H2D: &str = "bytes.h2d";
/// Device → host bytes.
pub const BYTES_D2H: &str = "bytes.d2h";
/// Device → device bytes.
pub const BYTES_D2D: &str = "bytes.d2d";
/// Container uses that found valid device data (no transfer needed).
pub const TRANSFER_CACHE_HIT: &str = "transfer.cache_hit";
/// Container uses that forced an upload.
pub const TRANSFER_FORCED: &str = "transfer.forced_copy";
/// Distribution changes that dropped device buffers (gather + re-upload).
pub const REDISTRIBUTIONS: &str = "redistribution.count";
/// Kernel compilations served from the context's program cache.
pub const COMPILE_CACHE_HIT: &str = "compile.cache_hit";
/// Kernel compilations that actually ran the compiler.
pub const COMPILE_CACHE_MISS: &str = "compile.cache_miss";
/// Skeleton invocations.
pub const SKELETON_CALLS: &str = "skeleton.calls";
/// Rebalances: redistributions where only block boundaries shifted and the
/// container moved boundary units device-to-device instead of a full
/// gather + re-upload.
pub const SCHED_REBALANCES: &str = "sched.rebalances";
/// Bytes moved by delta (boundary-only) redistribution.
pub const SCHED_DELTA_BYTES: &str = "sched.delta_bytes_moved";
/// Bytes a full gather + re-scatter moved when delta was not applicable
/// (distribution kind changed, or device data had to round-trip the host).
pub const SCHED_FULL_BYTES: &str = "sched.full_redistribution_bytes";

/// Per-device gauge: the scheduler's current partition weight.
pub const SCHED_WEIGHT: &str = "sched.weight";

/// Histogram of individual transfer sizes (bytes).
pub const HIST_TRANSFER_BYTES: &str = "transfer.bytes";
/// Histogram of individual kernel durations (simulated ns).
pub const HIST_KERNEL_NS: &str = "kernel.duration_ns";

/// Simulated time one device spent occupied, split by work type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceBusy {
    /// Kernel execution ns.
    pub kernel_ns: u64,
    /// Transfer ns (uploads + downloads + copies).
    pub transfer_ns: u64,
}

impl DeviceBusy {
    /// Total occupied ns.
    pub fn total_ns(&self) -> u64 {
        self.kernel_ns + self.transfer_ns
    }
}

/// Running statistics of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of all values.
    pub sum: u64,
    /// Smallest value (0 when empty).
    pub min: u64,
    /// Largest value.
    pub max: u64,
}

impl Histogram {
    fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The registry itself.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    devices: Mutex<BTreeMap<usize, DeviceBusy>>,
    gauges: Mutex<BTreeMap<(&'static str, usize), f64>>,
}

impl Metrics {
    /// Adds `delta` to counter `name`.
    pub fn add(&self, name: &'static str, delta: u64) {
        *self.counters.lock().entry(name).or_default() += delta;
    }

    /// Records one value into histogram `name`.
    pub fn record(&self, name: &'static str, value: u64) {
        self.histograms
            .lock()
            .entry(name)
            .or_default()
            .record(value);
    }

    /// Adds kernel busy time to a device.
    pub fn add_kernel_ns(&self, device: usize, ns: u64) {
        self.devices.lock().entry(device).or_default().kernel_ns += ns;
    }

    /// Adds transfer busy time to a device.
    pub fn add_transfer_ns(&self, device: usize, ns: u64) {
        self.devices.lock().entry(device).or_default().transfer_ns += ns;
    }

    /// Sets per-device gauge `name` to `value` (last write wins — gauges
    /// report current state, unlike monotone counters).
    pub fn set_device_gauge(&self, name: &'static str, device: usize, value: f64) {
        self.gauges.lock().insert((name, device), value);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// A point-in-time copy of everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            devices: self.devices.lock().clone(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|((name, device), v)| (format!("{name}.gpu{device}"), *v))
                .collect(),
        }
    }
}

/// An owned copy of the registry's state, for reports.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Busy time by device index.
    pub devices: BTreeMap<usize, DeviceBusy>,
    /// Per-device gauge values, keyed `"<name>.gpu<index>"`.
    pub gauges: BTreeMap<String, f64>,
}

impl MetricsSnapshot {
    /// Load imbalance across devices: `max_busy / mean_busy` (1.0 is
    /// perfectly balanced; 0.0 when no device did anything).
    pub fn load_imbalance(&self) -> f64 {
        if self.devices.is_empty() {
            return 0.0;
        }
        let busies: Vec<u64> = self.devices.values().map(DeviceBusy::total_ns).collect();
        let max = *busies.iter().max().unwrap() as f64;
        let mean = busies.iter().sum::<u64>() as f64 / busies.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms() {
        let m = Metrics::default();
        m.add(BYTES_H2D, 100);
        m.add(BYTES_H2D, 50);
        m.record(HIST_TRANSFER_BYTES, 100);
        m.record(HIST_TRANSFER_BYTES, 50);
        assert_eq!(m.counter(BYTES_H2D), 150);
        assert_eq!(m.counter(BYTES_D2H), 0);
        let snap = m.snapshot();
        let h = snap.histograms[HIST_TRANSFER_BYTES];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 150);
        assert_eq!(h.min, 50);
        assert_eq!(h.max, 100);
        assert_eq!(h.mean(), 75.0);
    }

    #[test]
    fn device_busy_and_imbalance() {
        let m = Metrics::default();
        m.add_kernel_ns(0, 300);
        m.add_transfer_ns(0, 100);
        m.add_kernel_ns(1, 200);
        let snap = m.snapshot();
        assert_eq!(snap.devices[&0].total_ns(), 400);
        assert_eq!(snap.devices[&1].total_ns(), 200);
        // max 400, mean 300 → 4/3.
        assert!((snap.load_imbalance() - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_imbalance_is_zero() {
        assert_eq!(MetricsSnapshot::default().load_imbalance(), 0.0);
    }

    #[test]
    fn device_gauges_last_write_wins() {
        let m = Metrics::default();
        m.set_device_gauge(SCHED_WEIGHT, 0, 0.5);
        m.set_device_gauge(SCHED_WEIGHT, 1, 0.5);
        m.set_device_gauge(SCHED_WEIGHT, 0, 0.25);
        let snap = m.snapshot();
        assert_eq!(snap.gauges["sched.weight.gpu0"], 0.25);
        assert_eq!(snap.gauges["sched.weight.gpu1"], 0.5);
    }
}
