//! The metrics registry: named counters, histograms, and per-device busy
//! time.
//!
//! Metric names are `&'static str` constants so the hot paths never build
//! strings. The registry is shared behind the profiler's `Arc`; when
//! profiling is disabled no registry exists at all.

use std::collections::BTreeMap;

use parking_lot::Mutex;

/// Host → device bytes.
pub const BYTES_H2D: &str = "bytes.h2d";
/// Device → host bytes.
pub const BYTES_D2H: &str = "bytes.d2h";
/// Device → device bytes.
pub const BYTES_D2D: &str = "bytes.d2d";
/// Container uses that found valid device data (no transfer needed).
pub const TRANSFER_CACHE_HIT: &str = "transfer.cache_hit";
/// Container uses that forced an upload.
pub const TRANSFER_FORCED: &str = "transfer.forced_copy";
/// Distribution changes that dropped device buffers (gather + re-upload).
pub const REDISTRIBUTIONS: &str = "redistribution.count";
/// Kernel compilations served from the context's program cache.
pub const COMPILE_CACHE_HIT: &str = "compile.cache_hit";
/// Kernel compilations that actually ran the compiler.
pub const COMPILE_CACHE_MISS: &str = "compile.cache_miss";
/// Skeleton invocations.
pub const SKELETON_CALLS: &str = "skeleton.calls";
/// Plan rewrite-rule firings (chain fusion, reduce welding, stencil
/// fusion, scan-offset folding) across all pipeline lowerings.
pub const PLAN_RULES_FIRED: &str = "plan.rules_fired";
/// Plan nodes eliminated by fusion (each firing welds one or more
/// producer nodes into its consumer's kernel instead of staging them).
pub const PLAN_NODES_FUSED: &str = "plan.nodes_fused";
/// Bytes of intermediate device buffers a plan lowering allocated for
/// staged (unfused) pipeline steps — the traffic fusion eliminates.
pub const PLAN_INTERMEDIATE_BYTES: &str = "plan.intermediate_bytes";
/// Rebalances: redistributions where only block boundaries shifted and the
/// container moved boundary units device-to-device instead of a full
/// gather + re-upload.
pub const SCHED_REBALANCES: &str = "sched.rebalances";
/// Bytes moved by delta (boundary-only) redistribution.
pub const SCHED_DELTA_BYTES: &str = "sched.delta_bytes_moved";
/// Bytes a full gather + re-scatter moved when delta was not applicable
/// (distribution kind changed, or device data had to round-trip the host).
pub const SCHED_FULL_BYTES: &str = "sched.full_redistribution_bytes";

/// Per-device gauge: the scheduler's current partition weight.
pub const SCHED_WEIGHT: &str = "sched.weight";
/// Per-device gauge: steal balance of the last pooled launch —
/// `min/max` work-groups executed across the pool's workers (1.0 means the
/// steal cursor distributed groups perfectly evenly; 0.0 means at least one
/// worker starved).
pub const POOL_STEAL_BALANCE: &str = "pool.steal_balance";
/// Per-device gauge: persistent pool threads alive on the device.
pub const POOL_THREADS: &str = "pool.threads";
/// Per-device gauge: total work-groups executed by the device's pool.
pub const POOL_GROUPS: &str = "pool.groups_executed";
/// Counter-track name for per-device queue depth samples (Chrome "C"
/// events; see [`crate::Profiler::record_counter_sample`]).
pub const QUEUE_DEPTH: &str = "queue.depth";

/// Streaming executor: plan regions that ran chunked (out-of-core).
pub const STREAM_REGIONS: &str = "stream.regions";
/// Streaming executor: chunks driven through the pipeline.
pub const STREAM_CHUNKS: &str = "stream.chunks";
/// Streaming executor: input bytes staged host→device across all chunks.
pub const STREAM_BYTES_STAGED: &str = "stream.bytes_staged";
/// Per-device gauge: bytes resident in the streaming executor's staging
/// ring (plus fixed per-share buffers) during the last streamed region.
pub const STREAM_RESIDENT_BYTES: &str = "stream.resident_bytes";

/// Histogram of individual transfer sizes (bytes).
pub const HIST_TRANSFER_BYTES: &str = "transfer.bytes";
/// Histogram of individual kernel durations (simulated ns).
pub const HIST_KERNEL_NS: &str = "kernel.duration_ns";

/// Simulated time one device spent occupied, split by work type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceBusy {
    /// Kernel execution ns.
    pub kernel_ns: u64,
    /// Transfer ns (uploads + downloads + copies).
    pub transfer_ns: u64,
}

impl DeviceBusy {
    /// Total occupied ns.
    pub fn total_ns(&self) -> u64 {
        self.kernel_ns + self.transfer_ns
    }
}

/// Linear sub-buckets per power-of-two octave of the histogram's
/// log-bucketed storage. Values below `SUB` land in exact unit buckets;
/// larger values quantise with relative error at most `1/SUB` (≈3.1%).
const SUB: u64 = 32;
/// `log2(SUB)`.
const SUB_BITS: u32 = 5;

/// The bucket a value lands in (HDR-histogram style: an exact region for
/// small values, then `SUB` linear sub-buckets per power-of-two octave).
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    let sub = (v >> (octave - SUB_BITS)) - SUB;
    (octave - SUB_BITS + 1) as usize * SUB as usize + sub as usize
}

/// The lowest value mapping to bucket `idx` (inverse of [`bucket_index`]).
fn bucket_low(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let region = idx / SUB as usize - 1;
    let sub = (idx % SUB as usize) as u64;
    (SUB + sub) << region
}

/// A representative value for bucket `idx` (its midpoint).
fn bucket_mid(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let region = idx / SUB as usize - 1;
    bucket_low(idx) + (1u64 << region) / 2
}

/// Running statistics of one histogram, with log-bucketed (HDR-style)
/// storage for quantile queries. Recording is O(1); the bucket array grows
/// only as far as the largest value seen (at most ~1.9k buckets for the
/// full `u64` range).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of all values.
    pub sum: u64,
    /// Smallest value (0 when empty).
    pub min: u64,
    /// Largest value.
    pub max: u64,
    /// Bucketed counts; index via [`bucket_index`].
    buckets: Vec<u64>,
}

impl Histogram {
    fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) of the recorded values, accurate
    /// to the bucket resolution (exact below `32`, ≤3.1% relative error
    /// above). Returns 0 when empty; results are clamped to `[min, max]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // 0-based rank of the requested order statistic.
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen > rank {
                return bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// The registry itself.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    devices: Mutex<BTreeMap<usize, DeviceBusy>>,
    gauges: Mutex<BTreeMap<(&'static str, usize), f64>>,
}

impl Metrics {
    /// Adds `delta` to counter `name`.
    pub fn add(&self, name: &'static str, delta: u64) {
        *self.counters.lock().entry(name).or_default() += delta;
    }

    /// Records one value into histogram `name`.
    pub fn record(&self, name: &'static str, value: u64) {
        self.histograms
            .lock()
            .entry(name)
            .or_default()
            .record(value);
    }

    /// Adds kernel busy time to a device.
    pub fn add_kernel_ns(&self, device: usize, ns: u64) {
        self.devices.lock().entry(device).or_default().kernel_ns += ns;
    }

    /// Adds transfer busy time to a device.
    pub fn add_transfer_ns(&self, device: usize, ns: u64) {
        self.devices.lock().entry(device).or_default().transfer_ns += ns;
    }

    /// Sets per-device gauge `name` to `value` (last write wins — gauges
    /// report current state, unlike monotone counters).
    pub fn set_device_gauge(&self, name: &'static str, device: usize, value: f64) {
        self.gauges.lock().insert((name, device), value);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// A point-in-time copy of everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            devices: self.devices.lock().clone(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|((name, device), v)| (format!("{name}.gpu{device}"), *v))
                .collect(),
        }
    }
}

/// An owned copy of the registry's state, for reports.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Busy time by device index.
    pub devices: BTreeMap<usize, DeviceBusy>,
    /// Per-device gauge values, keyed `"<name>.gpu<index>"`.
    pub gauges: BTreeMap<String, f64>,
}

impl MetricsSnapshot {
    /// Load imbalance across devices: `max_busy / mean_busy` (1.0 is
    /// perfectly balanced; 0.0 when no device did anything).
    pub fn load_imbalance(&self) -> f64 {
        if self.devices.is_empty() {
            return 0.0;
        }
        let busies: Vec<u64> = self.devices.values().map(DeviceBusy::total_ns).collect();
        let max = *busies.iter().max().unwrap() as f64;
        let mean = busies.iter().sum::<u64>() as f64 / busies.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms() {
        let m = Metrics::default();
        m.add(BYTES_H2D, 100);
        m.add(BYTES_H2D, 50);
        m.record(HIST_TRANSFER_BYTES, 100);
        m.record(HIST_TRANSFER_BYTES, 50);
        assert_eq!(m.counter(BYTES_H2D), 150);
        assert_eq!(m.counter(BYTES_D2H), 0);
        let snap = m.snapshot();
        let h = &snap.histograms[HIST_TRANSFER_BYTES];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 150);
        assert_eq!(h.min, 50);
        assert_eq!(h.max, 100);
        assert_eq!(h.mean(), 75.0);
    }

    #[test]
    fn bucket_roundtrip() {
        // Exact region: values below 32 occupy their own bucket.
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_mid(bucket_index(v)), v);
        }
        // Log region: a bucket's low bound maps back to the same bucket,
        // and the relative quantisation error stays under 1/32.
        for v in [32u64, 33, 63, 64, 100, 1 << 10, 123_456, u64::MAX / 3] {
            let idx = bucket_index(v);
            assert_eq!(bucket_index(bucket_low(idx)), idx, "low bound of {v}");
            let mid = bucket_mid(idx) as f64;
            let err = (mid - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 32.0 + 1e-12, "value {v}: rel err {err}");
        }
        // Bucket indices are monotone in the value.
        let mut prev = 0;
        for v in (0..1 << 20).step_by(97) {
            let idx = bucket_index(v);
            assert!(idx >= prev);
            prev = idx;
        }
    }

    #[test]
    fn quantiles_on_uniform_data() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count, 1000);
        let p50 = h.p50() as f64;
        let p90 = h.p90() as f64;
        let p99 = h.p99() as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 = {p50}");
        assert!((p90 - 900.0).abs() / 900.0 < 0.05, "p90 = {p90}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.05, "p99 = {p99}");
        // Quantiles are monotone and clamped to the observed range.
        assert!(h.quantile(0.0) >= h.min);
        assert!(h.quantile(1.0) <= h.max);
        assert!(p50 <= p90 && p90 <= p99);
    }

    #[test]
    fn quantiles_edge_cases() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0); // empty
        let mut h = Histogram::default();
        h.record(42);
        assert_eq!(h.p50(), 42);
        assert_eq!(h.p99(), 42);
        // A heavily skewed distribution: p99 must see the tail.
        let mut h = Histogram::default();
        for _ in 0..98 {
            h.record(10);
        }
        h.record(1_000_000);
        h.record(1_000_000);
        assert_eq!(h.p50(), 10);
        let p99 = h.p99() as f64;
        assert!(
            (p99 - 1_000_000.0).abs() / 1_000_000.0 < 0.04,
            "p99 = {p99}"
        );
    }

    #[test]
    fn device_busy_and_imbalance() {
        let m = Metrics::default();
        m.add_kernel_ns(0, 300);
        m.add_transfer_ns(0, 100);
        m.add_kernel_ns(1, 200);
        let snap = m.snapshot();
        assert_eq!(snap.devices[&0].total_ns(), 400);
        assert_eq!(snap.devices[&1].total_ns(), 200);
        // max 400, mean 300 → 4/3.
        assert!((snap.load_imbalance() - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_imbalance_is_zero() {
        assert_eq!(MetricsSnapshot::default().load_imbalance(), 0.0);
    }

    #[test]
    fn device_gauges_last_write_wins() {
        let m = Metrics::default();
        m.set_device_gauge(SCHED_WEIGHT, 0, 0.5);
        m.set_device_gauge(SCHED_WEIGHT, 1, 0.5);
        m.set_device_gauge(SCHED_WEIGHT, 0, 0.25);
        let snap = m.snapshot();
        assert_eq!(snap.gauges["sched.weight.gpu0"], 0.25);
        assert_eq!(snap.gauges["sched.weight.gpu1"], 0.5);
    }
}
