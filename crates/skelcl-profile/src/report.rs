//! Human-readable summaries and machine-readable JSON reports.
//!
//! [`summary_table`] renders counters, histograms, per-device utilization
//! and a per-span-kind breakdown as aligned text. [`metrics_json`] /
//! [`bench_report`] produce the self-describing JSON the benchmark
//! binaries write as `BENCH_*.json`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::Json;
use crate::metrics::{DeviceBusy, MetricsSnapshot};
use crate::span::{Lane, SpanRecord};

/// Renders the metrics registry plus a span breakdown as a text table.
pub fn summary_table(spans: &[SpanRecord], metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== skelcl profile summary ==");

    if !metrics.counters.is_empty() {
        let _ = writeln!(out, "-- counters --");
        for (name, value) in &metrics.counters {
            let _ = writeln!(out, "  {name:<28} {value:>14}");
        }
    }

    if !metrics.histograms.is_empty() {
        let _ = writeln!(out, "-- histograms --");
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "name", "count", "sum", "min", "mean", "p50", "p90", "p99", "max"
        );
        for (name, h) in &metrics.histograms {
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>12} {:>12} {:>12.1} {:>12} {:>12} {:>12} {:>12}",
                name,
                h.count,
                h.sum,
                h.min,
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max
            );
        }
    }

    if !metrics.gauges.is_empty() {
        let _ = writeln!(out, "-- gauges --");
        for (name, value) in &metrics.gauges {
            let _ = writeln!(out, "  {name:<28} {value:>14.4}");
        }
    }

    if !metrics.devices.is_empty() {
        let makespan = metrics
            .devices
            .values()
            .map(DeviceBusy::total_ns)
            .max()
            .unwrap_or(0);
        let _ = writeln!(out, "-- devices --");
        let _ = writeln!(
            out,
            "  {:<10} {:>14} {:>14} {:>12}",
            "device", "kernel_ns", "transfer_ns", "utilization"
        );
        for (device, busy) in &metrics.devices {
            let util = if makespan == 0 {
                0.0
            } else {
                busy.total_ns() as f64 / makespan as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "  {:<10} {:>14} {:>14} {:>11.1}%",
                device, busy.kernel_ns, busy.transfer_ns, util
            );
        }
        let _ = writeln!(
            out,
            "  load imbalance (max/mean): {:.3}",
            metrics.load_imbalance()
        );
    }

    if !spans.is_empty() {
        // Aggregate span time by kind.
        let mut by_kind: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for s in spans {
            let e = by_kind.entry(s.kind.label()).or_default();
            e.0 += 1;
            e.1 += s.duration_ns();
        }
        let _ = writeln!(out, "-- spans --");
        let _ = writeln!(out, "  {:<12} {:>8} {:>14}", "kind", "count", "total_ns");
        for (kind, (count, total)) in by_kind {
            let _ = writeln!(out, "  {kind:<12} {count:>8} {total:>14}");
        }
    }
    out
}

/// The metrics registry as a JSON object (counters, histograms, devices,
/// derived load imbalance).
pub fn metrics_json(metrics: &MetricsSnapshot) -> Json {
    let counters: Json = metrics
        .counters
        .iter()
        .map(|(k, v)| (k.clone(), Json::from(*v)))
        .collect();
    let histograms: Json = metrics
        .histograms
        .iter()
        .map(|(k, h)| {
            (
                k.clone(),
                Json::obj([
                    ("count", h.count.into()),
                    ("sum", h.sum.into()),
                    ("min", h.min.into()),
                    ("mean", h.mean().into()),
                    ("p50", h.p50().into()),
                    ("p90", h.p90().into()),
                    ("p99", h.p99().into()),
                    ("max", h.max.into()),
                ]),
            )
        })
        .collect();
    let devices: Json = metrics
        .devices
        .iter()
        .map(|(d, busy)| {
            (
                d.to_string(),
                Json::obj([
                    ("kernel_ns", busy.kernel_ns.into()),
                    ("transfer_ns", busy.transfer_ns.into()),
                ]),
            )
        })
        .collect();
    let gauges: Json = metrics
        .gauges
        .iter()
        .map(|(k, v)| (k.clone(), Json::Num(*v)))
        .collect();
    Json::obj([
        ("counters", counters),
        ("histograms", histograms),
        ("devices", devices),
        ("gauges", gauges),
        ("load_imbalance", metrics.load_imbalance().into()),
    ])
}

/// Builds a self-describing benchmark report: what ran, with which
/// parameters, what came out, and (optionally) the profiler's metrics.
pub fn bench_report(
    name: &str,
    params: &[(&str, Json)],
    results: Json,
    metrics: Option<&MetricsSnapshot>,
) -> Json {
    let mut fields: Vec<(String, Json)> = vec![
        ("schema".into(), Json::from("skelcl-bench-report/1")),
        ("name".into(), Json::from(name)),
        (
            "params".into(),
            params
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        ),
        ("results".into(), results),
    ];
    if let Some(m) = metrics {
        fields.push(("metrics".into(), metrics_json(m)));
    }
    Json::Obj(fields)
}

/// Total simulated kernel ns per device lane in a span list (helper for
/// tests and reports).
pub fn kernel_ns_by_device(spans: &[SpanRecord]) -> BTreeMap<usize, u64> {
    let mut map = BTreeMap::new();
    for s in spans {
        if let (Lane::Device(d), crate::span::SpanKind::Kernel) = (s.lane, s.kind) {
            *map.entry(d).or_default() += s.duration_ns();
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::span::SpanKind;

    fn sample_metrics() -> MetricsSnapshot {
        let m = Metrics::default();
        m.add(crate::metrics::BYTES_H2D, 4096);
        m.add(crate::metrics::COMPILE_CACHE_MISS, 1);
        m.record(crate::metrics::HIST_TRANSFER_BYTES, 4096);
        m.add_kernel_ns(0, 1000);
        m.add_kernel_ns(1, 500);
        m.snapshot()
    }

    #[test]
    fn summary_mentions_everything() {
        let spans = vec![SpanRecord {
            id: 1,
            parent: 0,
            name: "skelcl_map".into(),
            kind: SpanKind::Kernel,
            lane: Lane::Device(0),
            queued_ns: None,
            start_ns: 0,
            end_ns: 1000,
            bytes: None,
            nd_range: None,
            counters: None,
            extras: Vec::new(),
        }];
        let text = summary_table(&spans, &sample_metrics());
        assert!(text.contains("bytes.h2d"));
        assert!(text.contains("4096"));
        assert!(text.contains("load imbalance"));
        assert!(text.contains("kernel"));
        assert!(text.contains("utilization"));
    }

    #[test]
    fn bench_report_schema() {
        let report = bench_report(
            "fig4_mandelbrot",
            &[("width", 4096u64.into()), ("devices", 4u64.into())],
            Json::obj([("total_ms", Json::Num(12.5))]),
            Some(&sample_metrics()),
        );
        let parsed = Json::parse(&report.to_json()).unwrap();
        assert_eq!(
            parsed.get("schema").unwrap().as_str(),
            Some("skelcl-bench-report/1")
        );
        assert_eq!(
            parsed.get("params").unwrap().get("width").unwrap().as_f64(),
            Some(4096.0)
        );
        let metrics = parsed.get("metrics").unwrap();
        assert_eq!(
            metrics
                .get("counters")
                .unwrap()
                .get("bytes.h2d")
                .unwrap()
                .as_f64(),
            Some(4096.0)
        );
        assert!(metrics.get("load_imbalance").unwrap().as_f64().unwrap() > 1.0);
        // Histogram objects carry quantiles (single sample: all equal it,
        // clamped to the observed max).
        let hist = metrics
            .get("histograms")
            .unwrap()
            .get("transfer.bytes")
            .unwrap();
        for q in ["p50", "p90", "p99"] {
            assert_eq!(hist.get(q).unwrap().as_f64(), Some(4096.0), "{q}");
        }
    }

    #[test]
    fn kernel_ns_by_device_sums_kernel_lanes_only() {
        let mk = |lane, kind, dur| SpanRecord {
            id: 1,
            parent: 0,
            name: "x".into(),
            kind,
            lane,
            queued_ns: None,
            start_ns: 0,
            end_ns: dur,
            bytes: None,
            nd_range: None,
            counters: None,
            extras: Vec::new(),
        };
        let spans = vec![
            mk(Lane::Device(0), SpanKind::Kernel, 100),
            mk(Lane::Device(0), SpanKind::Kernel, 50),
            mk(Lane::Device(0), SpanKind::Upload, 30),
            mk(Lane::Host, SpanKind::Skeleton, 500),
        ];
        let map = kernel_ns_by_device(&spans);
        assert_eq!(map[&0], 150);
        assert_eq!(map.len(), 1);
    }
}
