//! Live metrics reporting: a background thread that periodically emits a
//! JSON-lines snapshot of the profiler's metrics registry.
//!
//! Long-running multi-GPU jobs are opaque until they finish; the
//! [`StatsReporter`] makes them observable *while running* by writing one
//! self-contained JSON object per interval — the same shape as
//! [`crate::report::metrics_json`], wrapped with a sequence number — to a
//! file (`SKELCL_STATS_FILE`) or stderr. Enable with
//! `SKELCL_STATS_INTERVAL_MS=<ms>` or programmatically via
//! [`StatsReporter::spawn`]. The reporter is inert (spawns nothing) when
//! the profiler is disabled or the interval is zero.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::json::Json;
use crate::report::metrics_json;
use crate::Profiler;

/// Shared stop signal: the reporter thread sleeps on the condvar and wakes
/// either on timeout (emit a snapshot) or on notify (stop requested).
struct StopSignal {
    stopped: Mutex<bool>,
    condvar: Condvar,
}

/// Handle to a running stats-reporter thread. Stops (and joins) the thread
/// when dropped or when [`StatsReporter::stop`] is called; a final
/// snapshot line is emitted on stop so short runs still produce output.
pub struct StatsReporter {
    state: Option<(Arc<StopSignal>, JoinHandle<()>)>,
}

impl std::fmt::Debug for StatsReporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsReporter")
            .field("running", &self.state.is_some())
            .finish()
    }
}

impl StatsReporter {
    /// A reporter that never spawned a thread (profiler disabled, interval
    /// zero, or the env var is unset).
    pub fn inert() -> Self {
        StatsReporter { state: None }
    }

    /// Whether a reporter thread is running.
    pub fn is_running(&self) -> bool {
        self.state.is_some()
    }

    /// Spawns a reporter emitting every `interval` to `path` (appended) or
    /// stderr when `path` is `None`. Inert if the profiler is disabled or
    /// `interval` is zero.
    pub fn spawn(profiler: &Profiler, interval: Duration, path: Option<PathBuf>) -> Self {
        if !profiler.is_enabled() || interval.is_zero() {
            return StatsReporter::inert();
        }
        let signal = Arc::new(StopSignal {
            stopped: Mutex::new(false),
            condvar: Condvar::new(),
        });
        let thread_signal = Arc::clone(&signal);
        let profiler = profiler.clone();
        let handle = std::thread::Builder::new()
            .name("skelcl-stats".into())
            .spawn(move || run(&profiler, interval, path, &thread_signal))
            .expect("failed to spawn stats reporter thread");
        StatsReporter {
            state: Some((signal, handle)),
        }
    }

    /// Reads `SKELCL_STATS_INTERVAL_MS` (milliseconds; unset, empty, `0`
    /// or unparsable → inert) and `SKELCL_STATS_FILE` (output path;
    /// unset → stderr).
    pub fn from_env(profiler: &Profiler) -> Self {
        let interval_ms = std::env::var("SKELCL_STATS_INTERVAL_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        if interval_ms == 0 {
            return StatsReporter::inert();
        }
        let path = std::env::var("SKELCL_STATS_FILE").ok().map(PathBuf::from);
        StatsReporter::spawn(profiler, Duration::from_millis(interval_ms), path)
    }

    /// Stops the reporter thread (emitting one final snapshot line) and
    /// waits for it to exit. Idempotent.
    pub fn stop(&mut self) {
        let Some((signal, handle)) = self.state.take() else {
            return;
        };
        *signal.stopped.lock().unwrap() = true;
        signal.condvar.notify_all();
        let _ = handle.join();
    }
}

impl Drop for StatsReporter {
    fn drop(&mut self) {
        self.stop();
    }
}

fn run(profiler: &Profiler, interval: Duration, path: Option<PathBuf>, signal: &StopSignal) {
    let mut seq: u64 = 0;
    loop {
        let stopping = {
            let mut stopped = signal.stopped.lock().unwrap();
            if !*stopped {
                stopped = signal
                    .condvar
                    .wait_timeout(stopped, interval)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
            *stopped
        };
        emit(profiler, seq, stopping, path.as_deref());
        seq += 1;
        if stopping {
            return;
        }
    }
}

fn emit(profiler: &Profiler, seq: u64, fin: bool, path: Option<&std::path::Path>) {
    let Some(snapshot) = profiler.metrics_snapshot() else {
        return;
    };
    let line = Json::obj([
        ("skelcl_stats", Json::from("live/1")),
        ("seq", seq.into()),
        ("final", Json::Bool(fin)),
        ("metrics", metrics_json(&snapshot)),
    ])
    .to_json();
    match path {
        Some(p) => {
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(p)
            {
                let _ = writeln!(f, "{line}");
            }
        }
        None => eprintln!("{line}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn disabled_profiler_spawns_nothing() {
        let p = Profiler::disabled();
        let r = StatsReporter::spawn(&p, Duration::from_millis(1), None);
        assert!(!r.is_running());
        let r = StatsReporter::spawn(&Profiler::enabled(), Duration::ZERO, None);
        assert!(!r.is_running());
    }

    #[test]
    fn emits_json_lines_and_final_snapshot() {
        let dir = std::env::temp_dir().join(format!(
            "skelcl-live-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stats.jsonl");
        let _ = std::fs::remove_file(&path);

        let p = Profiler::enabled();
        p.add(metrics::SKELETON_CALLS, 3);
        let mut r = StatsReporter::spawn(&p, Duration::from_millis(5), Some(path.clone()));
        assert!(r.is_running());
        std::thread::sleep(Duration::from_millis(40));
        p.add(metrics::SKELETON_CALLS, 1);
        r.stop();
        assert!(!r.is_running());
        r.stop(); // idempotent

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // At least one periodic line plus the final one.
        assert!(lines.len() >= 2, "got {} lines", lines.len());
        for line in &lines {
            let parsed = Json::parse(line).unwrap();
            assert_eq!(parsed.get("skelcl_stats").unwrap().as_str(), Some("live/1"));
            assert!(parsed.get("metrics").unwrap().get("counters").is_some());
        }
        // The last line is flagged final and saw the post-sleep increment.
        let last = Json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(last.get("final").and_then(Json::as_bool), Some(true));
        assert_eq!(
            last.get("metrics")
                .unwrap()
                .get("counters")
                .unwrap()
                .get(metrics::SKELETON_CALLS)
                .unwrap()
                .as_f64(),
            Some(4.0)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
