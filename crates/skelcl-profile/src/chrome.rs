//! Chrome trace-event exporter.
//!
//! Produces the `chrome://tracing` / Perfetto JSON object format:
//! `{"traceEvents": [...], "displayTimeUnit": "ns"}` with one thread lane
//! per device plus a host lane. Device lanes show simulated device time;
//! the host lane shows wall time since the profiler's epoch. Each lane is
//! internally consistent (timestamps are monotone per lane) even though
//! the lanes use different time bases.
//!
//! Beyond `"X"` duration events, the exporter emits **flow event pairs**
//! (`ph: "s"` / `ph: "t"` with a shared `id`) for recorded [`FlowEdge`]s —
//! the causal arrows a `LaunchPlan`'s wait-list dependencies draw between
//! spans — and **counter events** (`ph: "C"`) for per-device counter
//! tracks such as queue depth.

use std::collections::{BTreeMap, BTreeSet};

use crate::json::Json;
use crate::span::{CounterSample, FlowEdge, Lane, SpanRecord};

/// The process id used for all lanes.
const PID: u64 = 1;
/// The host lane's thread id; device `d` gets tid `HOST_TID + 1 + d`.
const HOST_TID: u64 = 0;

fn tid_of(lane: Lane) -> u64 {
    match lane {
        Lane::Host => HOST_TID,
        Lane::Device(d) => HOST_TID + 1 + d as u64,
    }
}

/// Builds the trace object for a set of recorded spans, flow edges and
/// counter samples.
pub fn chrome_trace(spans: &[SpanRecord], flows: &[FlowEdge], counters: &[CounterSample]) -> Json {
    let mut events: Vec<Json> =
        Vec::with_capacity(spans.len() + 2 * flows.len() + counters.len() + 8);

    // Metadata: name the process and every lane that appears.
    events.push(meta("process_name", PID, HOST_TID, "skelcl"));
    let lanes: BTreeSet<u64> = spans.iter().map(|s| tid_of(s.lane)).collect();
    for tid in lanes
        .iter()
        .chain(std::iter::once(&HOST_TID))
        .collect::<BTreeSet<_>>()
    {
        let label = if *tid == HOST_TID {
            "host".to_string()
        } else {
            format!("device {}", tid - HOST_TID - 1)
        };
        events.push(meta("thread_name", PID, *tid, &label));
    }

    // Spans are recorded when they close (a parent host span lands after
    // its children); re-order so each lane's timestamps are monotone.
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by_key(|s| (tid_of(s.lane), s.start_ns, s.id));

    for span in ordered {
        let mut args: Vec<(String, Json)> = vec![
            ("span_id".into(), span.id.into()),
            ("parent".into(), span.parent.into()),
        ];
        if let Some(b) = span.bytes {
            args.push(("bytes".into(), b.into()));
        }
        if let Some(r) = &span.nd_range {
            args.push(("nd_range".into(), Json::from(r.as_str())));
        }
        if let Some(q) = span.queued_ns {
            args.push((
                "queue_latency_ns".into(),
                span.start_ns.saturating_sub(q).into(),
            ));
        }
        for (key, value) in &span.extras {
            args.push((key.clone(), Json::from(value.as_str())));
        }
        if let Some(c) = &span.counters {
            args.push((
                "counters".into(),
                Json::obj([
                    ("ops", c.ops.into()),
                    ("global_loads", c.global_loads.into()),
                    ("global_stores", c.global_stores.into()),
                    ("local_loads", c.local_loads.into()),
                    ("local_stores", c.local_stores.into()),
                    ("barriers", c.barriers.into()),
                    ("global_bytes", c.global_bytes.into()),
                ]),
            ));
        }
        events.push(Json::obj([
            ("name", Json::from(span.name.as_str())),
            ("cat", Json::from(span.kind.label())),
            ("ph", Json::from("X")),
            // Trace timestamps are microseconds (fractions allowed).
            ("ts", Json::Num(span.start_ns as f64 / 1000.0)),
            ("dur", Json::Num(span.duration_ns() as f64 / 1000.0)),
            ("pid", PID.into()),
            ("tid", tid_of(span.lane).into()),
            ("args", Json::Obj(args)),
        ]));
    }

    // Flow event pairs: an arrow from the end of `from` to the start of
    // `to`. Both endpoints must resolve to recorded spans; dangling ids
    // (e.g. spans pruned by a cap) are skipped.
    let by_id: BTreeMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    for (idx, edge) in flows.iter().enumerate() {
        let (Some(from), Some(to)) = (by_id.get(&edge.from), by_id.get(&edge.to)) else {
            continue;
        };
        events.push(Json::obj([
            ("name", Json::from("dep")),
            ("cat", Json::from("flow")),
            ("ph", Json::from("s")),
            ("id", (idx as u64).into()),
            ("ts", Json::Num(from.end_ns as f64 / 1000.0)),
            ("pid", PID.into()),
            ("tid", tid_of(from.lane).into()),
        ]));
        events.push(Json::obj([
            ("name", Json::from("dep")),
            ("cat", Json::from("flow")),
            ("ph", Json::from("t")),
            ("id", (idx as u64).into()),
            ("ts", Json::Num(to.start_ns as f64 / 1000.0)),
            ("pid", PID.into()),
            ("tid", tid_of(to.lane).into()),
            // Bind to enclosing slice: draw the arrow even if the
            // destination span starts exactly when the source ends.
            ("bp", Json::from("e")),
        ]));
    }

    // Counter tracks, one per (name, device) so Perfetto draws separate
    // stacked charts per device.
    let mut ordered_counters: Vec<&CounterSample> = counters.iter().collect();
    ordered_counters.sort_by(|a, b| {
        (a.name, a.device, a.t_ns)
            .cmp(&(b.name, b.device, b.t_ns))
            .then(a.value.total_cmp(&b.value))
    });
    for sample in ordered_counters {
        events.push(Json::obj([
            (
                "name",
                Json::from(format!("{} gpu{}", sample.name, sample.device).as_str()),
            ),
            ("ph", Json::from("C")),
            ("ts", Json::Num(sample.t_ns as f64 / 1000.0)),
            ("pid", PID.into()),
            ("tid", tid_of(Lane::Device(sample.device)).into()),
            ("args", Json::obj([("value", Json::Num(sample.value))])),
        ]));
    }

    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::from("ns")),
    ])
}

fn meta(name: &str, pid: u64, tid: u64, value: &str) -> Json {
    Json::obj([
        ("name", Json::from(name)),
        ("ph", Json::from("M")),
        ("pid", pid.into()),
        ("tid", tid.into()),
        ("args", Json::obj([("name", Json::from(value))])),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;

    fn span(id: u64, lane: Lane, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent: 0,
            name: format!("s{id}"),
            kind: SpanKind::Kernel,
            lane,
            queued_ns: Some(start),
            start_ns: start,
            end_ns: end,
            bytes: None,
            nd_range: Some("256/64".into()),
            counters: None,
            extras: Vec::new(),
        }
    }

    #[test]
    fn span_extras_become_args() {
        let mut s = span(1, Lane::Host, 0, 100);
        s.extras.push(("plan.rules".into(), "chain,stencil".into()));
        let parsed = Json::parse(&chrome_trace(&[s], &[], &[]).to_json()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let x = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .unwrap();
        assert_eq!(
            x.get("args").unwrap().get("plan.rules").unwrap().as_str(),
            Some("chain,stencil")
        );
    }

    #[test]
    fn trace_structure_and_lanes() {
        let spans = vec![
            span(1, Lane::Host, 0, 100),
            span(2, Lane::Device(0), 10, 60),
            span(3, Lane::Device(1), 5, 90),
        ];
        let trace = chrome_trace(&spans, &[], &[]);
        let text = trace.to_json();
        let parsed = Json::parse(&text).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 3 thread_name + 3 spans.
        assert_eq!(events.len(), 7);
        let xs: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(xs.len(), 3);
        // Device 1 got its own tid.
        assert!(xs
            .iter()
            .any(|e| e.get("tid").unwrap().as_f64() == Some(2.0)));
        // ns → µs conversion.
        let host = xs
            .iter()
            .find(|e| e.get("tid").unwrap().as_f64() == Some(0.0))
            .unwrap();
        assert_eq!(host.get("dur").unwrap().as_f64(), Some(0.1));
        assert_eq!(
            host.get("args").unwrap().get("nd_range").unwrap().as_str(),
            Some("256/64")
        );
    }

    #[test]
    fn empty_trace_still_valid() {
        let trace = chrome_trace(&[], &[], &[]);
        let parsed = Json::parse(&trace.to_json()).unwrap();
        // Metadata only (process + host lane).
        assert_eq!(
            parsed.get("traceEvents").unwrap().as_arr().unwrap().len(),
            2
        );
    }

    #[test]
    fn flow_pairs_and_counters() {
        let spans = vec![
            span(1, Lane::Device(0), 0, 50),
            span(2, Lane::Device(1), 60, 90),
        ];
        let flows = vec![
            FlowEdge { from: 1, to: 2 },
            // Dangling destination: must be skipped, not emitted half-paired.
            FlowEdge { from: 1, to: 99 },
        ];
        let counters = vec![
            CounterSample {
                name: "queue.depth",
                device: 0,
                t_ns: 10,
                value: 3.0,
            },
            CounterSample {
                name: "queue.depth",
                device: 0,
                t_ns: 40,
                value: 1.0,
            },
        ];
        let parsed = Json::parse(&chrome_trace(&spans, &flows, &counters).to_json()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();

        let starts: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("s"))
            .collect();
        let ends: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("t"))
            .collect();
        assert_eq!(starts.len(), 1);
        assert_eq!(ends.len(), 1);
        // Matching ids, source at from.end_ns, dest at to.start_ns.
        assert_eq!(
            starts[0].get("id").unwrap().as_f64(),
            ends[0].get("id").unwrap().as_f64()
        );
        assert_eq!(starts[0].get("ts").unwrap().as_f64(), Some(0.05));
        assert_eq!(ends[0].get("ts").unwrap().as_f64(), Some(0.06));
        assert_eq!(starts[0].get("tid").unwrap().as_f64(), Some(1.0));
        assert_eq!(ends[0].get("tid").unwrap().as_f64(), Some(2.0));

        let cs: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .collect();
        assert_eq!(cs.len(), 2);
        assert_eq!(
            cs[0].get("name").unwrap().as_str(),
            Some("queue.depth gpu0")
        );
        assert_eq!(
            cs[0].get("args").unwrap().get("value").unwrap().as_f64(),
            Some(3.0)
        );
    }
}
