//! A small self-contained JSON value type with a serializer and a parser.
//!
//! The profiler emits Chrome traces and benchmark reports as JSON and the
//! test suite parses them back; both directions live here so the workspace
//! needs no external JSON dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialises to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (with a byte offset) on malformed
    /// input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<K: ToString, V: Into<Json>> FromIterator<(K, V)> for Json {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Json {
        Json::Obj(
            iter.into_iter()
                .map(|(k, v)| (k.to_string(), v.into()))
                .collect(),
        )
    }
}

/// Builds an object from a sorted map (handy for metric dictionaries).
pub fn from_map<V: Into<Json> + Clone>(map: &BTreeMap<String, V>) -> Json {
    map.iter()
        .map(|(k, v)| (k.clone(), v.clone().into()))
        .collect()
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs are not needed for our own
                            // output; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let v = Json::obj([
            ("name", Json::from("skelcl")),
            ("pi", Json::Num(3.25)),
            ("n", Json::from(42u64)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::from(1u64), Json::from("two")]),
            ),
        ]);
        let text = v.to_json();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_serialise_without_fraction() {
        assert_eq!(Json::from(1500u64).to_json(), "1500");
        assert_eq!(Json::Num(1.5).to_json(), "1.5");
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(Json::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_f64(), Some(1.0));
    }

    #[test]
    fn rejects_malformed() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"abc").is_err());
    }

    #[test]
    fn unicode_strings() {
        let v = Json::parse("\"héllo → wörld\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
        assert_eq!(Json::parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }
}
