//! Proof that the disabled profiler is zero-cost on the heap: a counting
//! global allocator observes no allocations across the whole disabled API
//! surface.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use skelcl_profile::{metrics, FlightKind, FlightRecorder, Profiler, SpanKind};
use vgpu::{CommandKind, DeviceId, Event};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_profiler_never_allocates() {
    let profiler = Profiler::disabled();
    // Event construction itself allocates; do it before measuring.
    let event = Event::new(
        DeviceId(0),
        CommandKind::Kernel {
            name: "skelcl_map".into(),
        },
        0,
        10,
        110,
        None,
    );

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..100 {
        let guard = profiler.host_span(SpanKind::Skeleton, "Map.call");
        profiler.record_event(&event);
        profiler.add(metrics::SKELETON_CALLS, 1);
        profiler.record_value(metrics::HIST_KERNEL_NS, 42);
        profiler.record_flow(3, 7);
        profiler.record_counter_sample(metrics::QUEUE_DEPTH, 0, 10, 2.0);
        profiler.set_device_gauge(metrics::POOL_STEAL_BALANCE, 0, 1.0);
        assert_eq!(guard.id(), 0);
        drop(guard);
    }
    assert!(profiler.spans().is_empty());
    assert!(profiler.flows().is_empty());
    assert!(profiler.counter_samples().is_empty());
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled profiler allocated on the hot path"
    );
}

#[test]
fn disabled_flight_recorder_never_allocates() {
    let flight = FlightRecorder::disabled();
    assert!(!flight.is_enabled());

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..100u64 {
        flight.record(FlightKind::LaunchBegin, 0, "kernel", i, 256, 0);
        flight.record(FlightKind::Transfer, 1, "write", i, 4096, 0);
        assert!(!flight.dump_once("should not dump"));
    }
    assert_eq!(flight.recorded(), 0);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled flight recorder allocated on the hot path"
    );
}

#[test]
fn enabled_profiler_does_record() {
    // Sanity check that the same call sequence records when enabled — the
    // zero-allocation property above is meaningful only if the API is live.
    let profiler = Profiler::enabled();
    let event = Event::new(
        DeviceId(0),
        CommandKind::Kernel { name: "k".into() },
        0,
        10,
        110,
        None,
    );
    {
        let _guard = profiler.host_span(SpanKind::Skeleton, "Map.call");
        profiler.record_event(&event);
    }
    assert_eq!(profiler.spans().len(), 2);
}
