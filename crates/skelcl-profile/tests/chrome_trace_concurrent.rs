//! Concurrent trace export: several threads record spans, flow edges and
//! counter samples into one shared profiler; the resulting Chrome trace
//! must be valid JSON with correctly paired flow events and per-lane
//! monotone timestamps.

use std::collections::HashMap;

use skelcl_profile::{Json, Profiler, SpanKind};
use vgpu::{CommandKind, DeviceId, Event};

const THREADS: usize = 4;
const SPANS_PER_THREAD: usize = 25;

fn kernel_event(device: usize, start: u64, end: u64) -> Event {
    Event::new(
        DeviceId(device),
        CommandKind::Kernel {
            name: format!("k{device}"),
        },
        start,
        start,
        end,
        None,
    )
}

#[test]
fn concurrent_spans_flows_and_counters_export_cleanly() {
    let profiler = Profiler::enabled();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let profiler = profiler.clone();
            scope.spawn(move || {
                let _host = profiler.host_span(SpanKind::Skeleton, &format!("thread{t}"));
                let mut prev = 0u64;
                for i in 0..SPANS_PER_THREAD {
                    // Each thread owns one device lane with strictly
                    // increasing device timestamps.
                    let start = (i as u64) * 100;
                    let id = profiler.record_event_with(
                        &kernel_event(t, start, start + 60),
                        Some("64/64".into()),
                    );
                    assert_ne!(id, 0);
                    // Chain: span i depends on span i-1 (same lane).
                    profiler.record_flow(prev, id);
                    prev = id;
                    profiler.record_counter_sample(
                        skelcl_profile::metrics::QUEUE_DEPTH,
                        t,
                        start,
                        (i % 5) as f64,
                    );
                }
            });
        }
    });

    let text = profiler.chrome_trace_json().expect("profiler enabled");
    let parsed = Json::parse(&text).expect("trace must be valid JSON");
    let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();

    let ph = |e: &Json| e.get("ph").unwrap().as_str().unwrap().to_string();

    // Every lane's "X" timestamps must be monotone non-decreasing in
    // emission order (the exporter sorts per lane).
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    let mut x_count = 0usize;
    for e in events.iter().filter(|e| ph(e) == "X") {
        x_count += 1;
        let tid = e.get("tid").unwrap().as_f64().unwrap() as u64;
        let ts = e.get("ts").unwrap().as_f64().unwrap();
        if let Some(prev) = last_ts.get(&tid) {
            assert!(ts >= *prev, "lane {tid} went backwards: {ts} after {prev}");
        }
        last_ts.insert(tid, ts);
    }
    // THREADS host spans + THREADS * SPANS_PER_THREAD device spans.
    assert_eq!(x_count, THREADS + THREADS * SPANS_PER_THREAD);

    // Flow events pair up: every "s" id has exactly one "t" id and vice
    // versa, and each pair's timestamps are ordered (source end precedes
    // or equals destination start).
    let mut starts: HashMap<u64, f64> = HashMap::new();
    let mut ends: HashMap<u64, f64> = HashMap::new();
    for e in events {
        let id = || e.get("id").unwrap().as_f64().unwrap() as u64;
        let ts = || e.get("ts").unwrap().as_f64().unwrap();
        match ph(e).as_str() {
            "s" => {
                assert!(starts.insert(id(), ts()).is_none(), "duplicate flow id");
            }
            "t" => {
                assert!(ends.insert(id(), ts()).is_none(), "duplicate flow id");
            }
            _ => {}
        }
    }
    // Each thread chains SPANS_PER_THREAD - 1 edges (the first record_flow
    // has from == 0 and is dropped).
    assert_eq!(starts.len(), THREADS * (SPANS_PER_THREAD - 1));
    assert_eq!(starts.len(), ends.len());
    for (id, s_ts) in &starts {
        let t_ts = ends.get(id).expect("unpaired flow start");
        assert!(s_ts <= t_ts, "flow {id} goes backwards: {s_ts} -> {t_ts}");
    }

    // Counter tracks made it out, one track per device.
    let counters: Vec<&Json> = events.iter().filter(|e| ph(e) == "C").collect();
    assert_eq!(counters.len(), THREADS * SPANS_PER_THREAD);
    for c in &counters {
        let name = c.get("name").unwrap().as_str().unwrap();
        assert!(name.starts_with("queue.depth gpu"), "track name: {name}");
        assert!(c
            .get("args")
            .unwrap()
            .get("value")
            .unwrap()
            .as_f64()
            .is_some());
    }
}
