//! End-to-end tests that the paper's listings work as written.

use skelcl_repro::skelcl::{
    BoundaryHandling, Context, Distribution, Map, MapOverlap, Matrix, Reduce, Vector, Zip,
};

/// Paper Listing 1.1: dot product of two vectors.
#[test]
fn listing_1_1_dot_product() {
    // SkelCL::init();
    let ctx = Context::tesla_s1070();

    // create skeletons
    let sum: Reduce<f32> =
        Reduce::new(&ctx, "float sum(float x, float y){ return x + y; }").unwrap();
    let mult: Zip<f32, f32, f32> =
        Zip::new(&ctx, "float mult(float x, float y){ return x * y; }").unwrap();

    // create input vectors and fill with data
    const SIZE: usize = 10_000;
    let a = Vector::from_fn(&ctx, SIZE, |i| (i % 17) as f32);
    let b = Vector::from_fn(&ctx, SIZE, |i| (i % 5) as f32);

    // execute skeleton
    let c = sum.call(&mult.call(&a, &b).unwrap()).unwrap();

    // fetch result
    let expected: f32 = (0..SIZE).map(|i| ((i % 17) * (i % 5)) as f32).sum();
    assert_eq!(c.value(), expected);
}

/// Paper §3.3: the map skeleton with negation.
#[test]
fn section_3_3_map_negation() {
    let ctx = Context::single_gpu();
    let neg: Map<f32, f32> = Map::new(&ctx, "float func(float x){ return -x; }").unwrap();
    let input = Vector::from_fn(&ctx, 1000, |i| i as f32 - 500.0);
    let result = neg.call(&input).unwrap();
    let out = result.to_vec().unwrap();
    assert!(out.iter().enumerate().all(|(i, &v)| v == 500.0 - i as f32));
}

/// Paper §3.3: the scan skeleton (prefix sums).
#[test]
fn section_3_3_prefix_sum() {
    use skelcl_repro::skelcl::Scan;
    let ctx = Context::tesla_s1070();
    let prefix: Scan<f32> =
        Scan::new(&ctx, "float func(float x, float y){ return x + y; }").unwrap();
    let input = Vector::from_fn(&ctx, 5000, |_| 1.0f32);
    let result = prefix.call(&input).unwrap().to_vec().unwrap();
    assert_eq!(result[0], 1.0);
    assert_eq!(result[4999], 5000.0);
}

/// Paper Listing 1.2: sum of all direct neighbours of every matrix
/// element, with neutral-value boundary handling.
#[test]
fn listing_1_2_neighbour_sum() {
    let ctx = Context::single_gpu();
    let m: MapOverlap<f32, f32> = MapOverlap::new(
        &ctx,
        "float func(const float* m_in){
            float sum = 0.0f;
            for (int i = -1; i <= 1; ++i)
                for (int j = -1; j <= 1; ++j)
                    sum += get(m_in, i, j);
            return sum;
        }",
        1,
        BoundaryHandling::Neutral(0.0),
    )
    .unwrap();
    let ones = Matrix::from_fn(&ctx, 10, 10, |_, _| 1.0f32);
    let out = m.call(&ones).unwrap();
    assert_eq!(
        out.get(5, 5).unwrap(),
        9.0,
        "interior counts all 9 neighbours"
    );
    assert_eq!(out.get(0, 0).unwrap(), 4.0, "corner sees 4 in-range cells");
    assert_eq!(out.get(0, 5).unwrap(), 6.0, "edge sees 6 in-range cells");
}

/// Paper Listing 1.5: Sobel edge detection, checked against both raw
/// kernel implementations (Listings 1.3/1.6 style).
#[test]
fn listing_1_5_sobel_agrees_with_raw_kernels() {
    let (w, h) = (96usize, 64usize);
    let img: Vec<u8> = (0..w * h)
        .map(|i| (((i % w) * 255 / w) as u8).wrapping_add(if (i / w) % 8 < 4 { 40 } else { 0 }))
        .collect();
    let skel = skelcl_bench_like_sobel(&img, w, h);
    let reference = host_sobel(&img, w, h);
    assert_eq!(skel, reference);
}

fn skelcl_bench_like_sobel(img: &[u8], w: usize, h: usize) -> Vec<u8> {
    let ctx = Context::single_gpu();
    let m: MapOverlap<u8, u8> = MapOverlap::new(
        &ctx,
        "uchar func(const uchar* img)
         {
             int hx = -1 * (int)get(img, -1, -1) + 1 * (int)get(img, +1, -1)
                      -2 * (int)get(img, -1,  0) + 2 * (int)get(img, +1,  0)
                      -1 * (int)get(img, -1, +1) + 1 * (int)get(img, +1, +1);
             int vy = -1 * (int)get(img, -1, -1) - 2 * (int)get(img, 0, -1) - 1 * (int)get(img, +1, -1)
                      +1 * (int)get(img, -1, +1) + 2 * (int)get(img, 0, +1) + 1 * (int)get(img, +1, +1);
             int mag = (int)sqrt((float)(hx * hx + vy * vy));
             return (uchar)(mag > 255 ? 255 : mag);
         }",
        1,
        BoundaryHandling::Nearest,
    )
    .unwrap();
    let input = Matrix::from_vec(&ctx, h, w, img.to_vec());
    m.call(&input).unwrap().to_vec().unwrap()
}

fn host_sobel(img: &[u8], width: usize, height: usize) -> Vec<u8> {
    let px = |x: isize, y: isize| -> i32 {
        let xc = x.clamp(0, width as isize - 1) as usize;
        let yc = y.clamp(0, height as isize - 1) as usize;
        img[yc * width + xc] as i32
    };
    let mut out = vec![0u8; width * height];
    for y in 0..height as isize {
        for x in 0..width as isize {
            let h = -px(x - 1, y - 1) + px(x + 1, y - 1) - 2 * px(x - 1, y) + 2 * px(x + 1, y)
                - px(x - 1, y + 1)
                + px(x + 1, y + 1);
            let v = -px(x - 1, y - 1) - 2 * px(x, y - 1) - px(x + 1, y - 1)
                + px(x - 1, y + 1)
                + 2 * px(x, y + 1)
                + px(x + 1, y + 1);
            let mag = ((h * h + v * v) as f32).sqrt() as i32;
            out[y as usize * width + x as usize] = mag.clamp(0, 255) as u8;
        }
    }
    out
}

/// Paper §3.2: distributions are changeable at runtime and the data stays
/// coherent (Fig. 1's four layouts).
#[test]
fn section_3_2_runtime_redistribution() {
    let ctx = Context::tesla_s1070();
    let inc: Map<i32, i32> = Map::new(&ctx, "int f(int x){ return x + 1; }").unwrap();
    let v = Vector::from_fn(&ctx, 4096, |i| i as i32);

    let mut expected: Vec<i32> = (0..4096).collect();
    for dist in [
        Distribution::Block,
        Distribution::Copy,
        Distribution::Single(2),
        Distribution::Overlap { size: 8 },
        Distribution::Block,
    ] {
        v.set_distribution(dist).unwrap();
        let r = inc.call(&v).unwrap();
        expected.iter_mut().for_each(|x| *x += 1);
        assert_eq!(r.to_vec().unwrap(), expected, "after {dist}");
        v.assign(r.to_vec().unwrap());
    }
}
