//! Cross-crate integration: drive all three layers together — compile
//! kernels with `skelcl-kernel`, run them on `vgpu` queues, and cross-check
//! against the `skelcl` skeleton library.

use skelcl_repro::kernel;
use skelcl_repro::skelcl::{Context, DeviceSelection, Map, Reduce, Vector};
use skelcl_repro::vgpu::{self, DeviceSpec, KernelArg, LaunchConfig, NdRange, Platform};

use kernel::value::Value;

/// The same computation expressed (a) as a hand-written kernel on raw vgpu
/// queues and (b) via the Map skeleton must agree bit-for-bit.
#[test]
fn raw_kernel_and_skeleton_agree() {
    let n = 10_000usize;
    let input: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();

    // (a) Raw path.
    let program = kernel::compile(
        "poly.cl",
        "float poly(float x){ return 3.0f * x * x - 2.0f * x + 1.0f; }
         __kernel void apply(__global const float* in, __global float* out, int n) {
             int i = (int)get_global_id(0);
             if (i < n) out[i] = poly(in[i]);
         }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let a = queue.create_buffer(4 * n).unwrap();
    let b = queue.create_buffer(4 * n).unwrap();
    let bytes: Vec<u8> = input.iter().flat_map(|v| v.to_le_bytes()).collect();
    queue.enqueue_write(&a, 0, &bytes).unwrap();
    queue
        .launch_kernel(
            &program,
            "apply",
            &[
                KernelArg::Buffer(a),
                KernelArg::Buffer(b.clone()),
                KernelArg::Scalar(Value::I32(n as i32)),
            ],
            NdRange::linear_default(n),
            &LaunchConfig::default(),
        )
        .unwrap();
    let mut raw_bytes = vec![0u8; 4 * n];
    queue.enqueue_read(&b, 0, &mut raw_bytes).unwrap();
    let raw: Vec<f32> = raw_bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();

    // (b) Skeleton path.
    let ctx = Context::single_gpu();
    let map: Map<f32, f32> = Map::new(
        &ctx,
        "float poly(float x){ return 3.0f * x * x - 2.0f * x + 1.0f; }",
    )
    .unwrap();
    let skel = map
        .call(&Vector::from_vec(&ctx, input.clone()))
        .unwrap()
        .to_vec()
        .unwrap();

    assert_eq!(raw, skel);
    // And both match the host.
    for (i, (&r, &x)) in raw.iter().zip(&input).enumerate() {
        assert_eq!(r, 3.0 * x * x - 2.0 * x + 1.0, "element {i}");
    }
}

/// Kernel-language diagnostics surface through the skeleton API with the
/// offending line visible.
#[test]
fn compile_errors_propagate_with_context() {
    let ctx = Context::single_gpu();
    let err = Map::<f32, f32>::new(&ctx, "float f(float x){ return x + undeclared; }").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("undeclared"), "{msg}");
    assert!(msg.contains("customizing function"), "{msg}");
}

/// Kernel runtime faults (out-of-bounds) propagate as launch errors, not
/// panics or silent corruption.
#[test]
fn runtime_faults_propagate() {
    let program = kernel::compile(
        "bad.cl",
        "__kernel void bad(__global float* out, int n) { out[n + 10] = 1.0f; }",
    )
    .unwrap();
    let platform = Platform::single(DeviceSpec::tesla_t10());
    let queue = platform.queue(0);
    let buf = queue.create_buffer(4).unwrap();
    let err = queue
        .launch_kernel(
            &program,
            "bad",
            &[KernelArg::Buffer(buf), KernelArg::Scalar(Value::I32(1))],
            NdRange::linear(1, 1),
            &LaunchConfig::default(),
        )
        .unwrap_err();
    assert!(matches!(err, vgpu::Error::Launch { .. }));
}

/// The whole stack stays consistent when devices differ in count: results
/// are identical from 1 to 4 GPUs for a reduce over an awkward size.
#[test]
fn device_count_invariance() {
    let data: Vec<i64> = (0..12_345).map(|i| (i * i) % 1000 - 500).collect();
    let expected: i64 = data.iter().sum();
    for devices in 1..=4 {
        let ctx = Context::init(
            Platform::new(devices, DeviceSpec::tesla_t10()),
            DeviceSelection::All,
        );
        let sum: Reduce<i64> =
            Reduce::new(&ctx, "long add(long x, long y){ return x + y; }").unwrap();
        let v = Vector::from_vec(&ctx, data.clone());
        assert_eq!(sum.call(&v).unwrap().value(), expected, "{devices} devices");
    }
}

/// Device memory is released when containers drop (the paper's automatic
/// (de)allocation, §3.1).
#[test]
fn container_drop_releases_device_memory() {
    let ctx = Context::single_gpu();
    let device = ctx.platform().device(0);
    let before = device.allocated_bytes();
    {
        let neg: Map<f32, f32> = Map::new(&ctx, "float f(float x){ return -x; }").unwrap();
        let v = Vector::from_fn(&ctx, 100_000, |i| i as f32);
        let out = neg.call(&v).unwrap();
        assert!(
            device.allocated_bytes() > before,
            "buffers allocated on use"
        );
        drop(out);
        drop(v);
    }
    assert_eq!(device.allocated_bytes(), before, "all buffers released");
}

/// The simulated profiling timeline is coherent across the stack: total
/// device time covers the sum of all recorded event durations.
#[test]
fn profiling_timeline_coherent() {
    let ctx = Context::single_gpu();
    let map: Map<f32, f32> = Map::new(&ctx, "float f(float x){ return x * 2.0f; }").unwrap();
    let v = Vector::from_fn(&ctx, 50_000, |i| i as f32);
    let before = ctx.platform().device(0).now_ns();
    let out = map.call(&v).unwrap();
    let _ = out.to_vec().unwrap();
    let after = ctx.platform().device(0).now_ns();
    let kernel_ns = map.events().last_kernel_time().as_nanos() as u64;
    assert!(kernel_ns > 0);
    assert!(after - before >= kernel_ns, "timeline includes the kernel");
}

/// The paper's OpenCL-compatibility promise (§3): arbitrary parts of a
/// SkelCL program can be written in plain OpenCL. A raw kernel writes
/// directly into a SkelCL container's device buffers between two skeleton
/// calls, and the container stays coherent.
#[test]
fn raw_opencl_interop_with_containers() {
    use skelcl_repro::skelcl::Distribution;

    let ctx = Context::single_gpu();
    let inc: Map<i32, i32> = Map::new(&ctx, "int f(int x){ return x + 1; }").unwrap();
    let v = Vector::from_fn(&ctx, 1000, |i| i as i32);

    // Skeleton step.
    let v = inc.call(&v).unwrap();

    // Raw OpenCL step on the same container: triple every element.
    let program = kernel::compile(
        "triple.cl",
        "__kernel void triple(__global int* data, int n) {
             int i = (int)get_global_id(0);
             if (i < n) data[i] = data[i] * 3;
         }",
    )
    .unwrap();
    for chunk in v.interop_chunks(Distribution::Block).unwrap() {
        let n = chunk.core.len();
        ctx.queue(chunk.device)
            .launch_kernel(
                &program,
                "triple",
                &[
                    KernelArg::Buffer(chunk.buffer.clone()),
                    KernelArg::Scalar(Value::I32(n as i32)),
                ],
                NdRange::linear_default(n),
                &LaunchConfig::default(),
            )
            .unwrap();
    }
    v.mark_device_modified();

    // Skeleton step again, then verify on the host.
    let out = inc.call(&v).unwrap().to_vec().unwrap();
    for (i, &x) in out.iter().enumerate() {
        assert_eq!(x, (i as i32 + 1) * 3 + 1, "element {i}");
    }
}
