//! Acceptance test for the observability layer: the quickstart dot product
//! (paper Listing 1.1) with profiling enabled writes a Chrome trace that
//! validates against the `traceEvents` schema, and the metrics registry
//! shows non-zero transfer bytes, compile-cache activity and per-device
//! busy nanoseconds.

use skelcl_repro::skelcl::profile::json::Json;
use skelcl_repro::skelcl::profile::metrics;
use skelcl_repro::skelcl::{Context, DeviceSelection, Profiler, Reduce, Vector, Zip};
use skelcl_repro::vgpu::Platform;

fn dot_product_profiled() -> Context {
    let ctx = Context::init_with_profiler(
        Platform::tesla_s1070(),
        DeviceSelection::All,
        Profiler::enabled(),
    );
    let sum: Reduce<f32> =
        Reduce::new(&ctx, "float sum(float x, float y){ return x + y; }").unwrap();
    let mult: Zip<f32, f32, f32> =
        Zip::new(&ctx, "float mult(float x, float y){ return x * y; }").unwrap();
    let a = Vector::from_fn(&ctx, 1 << 14, |i| (i % 100) as f32 / 100.0);
    let b = Vector::from_fn(&ctx, 1 << 14, |i| ((i + 7) % 50) as f32 / 50.0);
    let c = sum.call(&mult.call(&a, &b).unwrap()).unwrap();
    assert!(c.value() > 0.0);
    ctx
}

#[test]
fn dot_product_trace_matches_trace_events_schema() {
    let ctx = dot_product_profiled();

    // Write the trace like the quickstart example does, then re-read it.
    let dir = std::env::temp_dir();
    let path = dir.join(format!("skelcl_dot_trace_{}.json", std::process::id()));
    let trace_text = ctx
        .profiler()
        .chrome_trace_json()
        .expect("profiler enabled");
    std::fs::write(&path, &trace_text).unwrap();
    let trace = Json::parse(&std::fs::read_to_string(&path).unwrap()).expect("valid JSON");
    let _ = std::fs::remove_file(&path);

    // Envelope: {"traceEvents": [...], "displayTimeUnit": "ns"}.
    assert_eq!(
        trace.get("displayTimeUnit").and_then(Json::as_str),
        Some("ns")
    );
    let events = trace
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    assert!(!events.is_empty());

    // Every event carries the schema's required fields per phase.
    let mut metadata = 0;
    let mut complete = 0;
    let mut flow_starts = 0;
    let mut flow_ends = 0;
    for e in events {
        assert!(e.get("name").and_then(Json::as_str).is_some(), "event name");
        assert!(e.get("pid").and_then(Json::as_f64).is_some(), "event pid");
        assert!(e.get("tid").and_then(Json::as_f64).is_some(), "event tid");
        match e.get("ph").and_then(Json::as_str) {
            Some("M") => metadata += 1,
            Some("X") => {
                complete += 1;
                assert!(e.get("ts").and_then(Json::as_f64).is_some(), "X has ts");
                assert!(e.get("dur").and_then(Json::as_f64).is_some(), "X has dur");
            }
            // Flow events pair LaunchPlan wait-list edges across lanes.
            Some(ph @ ("s" | "t")) => {
                if ph == "s" {
                    flow_starts += 1;
                } else {
                    flow_ends += 1;
                }
                assert!(e.get("ts").and_then(Json::as_f64).is_some(), "flow has ts");
                assert!(e.get("id").and_then(Json::as_f64).is_some(), "flow has id");
            }
            // Counter tracks (queue depth, pool gauges).
            Some("C") => {
                assert!(e.get("ts").and_then(Json::as_f64).is_some(), "C has ts");
                assert!(
                    e.get("args").and_then(|a| a.get("value")).is_some(),
                    "C has args.value"
                );
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(flow_starts, flow_ends, "flow starts pair with flow ends");
    // Process name + host lane + 4 device lanes, and real work happened.
    assert!(
        metadata >= 6,
        "process and lane metadata present ({metadata})"
    );
    assert!(complete > 0, "complete events present");

    // Kernel events carry their launch geometry.
    assert!(
        events.iter().any(|e| {
            e.get("cat").and_then(Json::as_str) == Some("kernel")
                && e.get("args").and_then(|a| a.get("nd_range")).is_some()
        }),
        "kernel events carry nd_range"
    );
}

#[test]
fn dot_product_metrics_are_populated() {
    let ctx = dot_product_profiled();
    let m = ctx.profiler().metrics_snapshot().expect("profiler enabled");
    let counter = |name: &str| m.counters.get(name).copied().unwrap_or(0);

    // Non-zero bytes transferred in both directions (2 input vectors up,
    // intermediate + final results down).
    assert!(counter(metrics::BYTES_H2D) > 0, "host-to-device bytes");
    assert!(counter(metrics::BYTES_D2H) > 0, "device-to-host bytes");
    // The two skeletons each compiled a fresh program.
    assert_eq!(
        counter(metrics::COMPILE_CACHE_MISS),
        2,
        "zip + reduce compiles"
    );
    assert_eq!(
        counter(metrics::SKELETON_CALLS),
        2,
        "zip call + reduce call"
    );
    // All four devices accrued kernel busy time.
    assert_eq!(m.devices.len(), 4);
    for (device, busy) in &m.devices {
        assert!(busy.kernel_ns > 0, "device {device} has kernel busy-ns");
    }
    assert!(m.load_imbalance() >= 1.0);
}
