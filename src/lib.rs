//! Umbrella crate for the SkelCL reproduction workspace.
//!
//! Re-exports the three layers so examples and integration tests can use a
//! single dependency:
//!
//! * [`kernel`] — the SkelCL C compiler and work-item VM,
//! * [`vgpu`] — the virtual multi-GPU platform,
//! * [`skelcl`] — containers, distributions and algorithmic skeletons.
pub use skelcl;
pub use skelcl_kernel as kernel;
pub use vgpu;
