//! Offline stand-in for the `parking_lot` crate.
//!
//! The container images this repository builds in have no crates.io
//! access, so the workspace vendors the *subset* of `parking_lot` it
//! actually uses, backed by `std::sync`. Semantics match parking_lot where
//! it matters to callers: `lock()` returns the guard directly (a poisoned
//! std mutex is transparently recovered, since parking_lot has no
//! poisoning).

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion primitive with the `parking_lot` calling convention.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// An RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock with the `parking_lot` calling convention.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
