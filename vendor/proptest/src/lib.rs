//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use —
//! `proptest!`, `any`, range/tuple/`Just`/`prop_oneof!` strategies,
//! `prop_map`, `prop_recursive`, `proptest::collection::vec` and the
//! `prop_assert*` macros — as a plain randomized test runner. Two
//! deliberate simplifications against upstream:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   (`Debug`) and the deterministic per-test seed instead of a minimal
//!   counterexample.
//! * **Deterministic seeding.** Each test's RNG is seeded from its name,
//!   so failures reproduce without a persistence file.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each function body is run for
/// `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg); $($rest)*);
    };
    (@with_config ($cfg:expr);
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                $(let $arg = $strat;)+
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                    let inputs = format!("{:?}", ($(&$arg,)+));
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed; inputs: {}",
                            case + 1, config.cases, stringify!($name), inputs,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($x:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($x)),+])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
