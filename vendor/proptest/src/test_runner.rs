//! Runner configuration and the deterministic test RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the simulated-GPU tests here are
        // heavyweight, so the shim keeps the explicit per-test configs and
        // uses a smaller fallback.
        ProptestConfig { cases: 64 }
    }
}

/// The RNG driving strategy generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A deterministic RNG derived from the test's name, so every run of
    /// a given test sees the same case sequence.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform index below `bound`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.inner.gen_range(0..bound)
    }

    /// A uniform `usize` in `range`.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        self.inner.gen_range(range)
    }

    /// A uniform `u64` in the inclusive span `[lo, hi]` interpreted over
    /// the raw two's-complement bits (shared by all integer strategies).
    pub fn span(&mut self, lo: u64, span: u64) -> u64 {
        if span == u64::MAX {
            self.inner.next_u64()
        } else {
            lo.wrapping_add(self.inner.gen_range(0..=span))
        }
    }
}
