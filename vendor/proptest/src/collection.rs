//! Collection strategies (`proptest::collection`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for `Vec`s with lengths drawn from `len` and elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(
        len.start < len.end,
        "empty length range for collection::vec"
    );
    VecStrategy { element, len }
}

/// The strategy [`vec`] returns.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.usize_in(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_lengths_in_range() {
        let s = vec(any::<i32>(), 2..5);
        let mut rng = TestRng::for_test("vec-unit");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
