//! Value-generation strategies (no shrinking).

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy: 'static {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `f` receives the strategy for the
    /// previous recursion level and returns the strategy for the next.
    /// `depth` bounds the recursion; the size hints are accepted for
    /// upstream compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            level = Union::new(vec![base.clone(), f(level).boxed()]).boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + 'static,
    U: 'static,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies (what `prop_oneof!` builds).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

/// Strategy for any value of a primitive type (proptest's `any`).
pub fn any<T: ArbitraryPrim>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The strategy [`any`] returns.
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: ArbitraryPrim> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Primitive types [`any`] can generate (full-range, bit-uniform).
pub trait ArbitraryPrim: Sized + 'static {
    /// Draws one full-range value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl ArbitraryPrim for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl ArbitraryPrim for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryPrim for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Bit-uniform: covers subnormals, infinities and NaNs.
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl ArbitraryPrim for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i64 as u64;
                let span = (self.end as i64 as u64).wrapping_sub(lo).wrapping_sub(1);
                rng.span(lo, span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let lo64 = lo as i64 as u64;
                let span = (hi as i64 as u64).wrapping_sub(lo64);
                rng.span(lo64, span) as $t
            }
        }
    )*};
}
range_strategy!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // 53 random bits -> uniform in [0, 1), then scale; clamp
                // because rounding can land exactly on `end` for narrow
                // ranges.
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start + (unit as $t) * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                let v = lo + (unit as $t) * (hi - lo);
                v.clamp(lo, hi)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-unit")
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = rng();
        for _ in 0..500 {
            let v = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&v));
            let w = (-1000i64..1000).generate(&mut rng);
            assert!((-1000..1000).contains(&w));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = rng();
        for _ in 0..500 {
            let v = (0.01f64..100.0).generate(&mut rng);
            assert!((0.01..100.0).contains(&v), "{v}");
            let w = (-1.5f32..=1.5).generate(&mut rng);
            assert!((-1.5..=1.5).contains(&w), "{w}");
        }
    }

    #[test]
    fn map_union_just_compose() {
        let mut rng = rng();
        let s = crate::prop_oneof![(0i32..5).prop_map(|v| v * 10), Just(999i32),];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 999 || (v % 10 == 0 && v < 50));
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] i32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let leaf = (0i32..10).prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let mut rng = rng();
        for _ in 0..200 {
            assert!(depth(&tree.generate(&mut rng)) <= 4);
        }
    }
}
