//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — groups,
//! `BenchmarkId`, `Bencher::iter`, the `criterion_group!`/`criterion_main!`
//! macros — as a small wall-clock harness: per benchmark it runs one
//! warm-up iteration plus `sample_size` timed samples and prints
//! min/mean/max. No statistics, plots or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], as criterion offers.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_benchmark_id(), 10, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&id, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // One warm-up sample, then the timed ones.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        times.push(bencher.elapsed);
    }
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    let mean = times.iter().sum::<Duration>() / times.len().max(1) as u32;
    println!("  {id:<50} [{min:>12.3?} {mean:>12.3?} {max:>12.3?}]  ({samples} samples)");
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Measures one sample: runs `f` once and records its wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
    }
}

/// A benchmark name with a parameter, e.g. `sobel/512x512`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered benchmark id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        let mut runs = 0;
        group
            .sample_size(3)
            .bench_function(BenchmarkId::new("noop", 1), |b| {
                b.iter(|| black_box(2 + 2));
                runs += 1;
            });
        group.finish();
        assert_eq!(runs, 4, "warm-up + 3 samples");
    }
}
