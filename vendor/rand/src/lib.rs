//! Offline stand-in for the `rand` crate (0.8-flavoured API subset).
//!
//! The workspace only needs seeded, reproducible generation of integers
//! and floats in ranges ([`Rng::gen_range`]) from [`rngs::StdRng`]; this
//! shim provides exactly that on top of xoshiro256** seeded via
//! SplitMix64. It is **not** the real `rand` crate: distributions are
//! uniform-by-construction and the stream differs from upstream, which is
//! fine because every caller seeds explicitly and only relies on
//! determinism, not on a particular stream.

/// Seedable generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic 64-bit generator (xoshiro256**), standing in for
    /// rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Construction from simple seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed, as upstream rand does.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// The user-facing generation trait, mirroring `rand::Rng`.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Range types [`Rng::gen_range`] accepts, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_below(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(uniform_below(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

int_range! {
    i8 => i64, i16 => i64, i32 => i64, i64 => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64,
    usize => u64, isize => i64,
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        // 24 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-8..=8);
            assert!((-8..=8).contains(&v));
            let f: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: usize = rng.gen_range(0usize..10);
            assert!(u < 10);
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
