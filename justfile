# Developer entry points. `just check` is what CI runs; everything works
# offline (dependencies are vendored path crates under vendor/).

# Build, test and lint — the full CI gate.
check: build test clippy fmt-check

# Release build of every crate.
build:
    cargo build --release --workspace

# Tier-1 tests (root package, as the roadmap's verify command) plus the
# whole workspace.
test:
    cargo test -q
    cargo test -q --workspace

# Lint with warnings denied.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Alias for clippy (matches the CI step name).
lint: clippy

# Formatting check (non-mutating).
fmt-check:
    cargo fmt --all --check

# Reformat the tree.
fmt:
    cargo fmt --all

# Regenerate the paper's figures and their BENCH_*.json reports.
figures:
    cargo run --release -p skelcl-bench --bin fig4_mandelbrot
    cargo run --release -p skelcl-bench --bin fig5_sobel
    cargo run --release -p skelcl-bench --bin scaling
    cargo run --release -p skelcl-bench --bin interp
    cargo run --release -p skelcl-bench --bin loc_table

# A/B the two vgpu execution engines (EXT-INTERP): pooled fast engine vs
# legacy lockstep, with bit-identical-output checks and spawn accounting.
bench-interp:
    cargo run --release -p skelcl-bench --bin interp

# A/B the two compile pipelines (EXT-IR): legacy stack codegen vs the MIR
# optimization passes, per pass and end-to-end. Same binary as
# bench-interp — the EXT-IR section is the second half of its report.
bench-ir:
    cargo run --release -p skelcl-bench --bin interp

# A/B the plan rewrite rules (EXT-PLAN): map → stencil → reduce lowered
# staged (SKELCL_PLAN=0) vs rewritten (SKELCL_PLAN=1), with launch and
# intermediate-byte accounting. The EXT-PLAN section is part of the
# scaling binary's report (`results.plan` in BENCH_scaling.json).
bench-plan:
    cargo run --release -p skelcl-bench --bin scaling

# A/B the out-of-core streaming executor (EXT-STREAM): map → stencil →
# reduce under a 256 KiB per-device budget, streamed (SKELCL_STREAM=2)
# vs the non-streamed oracle (SKELCL_STREAM=0), with peak-residency,
# hidden-transfer and bit-identity accounting. The EXT-STREAM section is
# part of the scaling binary's report (`results.stream` in
# BENCH_scaling.json).
bench-stream:
    cargo run --release -p skelcl-bench --bin scaling

# Regenerate the reports into a scratch directory and diff them against
# the committed baselines in bench/baselines/ (exits non-zero on any
# regression — see crates/skelcl-bench/src/gate.rs for the rules).
bench-gate:
    rm -rf target/bench-fresh && mkdir -p target/bench-fresh
    SKELCL_BENCH_DIR=target/bench-fresh cargo run --release -p skelcl-bench --bin fig4_mandelbrot
    SKELCL_BENCH_DIR=target/bench-fresh cargo run --release -p skelcl-bench --bin fig5_sobel
    SKELCL_BENCH_DIR=target/bench-fresh cargo run --release -p skelcl-bench --bin scaling
    SKELCL_BENCH_DIR=target/bench-fresh cargo run --release -p skelcl-bench --bin interp
    cargo run --release -p skelcl-bench --bin bench_gate -- bench/baselines target/bench-fresh

# Refresh the committed baselines after an intentional perf change.
bench-baseline:
    SKELCL_BENCH_DIR=bench/baselines cargo run --release -p skelcl-bench --bin fig4_mandelbrot
    SKELCL_BENCH_DIR=bench/baselines cargo run --release -p skelcl-bench --bin fig5_sobel
    SKELCL_BENCH_DIR=bench/baselines cargo run --release -p skelcl-bench --bin scaling
    SKELCL_BENCH_DIR=bench/baselines cargo run --release -p skelcl-bench --bin interp

# Quickstart with profiling: prints the metrics summary and writes
# trace.json for chrome://tracing.
trace:
    SKELCL_TRACE=trace.json cargo run --release -p skelcl-repro --example quickstart

# Full observability demo: 2-GPU dot product with the Chrome trace (flow
# arrows + counter tracks) and the flight recorder, dumping the ring at
# the end of the run.
trace-demo:
    SKELCL_TRACE=trace_demo.json SKELCL_FLIGHT=1024 cargo run --release -p skelcl-repro --example trace_demo
