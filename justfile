# Developer entry points. `just check` is what CI runs; everything works
# offline (dependencies are vendored path crates under vendor/).

# Build, test and lint — the full CI gate.
check: build test clippy fmt-check

# Release build of every crate.
build:
    cargo build --release --workspace

# Tier-1 tests (root package, as the roadmap's verify command) plus the
# whole workspace.
test:
    cargo test -q
    cargo test -q --workspace

# Lint with warnings denied.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Formatting check (non-mutating).
fmt-check:
    cargo fmt --all --check

# Reformat the tree.
fmt:
    cargo fmt --all

# Regenerate the paper's figures and their BENCH_*.json reports.
figures:
    cargo run --release -p skelcl-bench --bin fig4_mandelbrot
    cargo run --release -p skelcl-bench --bin fig5_sobel
    cargo run --release -p skelcl-bench --bin scaling
    cargo run --release -p skelcl-bench --bin loc_table

# Quickstart with profiling: prints the metrics summary and writes
# trace.json for chrome://tracing.
trace:
    SKELCL_TRACE=trace.json cargo run --release -p skelcl-repro --example quickstart
