//! The paper's first case study (§4.1): computing a Mandelbrot fractal
//! with the Map skeleton, on one and on four virtual GPUs, writing the
//! image as a PGM file.
//!
//! Run with: `cargo run --release --example mandelbrot [-- <width> <height> <max_iter>]`

use std::io::Write;

use skelcl_repro::skelcl::{Context, DeviceSelection, Map, Value, Vector};
use skelcl_repro::vgpu::{DeviceSpec, Platform};

/// The customizing function: each pixel from its linear index.
const FUNC: &str = r#"
uchar func(int gid, int width, int height, int max_iter)
{
    int px = gid % width;
    int py = gid / width;
    float cr = 3.5f * (float)px / (float)width - 2.5f;
    float ci = 3.0f * (float)py / (float)height - 1.5f;
    float zr = 0.0f;
    float zi = 0.0f;
    int it = 0;
    while (zr * zr + zi * zi <= 4.0f && it < max_iter) {
        float t = zr * zr - zi * zi + cr;
        zi = 2.0f * zr * zi + ci;
        zr = t;
        it = it + 1;
    }
    return (uchar)(255 * it / max_iter);
}
"#;

fn render(
    devices: usize,
    width: usize,
    height: usize,
    max_iter: i32,
) -> Result<(Vec<u8>, std::time::Duration), Box<dyn std::error::Error>> {
    let ctx = Context::init(
        Platform::new(devices, DeviceSpec::tesla_t10()),
        DeviceSelection::All,
    );
    let mandelbrot: Map<i32, u8> = Map::new(&ctx, FUNC)?;
    let pixels = Vector::from_fn(&ctx, width * height, |i| i as i32);
    let image = mandelbrot.call_with(
        &pixels,
        &[
            Value::I32(width as i32),
            Value::I32(height as i32),
            Value::I32(max_iter),
        ],
    )?;
    Ok((image.to_vec()?, mandelbrot.events().last_kernel_time()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let width: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(640);
    let height: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(480);
    let max_iter: i32 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(128);

    println!("rendering {width}x{height} fractal, max_iter {max_iter}");
    let (img1, t1) = render(1, width, height, max_iter)?;
    println!("1 GPU : kernel time {t1:?} (simulated)");
    let (img4, t4) = render(4, width, height, max_iter)?;
    println!(
        "4 GPUs: kernel time {t4:?} (simulated), speedup {:.2}x",
        t1.as_secs_f64() / t4.as_secs_f64()
    );
    assert_eq!(img1, img4, "multi-GPU result matches single-GPU");

    let path = std::env::temp_dir().join("skelcl_mandelbrot.pgm");
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "P5\n{width} {height}\n255")?;
    f.write_all(&img1)?;
    println!("wrote {}", path.display());
    Ok(())
}
