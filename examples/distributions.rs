//! Data distributions and implicit redistribution (paper §3.2, Figs. 1–2):
//! the same vector is moved between `single`, `copy`, `block` and
//! `overlap` layouts at runtime while skeletons keep working on it, plus a
//! multi-GPU prefix sum with the Scan skeleton.
//!
//! Run with: `cargo run --release --example distributions`

use skelcl_repro::skelcl::{Context, Distribution, Map, Scan, Vector};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = Context::tesla_s1070();
    println!("running on {} virtual GPUs\n", ctx.device_count());

    let double: Map<i64, i64> = Map::new(&ctx, "long f(long x){ return 2 * x; }")?;
    let prefix: Scan<i64> = Scan::new(&ctx, "long add(long x, long y){ return x + y; }")?;

    let v = Vector::from_fn(&ctx, 100_000, |i| i as i64 % 7);
    let expected_double: Vec<i64> = (0..100_000).map(|i| 2 * (i as i64 % 7)).collect();

    // The same computation under every distribution; redistribution
    // between calls is implicit (device -> CPU -> devices).
    for dist in [
        Distribution::single(),
        Distribution::Copy,
        Distribution::Block,
        Distribution::Overlap { size: 16 },
    ] {
        v.set_distribution(dist)?;
        let doubled = double.call(&v)?;
        assert_eq!(doubled.to_vec()?, expected_double);
        println!(
            "map under {:<12} -> {} kernel launch(es), kernel time {:?}",
            dist.to_string(),
            double.events().last_events().len(),
            double.events().last_kernel_time()
        );
    }

    // A multi-GPU inclusive prefix sum: chunk scans + cross-device offset
    // propagation, all hidden behind one call.
    v.set_distribution(Distribution::Block)?;
    let scanned = prefix.call(&v)?;
    let host: Vec<i64> = v
        .to_vec()?
        .iter()
        .scan(0i64, |acc, &x| {
            *acc += x;
            Some(*acc)
        })
        .collect();
    assert_eq!(scanned.to_vec()?, host);
    println!("\nmulti-GPU scan verified over {} elements", scanned.len());
    println!(
        "scan kernel time: {:?} (simulated)",
        prefix.events().last_kernel_time()
    );
    Ok(())
}
