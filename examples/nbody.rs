//! N-body simulation via the Allpairs skeleton — one of the applications
//! the paper's §3.5 names as motivation ("N-Body simulations used in
//! physics"). One Euler step: pairwise force components come from two
//! Allpairs calls, and the per-body force sums are themselves computed
//! with Allpairs against a one-row matrix of ones (a matrix–vector product
//! expressed as an all-pairs dot product).
//!
//! Run with: `cargo run --release --example nbody`

use skelcl_repro::skelcl::{Allpairs, Context, Matrix};

const SOFTENING: f32 = 0.5;
const DT: f32 = 0.01;

/// Pairwise force component between body rows `[x, y, m]`; the `axis`
/// selection is baked into two skeleton instances below.
fn force_fn(axis: usize) -> String {
    let d = ["a[0] - b[0]", "a[1] - b[1]"][axis];
    format!(
        "float force(const float* a, const float* b, int d)
         {{
             float dx = b[0] - a[0];
             float dy = b[1] - a[1];
             float r2 = dx * dx + dy * dy + {s} * {s};
             float inv = rsqrt(r2 * r2 * r2);
             float c = ({d});
             return -c * b[2] * inv;
         }}",
        s = SOFTENING,
        d = d,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = Context::tesla_s1070();
    let n = 256usize;

    // Bodies: rows of [x, y, mass].
    let bodies = Matrix::from_fn(&ctx, n, 3, |i, c| match c {
        0 => ((i * 37) % 100) as f32 / 10.0,
        1 => ((i * 61) % 100) as f32 / 10.0,
        _ => 1.0 + (i % 5) as f32,
    });

    // Pairwise force components: n×n matrices.
    let fx_pairs: Allpairs<f32, f32> = Allpairs::new(&ctx, &force_fn(0))?;
    let fy_pairs: Allpairs<f32, f32> = Allpairs::new(&ctx, &force_fn(1))?;
    let fx = fx_pairs.call(&bodies, &bodies)?;
    let fy = fy_pairs.call(&bodies, &bodies)?;

    // Row sums as an all-pairs dot product with a single row of ones:
    // sums(i, 0) = Σ_j F(i, j) — a matrix–vector product via the skeleton.
    let row_sum: Allpairs<f32, f32> = Allpairs::new(
        &ctx,
        "float dotp(const float* row, const float* ones, int d)
         {
             float s = 0.0f;
             for (int k = 0; k < d; ++k) s += row[k] * ones[k];
             return s;
         }",
    )?;
    let ones = Matrix::from_fn(&ctx, 1, n, |_, _| 1.0f32);
    let ax = row_sum.call(&fx, &ones)?; // n×1 accelerations (unit mass scaling below)
    let ay = row_sum.call(&fy, &ones)?;

    // Euler step on the host (the paper's SkelCL also mixes host code
    // freely with skeleton calls).
    let (axv, ayv) = (ax.to_vec()?, ay.to_vec()?);
    let stepped = bodies.with_slice(|b| {
        let mut out = b.to_vec();
        for i in 0..n {
            out[i * 3] += DT * DT * axv[i] / b[i * 3 + 2];
            out[i * 3 + 1] += DT * DT * ayv[i] / b[i * 3 + 2];
        }
        out
    })?;

    // Verify the force sums against a host reference.
    let b = bodies.to_vec()?;
    let mut max_rel = 0.0f32;
    for i in 0..n {
        let mut sx = 0.0f32;
        for j in 0..n {
            let dx = b[j * 3] - b[i * 3];
            let dy = b[j * 3 + 1] - b[i * 3 + 1];
            let r2 = dx * dx + dy * dy + SOFTENING * SOFTENING;
            let inv = 1.0 / (r2 * r2 * r2).sqrt();
            sx += -(b[i * 3] - b[j * 3]) * b[j * 3 + 2] * inv;
        }
        let rel = (sx - axv[i]).abs() / sx.abs().max(1e-3);
        max_rel = max_rel.max(rel);
    }
    assert!(
        max_rel < 1e-2,
        "force sums match host (max rel err {max_rel:.2e})"
    );

    println!("n-body step for {n} bodies on {} GPUs", ctx.device_count());
    println!(
        "pairwise-force kernel time: {:?} (simulated)",
        fx_pairs.events().last_kernel_time()
    );
    println!("max relative error vs host: {max_rel:.3e}");
    println!(
        "first body moved from ({:.3}, {:.3}) to ({:.3}, {:.3})",
        b[0], b[1], stepped[0], stepped[1]
    );
    Ok(())
}
