//! Matrix multiplication via the Allpairs skeleton (paper §3.5, Example 1):
//! `A × B = allpairs(dotProduct)(A, Bᵀ)` — comparing the generic skeleton
//! against the zip-reduce specialisation with local-memory tiling.
//!
//! Run with: `cargo run --release --example matmul`

use skelcl_repro::skelcl::{matrix_multiply, transpose, Allpairs, Context, Matrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = Context::single_gpu();
    let (n, d, m) = (96usize, 64usize, 80usize);

    let a = Matrix::from_fn(&ctx, n, d, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
    let b = Matrix::from_fn(&ctx, d, m, |r, c| ((r * 17 + c * 3) % 11) as f32 - 5.0);

    // Generic allpairs, customized with the dot product of two rows.
    let generic: Allpairs<f32, f32> = Allpairs::new(
        &ctx,
        "float dotProduct(const float* a, const float* b, int d){
             float sum = 0.0f;
             for (int k = 0; k < d; ++k) sum += a[k] * b[k];
             return sum;
         }",
    )?;
    let c1 = matrix_multiply(&generic, &a, &b)?;
    let t_generic = generic.events().last_kernel_time();

    // Zip-reduce specialisation: the skeleton recognises ⊕ = reduce ∘ zip
    // and generates a tiled local-memory kernel.
    let tiled: Allpairs<f32, f32> = Allpairs::zip_reduce(
        &ctx,
        "float mul(float x, float y){ return x * y; }",
        "float add(float x, float y){ return x + y; }",
    )?;
    let bt = transpose(&b)?;
    let c2 = tiled.call(&a, &bt)?;
    let t_tiled = tiled.events().last_kernel_time();

    assert_eq!(c1.to_vec()?, c2.to_vec()?, "both variants agree");

    // Host verification.
    let (av, bv) = (a.to_vec()?, b.to_vec()?);
    let cv = c1.to_vec()?;
    for (i, j) in [(0usize, 0usize), (n - 1, m - 1), (n / 2, m / 3)] {
        let host: f32 = (0..d).map(|k| av[i * d + k] * bv[k * m + j]).sum();
        assert_eq!(cv[i * m + j], host, "C[{i}][{j}]");
    }

    println!("C = A({n}x{d}) x B({d}x{m})  -- both skeleton variants verified");
    println!("generic allpairs   kernel time: {t_generic:?} (simulated)");
    println!("zip-reduce (tiled) kernel time: {t_tiled:?} (simulated)");
    println!(
        "tiling speedup: {:.2}x",
        t_generic.as_secs_f64() / t_tiled.as_secs_f64()
    );
    Ok(())
}
