//! The paper's second case study (§4.2): Sobel edge detection with the
//! MapOverlap skeleton on the matrix data type — the paper's Listing 1.5.
//!
//! Run with: `cargo run --release --example sobel`

use std::io::Write;

use skelcl_repro::skelcl::{BoundaryHandling, Context, MapOverlap, Matrix};

/// The paper's Listing 1.5 customizing function.
const SOBEL: &str = r#"
uchar func(const uchar* img)
{
    int h = -1 * (int)get(img, -1, -1) + 1 * (int)get(img, +1, -1)
            -2 * (int)get(img, -1,  0) + 2 * (int)get(img, +1,  0)
            -1 * (int)get(img, -1, +1) + 1 * (int)get(img, +1, +1);
    int v = -1 * (int)get(img, -1, -1) - 2 * (int)get(img, 0, -1) - 1 * (int)get(img, +1, -1)
            +1 * (int)get(img, -1, +1) + 2 * (int)get(img, 0, +1) + 1 * (int)get(img, +1, +1);
    int mag = (int)sqrt((float)(h * h + v * v));
    return (uchar)(mag > 255 ? 255 : mag);
}
"#;

/// Generates a synthetic 512×512 grayscale test image (stand-in for the
/// paper's Lena photograph; see DESIGN.md).
fn test_image(width: usize, height: usize) -> Vec<u8> {
    let mut img = vec![0u8; width * height];
    for y in 0..height {
        for x in 0..width {
            let circles = {
                let dx = x as f64 - width as f64 / 2.0;
                let dy = y as f64 - height as f64 / 2.0;
                if ((dx * dx + dy * dy).sqrt() as usize / 32).is_multiple_of(2) {
                    180
                } else {
                    60
                }
            };
            let stripes = if (x / 24) % 2 == 0 { 30 } else { 0 };
            img[y * width + x] = (circles + stripes) as u8;
        }
    }
    img
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (width, height) = (512usize, 512usize);
    let ctx = Context::single_gpu();

    // Skeleton customized with the Sobel edge detection algorithm.
    let m: MapOverlap<u8, u8> = MapOverlap::new(&ctx, SOBEL, 1, BoundaryHandling::Nearest)?;

    let img = Matrix::from_vec(&ctx, height, width, test_image(width, height));
    let out_img = m.call(&img)?; // execution of the skeleton

    println!(
        "sobel {width}x{height}: kernel time {:?} (simulated; the paper's Fig. 5 metric)",
        m.events().last_kernel_time()
    );

    // Edge pixels should be a small but nonzero fraction.
    let edges = out_img.with_slice(|s| s.iter().filter(|&&p| p > 128).count())?;
    let frac = edges as f64 / (width * height) as f64;
    println!("strong-edge pixels: {edges} ({:.1}%)", frac * 100.0);
    assert!(frac > 0.01 && frac < 0.5, "plausible edge density");

    let path = std::env::temp_dir().join("skelcl_sobel.pgm");
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "P5\n{width} {height}\n255")?;
    f.write_all(&out_img.to_vec()?)?;
    println!("wrote {}", path.display());
    Ok(())
}
