//! Quickstart: the paper's Listing 1.1 — dot product of two vectors with
//! the Zip and Reduce skeletons.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Profiling is enabled, so the run ends with a metrics summary and a
//! Chrome trace (`chrome://tracing` / Perfetto) written to `SKELCL_TRACE`
//! if set, else `quickstart_trace.json`.

use skelcl_repro::skelcl::{Context, DeviceSelection, Profiler, Reduce, Vector, Zip};
use skelcl_repro::vgpu::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // SkelCL::init() — here: all 4 GPUs of a virtual Tesla S1070, with the
    // tracing/metrics layer switched on (a plain `Context::tesla_s1070()`
    // honours the `SKELCL_PROFILE` env variable instead).
    let ctx = Context::init_with_profiler(
        Platform::tesla_s1070(),
        DeviceSelection::All,
        Profiler::enabled(),
    );
    println!("initialised SkelCL on {} virtual GPUs", ctx.device_count());

    // Create the skeletons, customized by plain source strings.
    let sum: Reduce<f32> = Reduce::new(&ctx, "float sum(float x, float y){ return x + y; }")?;
    let mult: Zip<f32, f32, f32> = Zip::new(&ctx, "float mult(float x, float y){ return x * y; }")?;

    // Create and fill the input vectors.
    const SIZE: usize = 1 << 20;
    let a = Vector::from_fn(&ctx, SIZE, |i| (i % 100) as f32 / 100.0);
    let b = Vector::from_fn(&ctx, SIZE, |i| ((i + 7) % 50) as f32 / 50.0);

    // Execute the skeletons: C = sum( mult( A, B ) ).
    let c = sum.call(&mult.call(&a, &b)?)?;

    // Fetch the result.
    let host: f64 = {
        let av = a.to_vec()?;
        let bv = b.to_vec()?;
        av.iter().zip(&bv).map(|(x, y)| (x * y) as f64).sum()
    };
    println!("dot product   = {:.3}", c.value());
    println!("host check    = {host:.3}");
    println!("kernel time   = {:?} (simulated)", c.kernel_time());

    let rel_err = ((c.value() as f64 - host) / host).abs();
    assert!(
        rel_err < 1e-3,
        "GPU and host results agree (rel err {rel_err:.2e})"
    );

    // The observability layer's view of the run: counters, histograms and
    // per-device utilization, plus a Chrome trace for chrome://tracing.
    let profiler = ctx.profiler();
    if let Some(summary) = profiler.summary() {
        println!("\n{summary}");
    }
    if let Some(trace) = profiler.chrome_trace_json() {
        let path = std::env::var("SKELCL_TRACE").unwrap_or_else(|_| "quickstart_trace.json".into());
        std::fs::write(&path, trace)?;
        println!("chrome trace  = {path} (open in chrome://tracing or Perfetto)");
    }
    println!("OK");
    Ok(())
}
