//! trace-demo: the full observability stack on a 2-GPU dot product.
//!
//! Run with: `just trace-demo` (or
//! `cargo run --release --example trace_demo`).
//!
//! The demo defaults `SKELCL_PROFILE=1`, `SKELCL_TRACE=trace_demo.json`
//! and `SKELCL_FLIGHT=1024` when the caller has not set them, so a bare
//! run produces:
//!
//! * a Chrome trace (`chrome://tracing` / Perfetto) with per-device
//!   timelines, flow arrows for the `LaunchPlan` wait-list dependencies,
//!   queue-depth counter tracks and pool gauges;
//! * a flight-recorder postmortem dump of the last queue/plan events,
//!   printed on demand at the end of the run;
//! * the profiler's metrics summary with p50/p90/p99 percentiles for
//!   kernel durations and transfer sizes.

use std::env;

use skelcl_repro::skelcl::{Context, DeviceSelection, Distribution, Reduce, Vector, Zip};
use skelcl_repro::vgpu::{DeviceSpec, Platform};

fn default_env(key: &str, value: &str) {
    if env::var_os(key).is_none() {
        env::set_var(key, value);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    default_env("SKELCL_PROFILE", "1");
    default_env("SKELCL_TRACE", "trace_demo.json");
    default_env("SKELCL_FLIGHT", "1024");

    // Context::init reads the SKELCL_* observability variables: the
    // profiler, the flight recorder and (if SKELCL_STATS_INTERVAL_MS is
    // set) the live stats reporter all attach here.
    let ctx = Context::init(
        Platform::new(2, DeviceSpec::tesla_t10()),
        DeviceSelection::All,
    );
    println!(
        "trace-demo: dot product on {} virtual GPUs",
        ctx.device_count()
    );

    let sum: Reduce<f32> = Reduce::new(&ctx, "float sum(float x, float y){ return x + y; }")?;
    let mult: Zip<f32, f32, f32> = Zip::new(&ctx, "float mult(float x, float y){ return x * y; }")?;

    const SIZE: usize = 1 << 20;
    let a = Vector::from_fn(&ctx, SIZE, |i| (i % 100) as f32 / 100.0);
    let b = Vector::from_fn(&ctx, SIZE, |i| ((i + 7) % 50) as f32 / 50.0);
    // Block distribution splits the work across both devices, so the
    // trace shows two device lanes plus the host lane.
    a.set_distribution(Distribution::Block)?;

    let c = sum.call(&mult.call(&a, &b)?)?;
    println!("dot product   = {:.3}", c.value());

    // What the observers captured.
    let profiler = ctx.profiler();
    println!(
        "trace         = {} spans, {} flow edges, {} counter samples",
        profiler.spans().len(),
        profiler.flows().len(),
        profiler.counter_samples().len(),
    );
    println!(
        "flight ring   = {} events recorded (capacity {})",
        ctx.flight().recorded(),
        ctx.flight().capacity(),
    );
    if let Some(dump) = ctx.dump_flight() {
        let tail: Vec<&str> = dump.lines().rev().take(8).collect();
        println!("last flight events:");
        for line in tail.iter().rev() {
            println!("  {line}");
        }
    }
    println!(
        "\ntrace file    = {} (open in chrome://tracing or Perfetto)",
        env::var("SKELCL_TRACE").unwrap_or_default()
    );
    // The trace itself is written when the context drops.
    Ok(())
}
